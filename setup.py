"""Legacy setup shim.

The offline environment lacks the ``wheel`` package, so PEP 517
editable installs (which need ``bdist_wheel``) fail.  This shim lets
``pip install -e . --no-use-pep517 --no-build-isolation`` (or plain
``pip install -e .`` on environments with ``wheel``) work everywhere.
All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
