"""Useless-transition (glitch) analysis.

The paper's opening argument: "the power consumption of useless signal
transitions (i.e. those transitions that do not contribute to the final
result of the circuit) accounts for a large fraction of the overall
dynamic power".  A transition is *useless* when it would not occur in a
zero-delay (fully settled) evaluation — it exists only because paths
have unequal delays.

This module quantifies that fraction by simulating the same stimulus
twice: once with per-pin Elmore delays (glitches happen) and once with
the settled zero-delay semantics (glitches cannot happen), and diffing
per-net transition counts and energies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..circuit.netlist import Circuit
from ..gates.capacitance import TechParams
from ..sim.stimulus import Stimulus
from ..sim.switchsim import SwitchLevelSimulator, SwitchSimReport
from ..timing.sta import DEFAULT_PO_LOAD

__all__ = ["GlitchReport", "analyze_glitches"]


@dataclass(frozen=True)
class GlitchReport:
    """Delay-aware vs settled activity of one circuit under one stimulus."""

    timed: SwitchSimReport
    settled: SwitchSimReport

    @property
    def useless_transitions(self) -> Dict[str, int]:
        """Per-net transitions present only because of unequal delays."""
        return {
            net: max(0, self.timed.net_transitions[net]
                     - self.settled.net_transitions[net])
            for net in self.timed.net_transitions
        }

    @property
    def total_transitions(self) -> int:
        return sum(self.timed.net_transitions.values())

    @property
    def total_useless(self) -> int:
        return sum(self.useless_transitions.values())

    @property
    def useless_transition_fraction(self) -> float:
        """Fraction of all net transitions that are useless."""
        total = self.total_transitions
        return self.total_useless / total if total else 0.0

    @property
    def useless_energy_fraction(self) -> float:
        """Fraction of switching energy attributable to glitches."""
        if self.timed.energy <= 0.0:
            return 0.0
        return max(0.0, 1.0 - self.settled.energy / self.timed.energy)

    def hottest_nets(self, count: int = 10):
        """Nets with the most useless transitions, descending."""
        useless = self.useless_transitions
        ranked = sorted(useless.items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked[:count]


def analyze_glitches(circuit: Circuit, stimulus: Stimulus,
                     tech: Optional[TechParams] = None,
                     po_load: float = DEFAULT_PO_LOAD) -> GlitchReport:
    """Run the timed and settled simulations and diff them."""
    tech = tech if tech is not None else TechParams()
    timed = SwitchLevelSimulator(
        circuit, tech, po_load=po_load, delay_mode="elmore"
    ).run(stimulus)
    settled = SwitchLevelSimulator(
        circuit, tech, po_load=po_load, delay_mode="zero"
    ).run(stimulus)
    return GlitchReport(timed, settled)
