"""Experiment drivers and report formatting."""

from .experiments import (
    Table1Row,
    Table3Row,
    case_seed,
    run_adder_activity,
    run_table1,
    run_table2,
    run_table2_instances,
    run_table3,
    run_table3_case,
)
from .glitches import GlitchReport, analyze_glitches
from .report import format_percent, format_si, format_table
from .stats import geomean, mean, relative_increase, relative_reduction

__all__ = [
    "case_seed",
    "run_table1",
    "run_table2",
    "run_table2_instances",
    "run_table3",
    "run_table3_case",
    "run_adder_activity",
    "Table1Row",
    "Table3Row",
    "format_table",
    "format_percent",
    "format_si",
    "GlitchReport",
    "analyze_glitches",
    "mean",
    "geomean",
    "relative_reduction",
    "relative_increase",
]
