"""End-to-end experiment drivers regenerating the paper's tables.

Each function reproduces one artefact (see DESIGN.md §4):

* :func:`run_table1` — the Table 1(b) motivation gate under the two
  activity cases;
* :func:`run_table2` — the library configuration counts;
* :func:`run_table3_case` / :func:`run_table3` — the main evaluation:
  per circuit and scenario, the modelled (M) and simulated (S)
  best-versus-worst power reduction and the delay increase (D) of the
  power-optimised netlist versus the as-mapped one;
* :func:`run_adder_activity` — the §1.1 ripple-carry carry-chain
  activity profile.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..bench.suite import BenchmarkCase, benchmark_suite
from ..circuit.netlist import Circuit
from ..core.optimizer import optimize_circuit
from ..core.power_model import GatePowerModel
from ..core.reorder import evaluate_configurations
from ..gates.capacitance import TechParams
from ..gates.library import GateLibrary, default_library
from ..obs import trace as _trace
from ..sim.stimulus import ScenarioA, ScenarioB, Stimulus
from ..sim.switchsim import SwitchLevelSimulator
from ..stochastic.density import local_stats
from ..stochastic.signal import SignalStats
from ..synth.mapper import map_circuit
from ..timing.sta import DEFAULT_PO_LOAD, circuit_delay
from .stats import mean, relative_increase, relative_reduction

__all__ = [
    "case_seed",
    "Table1Row",
    "run_table1",
    "run_table2",
    "run_table2_instances",
    "Table3Row",
    "run_table3_case",
    "run_table3",
    "run_adder_activity",
    "EcoRow",
    "run_eco",
    "run_search",
]


def case_seed(name: str, seed: int = 0) -> int:
    """Per-circuit RNG seed, stable across processes and Python runs.

    Built on CRC-32 of the circuit name rather than :func:`hash`, whose
    string hashing is randomised per interpreter process — with it, the
    parallel benchmark runner's workers (and any two invocations) would
    draw different stimuli for the same (circuit, seed) pair.
    """
    return seed + zlib.crc32(name.encode("utf-8")) % 10000


# ----------------------------------------------------------------------
# Table 1 — motivation gate
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Table1Row:
    """Relative power of every configuration of the motivation gate."""

    case: str
    densities: Tuple[float, float, float]
    relative_powers: Tuple[float, ...]
    best_index: int
    reduction_vs_worst: float


def run_table1(tech: Optional[TechParams] = None,
               output_load: float = DEFAULT_PO_LOAD) -> List[Table1Row]:
    """The paper's Table 1(b): gate ``y = (a1 + a2)·b`` under two cases.

    Case 1: D = (10K, 100K, 1M); case 2: D = (1M, 100K, 10K); all
    equilibrium probabilities 0.5.  Powers are reported relative to the
    worst configuration of each case (the paper normalises to its
    configuration (D) in case 1; the *spread* is the claim under test).
    """
    library = default_library()
    template = library["oai21"]  # pins (a, b, c) ~ paper's (a1, a2, b)
    model = GatePowerModel(tech)
    rows = []
    for case, densities in (("1", (1.0e4, 1.0e5, 1.0e6)),
                            ("2", (1.0e6, 1.0e5, 1.0e4))):
        stats = {
            pin: SignalStats(0.5, d) for pin, d in zip(template.pins, densities)
        }
        evaluations = evaluate_configurations(template, stats, model, output_load)
        powers = [e.power for e in evaluations]
        worst = max(powers)
        relative = tuple(p / worst for p in powers)
        best_index = min(range(len(powers)), key=powers.__getitem__)
        rows.append(
            Table1Row(case, densities, relative, best_index,
                      relative_reduction(worst, powers[best_index]))
        )
    return rows


# ----------------------------------------------------------------------
# Table 2 — library configuration counts
# ----------------------------------------------------------------------
def run_table2(library: Optional[GateLibrary] = None) -> List[Tuple[str, int]]:
    """(gate, #configurations) for every library cell."""
    library = library if library is not None else default_library()
    return library.configuration_table()


def run_table2_instances(
    library: Optional[GateLibrary] = None,
) -> List[Tuple[str, str, int]]:
    """(gate, instance labels, #configurations) — Table 2 with the paper's
    ``gate[A,B,...]`` instance notation (layout classes; see
    :mod:`repro.gates.instances`)."""
    from ..gates.instances import instance_partition

    library = library if library is not None else default_library()
    rows = []
    for template in library:
        classes = instance_partition(template)
        if len(classes) == 1:
            name = template.name
        else:
            name = f"{template.name}[{','.join(c.label for c in classes)}]"
        rows.append((template.name, name, template.num_configurations()))
    return rows


# ----------------------------------------------------------------------
# Table 3 — main evaluation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Table3Row:
    """One circuit under one scenario — the paper's Table 3 columns."""

    name: str
    scenario: str
    gates: int
    model_reduction: float
    """Column M: best-vs-worst reduction predicted by the model."""

    sim_reduction: float
    """Column S: best-vs-worst reduction measured by switch-level simulation."""

    delay_increase: float
    """Column D: delay change of the optimised circuit vs the as-mapped one."""

    model_power_best: float
    sim_power_best: float


def _simulate(circuit: Circuit, stimulus: Stimulus, tech: TechParams,
              po_load: float) -> float:
    simulator = SwitchLevelSimulator(circuit, tech, po_load=po_load)
    return simulator.run(stimulus).power


def run_table3_case(case: BenchmarkCase, scenario: str,
                    tech: Optional[TechParams] = None,
                    seed: int = 0,
                    target_transitions: float = 150.0,
                    cycles: int = 250,
                    po_load: float = DEFAULT_PO_LOAD,
                    library: Optional[GateLibrary] = None,
                    model: Optional[GatePowerModel] = None,
                    circuit: Optional[Circuit] = None) -> Table3Row:
    """Run the full flow for one circuit and one scenario ('A' or 'B').

    Deterministic for a given ``(case, scenario, seed)``: the stimulus
    seed comes from :func:`case_seed`.  ``circuit`` may supply an
    already-mapped netlist (the benchmark runner caches one per case so
    both scenarios reuse the mapping); it is never mutated.
    """
    tech = tech if tech is not None else TechParams()
    model = model if model is not None else GatePowerModel(tech)
    if circuit is None:
        network = case.network()
        circuit = map_circuit(network, library)
    elif library is not None:
        raise ValueError(
            "library is only used when mapping internally; "
            "pass either circuit or library, not both"
        )

    if scenario == "A":
        generator = ScenarioA(seed=case_seed(case.name, seed))
        stats = generator.input_stats(circuit.inputs)
        densities = [s.density for s in stats.values()]
        duration = target_transitions / mean(densities)
        stimulus = generator.generate(circuit.inputs, duration)
    elif scenario == "B":
        generator = ScenarioB(seed=case_seed(case.name, seed))
        stats = generator.input_stats(circuit.inputs)
        stimulus = generator.generate(circuit.inputs, cycles)
    else:
        raise ValueError(f"scenario must be 'A' or 'B', got {scenario!r}")

    best = optimize_circuit(circuit, stats, model, objective="best", po_load=po_load)
    worst = optimize_circuit(circuit, stats, model, objective="worst", po_load=po_load)
    model_reduction = relative_reduction(worst.power_after, best.power_after)

    sim_best = _simulate(best.circuit, stimulus, tech, po_load)
    sim_worst = _simulate(worst.circuit, stimulus, tech, po_load)
    sim_reduction = relative_reduction(sim_worst, sim_best)

    delay_orig = circuit_delay(circuit, tech, po_load)
    delay_best = circuit_delay(best.circuit, tech, po_load)
    delay_increase = relative_increase(delay_orig, delay_best)

    return Table3Row(
        name=case.name,
        scenario=scenario,
        gates=len(circuit),
        model_reduction=model_reduction,
        sim_reduction=sim_reduction,
        delay_increase=delay_increase,
        model_power_best=best.power_after,
        sim_power_best=sim_best,
    )


def run_table3(subset: Optional[str] = "quick",
               scenarios: Sequence[str] = ("A", "B"),
               **kwargs) -> Dict[str, List[Table3Row]]:
    """Table 3 over the benchmark suite; returns rows grouped by scenario."""
    cases = benchmark_suite(subset)
    results: Dict[str, List[Table3Row]] = {}
    for scenario in scenarios:
        results[scenario] = [
            run_table3_case(case, scenario, **kwargs) for case in cases
        ]
    return results


# ----------------------------------------------------------------------
# ECO replay — scripted edits against the incremental engine
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class EcoRow:
    """One scripted edit: what changed and what it cost.

    Powers are modelled totals (W); ``cone`` is how many gates the
    incremental engine re-propagated — the work the edit actually
    caused, versus ``gates`` for a from-scratch recompute.
    """

    index: int
    label: str
    cone: int
    power_before: float
    power_after: float
    delay_before: float
    delay_after: float
    retimed: int = -1
    """Gate arrivals the incremental timing cache recomputed for this
    edit; -1 when delay came from a full STA (``timing="full"``)."""

    @property
    def delta_power(self) -> float:
        return self.power_after - self.power_before

    @property
    def delta_delay(self) -> float:
        return self.delay_after - self.delay_before


def run_eco(circuit: Circuit,
            input_stats: Dict[str, SignalStats],
            script: Sequence[Dict],
            backend: str = "analytic",
            model: Optional[GatePowerModel] = None,
            po_load: float = DEFAULT_PO_LOAD,
            timing: str = "full",
            **backend_kwargs) -> List[EcoRow]:
    """Apply a JSON edit script in order, reporting per-edit deltas.

    ``circuit`` is edited **in place** (callers wanting to keep the
    original should pass ``circuit.copy()``).  Each script entry is
    resolved against the circuit state the previous edits produced, so
    e.g. a ``reorder`` after a ``retemplate`` indexes the new
    template's configurations.  Statistics and power are maintained by
    a :class:`repro.incremental.StatsCache` with the chosen backend —
    every edit costs cone-sized work, which the ``cone`` column records.

    ``timing`` selects the per-edit delay source: ``"full"`` (an STA
    run per edit, the historical behaviour) or ``"incremental"`` (a
    :class:`repro.incremental.TimingCache` sharing the stats cache's
    fanout index — bit-identical delays for cone-sized work, with the
    per-edit arrival recomputes recorded in ``EcoRow.retimed``).
    """
    from ..incremental import StatsCache, TimingCache
    from ..incremental.eco import (
        InputArrivalEdit,
        InputStatsEdit,
        resolve_edit,
        script_edit_label,
    )

    if timing not in ("full", "incremental"):
        raise ValueError(
            f"unknown timing mode {timing!r}; use 'full' or 'incremental'"
        )
    model = model if model is not None else GatePowerModel()
    cache = StatsCache(circuit, input_stats, backend=backend, model=model,
                       po_load=po_load, **backend_kwargs)
    tcache = (TimingCache(circuit, tech=model.tech, po_load=po_load,
                          index=cache.index)
              if timing == "incremental" else None)
    rows: List[EcoRow] = []
    try:
        power = cache.total_power()
        delay = (tcache.delay() if tcache is not None
                 else circuit_delay(circuit, model.tech, po_load))
        for index, entry in enumerate(script):
            edit = resolve_edit(circuit, entry)
            repropagated = cache.gates_repropagated
            retimed_before = tcache.gates_retimed if tcache is not None else 0
            tracer = _trace.ACTIVE
            span = (tracer.span("eco.edit", index=index,
                                label=script_edit_label(edit))
                    if tracer is not None else _trace.NULL_SPAN)
            with span:
                if isinstance(edit, InputStatsEdit):
                    cache.set_input_stats(edit.net, edit.stats)
                elif isinstance(edit, InputArrivalEdit):
                    if tcache is None:
                        raise ValueError(
                            "input-arrival edits need timing='incremental' "
                            "(repro eco --timing)"
                        )
                    tcache.set_input_arrival(edit.net, edit.arrival)
                else:
                    circuit.apply_edit(edit)
                power_after = cache.total_power()  # refreshes the dirty cone
                if tcache is not None:
                    delay_after = tcache.delay()  # refreshes the timing cone
                    retimed = tcache.gates_retimed - retimed_before
                else:
                    delay_after = circuit_delay(circuit, model.tech, po_load)
                    retimed = -1
                if tracer is not None:
                    span.note(cone=cache.gates_repropagated - repropagated,
                              retimed=retimed)
            rows.append(EcoRow(
                index=index,
                label=script_edit_label(edit),
                cone=cache.gates_repropagated - repropagated,
                power_before=power,
                power_after=power_after,
                delay_before=delay,
                delay_after=delay_after,
                retimed=retimed,
            ))
            power, delay = power_after, delay_after
    finally:
        if tcache is not None:
            tcache.close()
        cache.close()
    return rows


# ----------------------------------------------------------------------
# Delta-driven ECO search — the `repro search` driver
# ----------------------------------------------------------------------
def run_search(circuit: Circuit,
               input_stats: Dict[str, SignalStats],
               **search_kwargs):
    """Run the delta-driven local search on an already-mapped circuit.

    Thin experiment-layer wrapper over
    :func:`repro.incremental.search.search_circuit` (imported lazily,
    like the other incremental drivers, to keep this module's import
    graph cycle-free): the input circuit is never mutated, and the
    returned :class:`~repro.incremental.search.SearchResult` carries
    the searched copy, the accepted-move trace and the canonical
    artifact serialisation.  Deterministic for a fixed
    ``(circuit, input_stats, seed)`` and parameter set.
    """
    from ..incremental.search import search_circuit

    return search_circuit(circuit, input_stats, **search_kwargs)


# ----------------------------------------------------------------------
# §1.1 — ripple-carry adder activity profile
# ----------------------------------------------------------------------
def run_adder_activity(width: int = 8,
                       cycle_density: float = 0.5,
                       library: Optional[GateLibrary] = None) -> Dict[str, float]:
    """Transition density of each carry of an n-bit ripple adder.

    Operand inputs have P = 0.5 and D = ``cycle_density``; the returned
    map shows the carry-chain densities growing towards the MSB — the
    paper's argument that equilibrium probability alone (0.5 everywhere)
    cannot drive the optimisation.
    """
    from ..bench.generators import full_adder_node_names, ripple_carry_adder

    network = ripple_carry_adder(width, expose_carries=True)
    circuit = map_circuit(network, library)
    stats = {net: SignalStats(0.5, cycle_density) for net in circuit.inputs}
    propagated = local_stats(circuit, stats)
    profile = {"operand": cycle_density}
    for i in range(width):
        _, carry = full_adder_node_names(i)
        profile[carry] = propagated[carry].density
    return profile
