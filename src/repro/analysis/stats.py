"""Small statistics helpers for experiment summaries."""

from __future__ import annotations

import math
from typing import Sequence

__all__ = ["mean", "geomean", "relative_reduction", "relative_increase"]


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean (the paper reports arithmetic averages)."""
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def geomean(values: Sequence[float]) -> float:
    """Geometric mean of positive values."""
    if not values:
        raise ValueError("geomean of empty sequence")
    if any(v <= 0.0 for v in values):
        raise ValueError("geomean needs positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def relative_reduction(reference: float, improved: float) -> float:
    """``(reference - improved) / reference``; 0 for a zero reference."""
    if reference == 0.0:
        return 0.0
    return (reference - improved) / reference


def relative_increase(reference: float, changed: float) -> float:
    """``(changed - reference) / reference``; 0 for a zero reference."""
    if reference == 0.0:
        return 0.0
    return (changed - reference) / reference
