"""Plain-text table formatting for experiment reports.

Keeps the benchmark output close to the look of the paper's tables:
fixed-width columns, one row per circuit, a summary row at the bottom.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

__all__ = ["format_table", "format_percent", "format_si"]


def format_percent(fraction: float, digits: int = 1) -> str:
    """``0.123 -> '12.3'`` (percent, no sign suffix — column headers carry it)."""
    return f"{100.0 * fraction:.{digits}f}"


_SI_PREFIXES = (
    (1e-15, "f"), (1e-12, "p"), (1e-9, "n"), (1e-6, "u"), (1e-3, "m"), (1.0, "")
)


def format_si(value: float, unit: str = "", digits: int = 2) -> str:
    """Engineering formatting: ``1.23e-7 -> '123.00n'``."""
    if value == 0.0:
        return f"0{unit}"
    magnitude = abs(value)
    scale, prefix = _SI_PREFIXES[-1]
    for s, p in _SI_PREFIXES:
        if magnitude < s * 1000.0:
            scale, prefix = s, p
            break
    return f"{value / scale:.{digits}f}{prefix}{unit}"


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: Optional[str] = None,
                 footer: Optional[Sequence[object]] = None) -> str:
    """Render an aligned fixed-width text table."""
    str_rows: List[List[str]] = [[str(c) for c in row] for row in rows]
    all_rows = [list(headers)] + str_rows
    if footer is not None:
        all_rows.append([str(c) for c in footer])
    widths = [
        max(len(row[i]) if i < len(row) else 0 for row in all_rows)
        for i in range(len(headers))
    ]

    def fmt(row: Sequence[str]) -> str:
        cells = []
        for i, w in enumerate(widths):
            cell = row[i] if i < len(row) else ""
            # Right-align numbers, left-align the first (name) column.
            if i == 0:
                cells.append(cell.ljust(w))
            else:
                cells.append(cell.rjust(w))
        return "  ".join(cells).rstrip()

    rule = "-" * (sum(widths) + 2 * (len(widths) - 1))
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(fmt(list(headers)))
    lines.append(rule)
    lines.extend(fmt(r) for r in str_rows)
    if footer is not None:
        lines.append(rule)
        lines.append(fmt([str(c) for c in footer]))
    return "\n".join(lines)
