"""Input stimulus for the two evaluation scenarios of the paper (§5.1).

**Scenario A** — the circuit is embedded in a larger system: every
primary input is a free-running Markov signal whose equilibrium
probability is drawn uniformly from (0, 1) and whose transition density
uniformly from (0, ``density_max``) transitions per second; waveforms
have exponentially distributed intervals between transitions (the
paper's switch-level stimulus).

**Scenario B** — the circuit *is* the system: inputs come from latches
at a fixed clock, each with probability 0.5 and density 0.5 transitions
per cycle (a fresh Bernoulli(½) value every cycle).  In absolute time
the density is ``0.5 / T_clk``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..stochastic.signal import SignalStats, Waveform, markov_waveform

__all__ = ["ScenarioA", "ScenarioB", "Stimulus"]

_P_MARGIN = 0.02  # keep random probabilities strictly inside (0, 1)


@dataclass(frozen=True)
class Stimulus:
    """Per-input statistics plus concrete waveforms over a time window."""

    stats: Dict[str, SignalStats]
    waveforms: Dict[str, Waveform]
    duration: float

    def event_count(self) -> int:
        return sum(len(w[1]) for w in self.waveforms.values())


@dataclass(frozen=True)
class ScenarioA:
    """Random (P, D) per input; asynchronous exponential waveforms."""

    density_max: float = 1.0e6
    seed: int = 0

    def input_stats(self, input_names: Sequence[str]) -> Dict[str, SignalStats]:
        """Draw the paper's uniform (P, D) assignment for every input."""
        rng = np.random.default_rng(self.seed)
        stats = {}
        for name in input_names:
            p = float(rng.uniform(_P_MARGIN, 1.0 - _P_MARGIN))
            d = float(rng.uniform(0.01 * self.density_max, self.density_max))
            stats[name] = SignalStats(p, d)
        return stats

    def generate(self, input_names: Sequence[str], duration: float,
                 seed_offset: int = 1) -> Stimulus:
        """Sample waveforms matching :meth:`input_stats` over ``duration``."""
        stats = self.input_stats(input_names)
        rng = np.random.default_rng(self.seed + seed_offset)
        waveforms = {
            name: markov_waveform(stats[name], duration, rng)
            for name in input_names
        }
        return Stimulus(stats, waveforms, duration)


@dataclass(frozen=True)
class ScenarioB:
    """Latched inputs: P = 0.5, D = 0.5 transitions/cycle at a fixed clock."""

    clock_period: float = 20.0e-9
    seed: int = 0

    def input_stats(self, input_names: Sequence[str]) -> Dict[str, SignalStats]:
        density = 0.5 / self.clock_period
        return {name: SignalStats(0.5, density) for name in input_names}

    def generate(self, input_names: Sequence[str], cycles: int,
                 seed_offset: int = 1) -> Stimulus:
        """Fresh Bernoulli(½) values at every clock edge for ``cycles`` cycles."""
        if cycles < 1:
            raise ValueError("need at least one cycle")
        rng = np.random.default_rng(self.seed + seed_offset)
        duration = cycles * self.clock_period
        stats = self.input_stats(input_names)
        waveforms: Dict[str, Waveform] = {}
        for name in input_names:
            bits = rng.integers(0, 2, size=cycles)
            initial = int(bits[0])
            times: List[float] = []
            current = initial
            for k in range(1, cycles):
                if int(bits[k]) != current:
                    times.append(k * self.clock_period)
                    current = int(bits[k])
            waveforms[name] = (initial, tuple(times))
        return Stimulus(stats, waveforms, duration)
