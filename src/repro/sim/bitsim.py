"""Bit-parallel Monte Carlo sampling of signal statistics.

The third (P, D) estimator of the reproduction, next to the analytic
propagation engines in :mod:`repro.stochastic` and the event-driven
:class:`~repro.sim.switchsim.SwitchLevelSimulator`:

* ``W`` independent sample *lanes* are packed into one Python big int
  per net (bit ``k`` of the word is the net's value in lane ``k``), so
  one topological sweep evaluates the whole circuit on ``W`` random
  vectors with a handful of bitwise operations per gate;
* each gate's compiled truth table is translated once into a word-level
  evaluator (a memoised Shannon decomposition — at most ``2^n - 1``
  AND/OR/NOT word operations for an ``n``-input cell);
* inputs evolve as discretised two-state Markov chains matching the
  requested :class:`~repro.stochastic.signal.SignalStats`, so measured
  per-net toggle counts estimate Najm's transition density and measured
  one-counts estimate the equilibrium probability.

The estimator is unbiased for the probability at any time step (the
chains start in their stationary distribution) and for the *input*
densities at any step size; internal-net densities converge to the
zero-delay (settled, glitch-free) activity as the step size shrinks,
which is exactly the quantity the stochastic model predicts.

Seeding: every entry point takes an explicit ``seed`` (default ``0`` —
unseeded runs are deterministic).  Passing ``seed=None`` emits a
:class:`UserWarning` and falls back to the deterministic default.
"""

from __future__ import annotations

import warnings
import zlib
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..circuit.netlist import Circuit, GateInstance
from ..stochastic.signal import SignalStats
from .stimulus import Stimulus

__all__ = [
    "DEFAULT_LANES",
    "BitSimReport",
    "BitParallelSimulator",
    "sampled_stats",
    "pack_vectors",
    "stimulus_step_vectors",
    "stream_rng",
    "markov_stream_words",
    "report_from_history",
]

#: Default number of sample lanes per word (vectors evaluated per sweep).
DEFAULT_LANES = 1024

_EPS = 1e-12

#: Word evaluators memoised per (nvars, truth-table bits) — the suite
#: maps onto a small cell library, so the cache stays tiny.
_EVAL_CACHE: Dict[Tuple[int, int], Callable[[Sequence[int], int], int]] = {}


def _compile_word_function(nvars: int, bits: int) -> Callable[[Sequence[int], int], int]:
    """Word-level evaluator of a dense truth table via Shannon decomposition.

    The returned callable maps ``(pin_words, lane_mask)`` to the output
    word; ``pin_words[j]`` carries the lane values of truth-table
    variable ``j``.
    """
    key = (nvars, bits)
    fn = _EVAL_CACHE.get(key)
    if fn is not None:
        return fn
    full = (1 << (1 << nvars)) - 1
    if bits == 0:
        fn = lambda words, mask: 0  # noqa: E731
    elif bits == full:
        fn = lambda words, mask: mask  # noqa: E731
    else:
        half = 1 << (nvars - 1)
        lo = bits & ((1 << half) - 1)
        hi = bits >> half
        if lo == hi:  # does not depend on the top variable
            fn = _compile_word_function(nvars - 1, lo)
        else:
            f0 = _compile_word_function(nvars - 1, lo)
            f1 = _compile_word_function(nvars - 1, hi)
            j = nvars - 1

            def fn(words, mask, _j=j, _f0=f0, _f1=f1):
                w = words[_j]
                return (w & _f1(words, mask)) | (~w & mask & _f0(words, mask))

    _EVAL_CACHE[key] = fn
    return fn


def _word_from_bools(values: np.ndarray) -> int:
    """Pack a boolean vector into an int (element ``k`` -> bit ``k``)."""
    packed = np.packbits(values.astype(np.uint8), bitorder="little")
    return int.from_bytes(packed.tobytes(), "little")


def _bernoulli_word(rng: np.random.Generator, p: float, lanes: int) -> int:
    return _word_from_bools(rng.random(lanes) < p)


def _resolve_rng(seed: Optional[int]) -> np.random.Generator:
    if seed is None:
        warnings.warn(
            "no seed given; defaulting to seed=0 for a deterministic run "
            "(pass an explicit seed to silence this warning)",
            UserWarning,
            stacklevel=3,
        )
        seed = 0
    return np.random.default_rng(seed)


def pack_vectors(vectors: Sequence[Mapping[str, bool]],
                 input_names: Sequence[str]) -> Dict[str, int]:
    """Pack ``len(vectors)`` input assignments into one word per input.

    Lane ``k`` of every word holds vector ``k`` — the bridge from
    :func:`repro.sim.logicsim.random_vectors`-style vector lists to one
    bit-parallel sweep.
    """
    words: Dict[str, int] = {}
    for name in input_names:
        word = 0
        for k, vector in enumerate(vectors):
            if vector[name]:
                word |= 1 << k
        words[name] = word
    return words


def stimulus_step_vectors(
    stimulus: Stimulus, input_names: Sequence[str]
) -> Tuple[List[Dict[str, int]], List[float]]:
    """Settled input values at t=0 and after every event timestamp.

    Mirrors the event grouping of the zero-delay
    :class:`~repro.sim.switchsim.SwitchLevelSimulator` run: transitions
    at or beyond ``stimulus.duration`` are ignored and simultaneous
    events form a single step, so replaying the returned sequence
    reproduces its settled per-net toggle counts exactly.  Returns
    ``(vectors, durations)`` where ``durations[k]`` is how long step
    ``k``'s settled values persist (summing to ``stimulus.duration``) —
    derived together so the two can never fall out of alignment.
    """
    values: Dict[str, int] = {}
    events: List[Tuple[float, str, int]] = []
    for name in input_names:
        initial, times = stimulus.waveforms[name]
        values[name] = int(initial)
        value = int(initial)
        for t in times:
            value ^= 1
            if t < stimulus.duration:
                events.append((t, name, value))
    events.sort(key=lambda e: e[0])
    steps = [dict(values)]
    step_times = [0.0]
    index = 0
    while index < len(events):
        time = events[index][0]
        while index < len(events) and events[index][0] == time:
            _, name, value = events[index]
            values[name] = value
            index += 1
        steps.append(dict(values))
        step_times.append(time)
    durations = [
        after - now for now, after in zip(step_times, step_times[1:])
    ] + [stimulus.duration - step_times[-1]]
    return steps, durations


def stream_rng(seed: int, net: str) -> np.random.Generator:
    """An RNG substream owned by one input net.

    Seeded by ``(seed, crc32(net))`` so each input's sample path is
    independent of every other input's *and* of the set of inputs being
    drawn — the property the incremental engine needs: regenerating one
    input's stream after a statistics edit leaves all other streams
    untouched, so a cone-local resettle is bit-identical to a
    from-scratch run.  (The shared-stream :meth:`BitParallelSimulator.run`
    interleaves draws across inputs, where any single-input change
    perturbs every stream.)
    """
    return np.random.default_rng([seed, zlib.crc32(net.encode("utf-8"))])


def markov_stream_words(stats: SignalStats, lanes: int, steps: int, dt: float,
                        rng: np.random.Generator) -> List[int]:
    """``steps`` packed words of one input's discretised Markov chain.

    The same chain :meth:`BitParallelSimulator.run` drives — stationary
    initial word, then per-step fall/rise flips with probabilities
    ``dt / mean_dwell`` — drawn from a dedicated ``rng``.
    """
    high, low = stats.mean_high_dwell, stats.mean_low_dwell
    if np.isfinite(high) and dt > min(high, low):
        raise ValueError(
            f"dt={dt:g} too coarse: per-step toggle probability exceeds 1 "
            f"(mean dwells are {high:g}/{low:g})"
        )
    mask = (1 << lanes) - 1
    word = _bernoulli_word(rng, stats.probability, lanes)
    words = [word]
    for _ in range(steps - 1):
        if np.isfinite(high):
            fall = _bernoulli_word(rng, dt / high, lanes)
            rise = _bernoulli_word(rng, dt / low, lanes)
            word = word ^ ((word & fall) | (~word & mask & rise))
        words.append(word)
    return words


def report_from_history(history: Mapping[str, Sequence[int]], lanes: int,
                        dt: float) -> BitSimReport:
    """Fold per-net word streams into a :class:`BitSimReport`.

    ``history[net]`` is the net's packed value at every step
    (:meth:`BitParallelSimulator.settle_streams`); counting ones and
    inter-step toggles here matches what :meth:`BitParallelSimulator.run`
    accumulates on the fly.
    """
    steps = len(next(iter(history.values())))
    ones = {}
    toggles = {}
    for net, words in history.items():
        ones[net] = sum(w.bit_count() for w in words)
        toggles[net] = sum(
            (a ^ b).bit_count() for a, b in zip(words, words[1:])
        )
    return BitSimReport(lanes, steps, dt, ones, toggles)


@dataclass(frozen=True)
class BitSimReport:
    """Measured per-net statistics of one bit-parallel run.

    ``ones[net]`` counts set bits over all lanes and steps;
    ``toggles[net]`` counts lane bits that changed between consecutive
    steps.  ``dt`` is the time represented by one step (seconds for the
    paper's Scenario A, one clock cycle for Scenario B-style stimuli).

    For uniformly timed runs (:meth:`BitParallelSimulator.run`) every
    step carries equal weight and probabilities are one-counts over
    samples.  Replayed stimuli have unequal step durations, so those
    reports additionally carry per-net ``high_time`` (per lane, in
    stimulus time) and probabilities are time-weighted — the same
    ``high_time / duration`` convention as
    :meth:`repro.sim.switchsim.SwitchSimReport.measured_stats`.
    """

    lanes: int
    steps: int
    dt: float
    ones: Dict[str, int]
    toggles: Dict[str, int]
    high_time: Optional[Dict[str, float]] = None
    """Per-net high time summed over lanes (set only for timed replays)."""

    time_total: Optional[float] = None
    """Sum of the step durations per lane (set only for timed replays)."""

    @property
    def samples(self) -> int:
        """Total sampled values per net."""
        return self.lanes * self.steps

    @property
    def duration(self) -> float:
        """Observed time per lane: the step durations' sum for timed
        replays, ``(steps - 1) * dt`` for uniformly timed runs."""
        if self.time_total is not None:
            return self.time_total
        return (self.steps - 1) * self.dt

    def probability(self, net: str) -> float:
        """Measured equilibrium probability of ``net``.

        Time-weighted when the report carries step durations (stimulus
        replay), sample-weighted otherwise.
        """
        if self.high_time is not None and self.duration > 0.0:
            return self.high_time[net] / (self.lanes * self.duration)
        return self.ones[net] / self.samples

    def density(self, net: str) -> float:
        """Measured transition density of ``net`` (toggles per time unit)."""
        if self.steps < 2 or self.duration <= 0.0:
            return 0.0
        return self.toggles[net] / (self.lanes * self.duration)

    def measured_stats(self, net: str) -> SignalStats:
        """The (P, D) pair of ``net``, clamped like the analytic engines."""
        p = min(1.0, max(0.0, self.probability(net)))
        d = self.density(net)
        if d > 0.0:
            p = min(1.0 - _EPS, max(_EPS, p))
        return SignalStats(p, d)

    def stats_map(self) -> Dict[str, SignalStats]:
        """Measured statistics of every net."""
        return {net: self.measured_stats(net) for net in self.ones}


class BitParallelSimulator:
    """Evaluate a mapped circuit on ``lanes`` packed vectors per sweep.

    The constructor compiles every gate's truth table into a word
    evaluator once; :meth:`sweep` then settles all nets for one packed
    input assignment, and :meth:`run` drives the circuit with sampled
    Markov-chain inputs to measure (P, D) and toggle counts.
    """

    def __init__(self, circuit: Circuit, lanes: int = DEFAULT_LANES):
        if lanes < 1:
            raise ValueError("need at least one sample lane")
        circuit.validate()
        self.circuit = circuit
        self.lanes = lanes
        self.mask = (1 << lanes) - 1
        self._program: List[Tuple[str, Tuple[str, ...], Callable]] = []
        for gate in circuit.topo_gates():
            tt = gate.compiled().output_tt
            fn = _compile_word_function(tt.nvars, tt.bits)
            pin_nets = tuple(gate.pin_nets[pin] for pin in gate.template.pins)
            self._program.append((gate.output, pin_nets, fn))

    # ------------------------------------------------------------------
    def sweep(self, input_words: Mapping[str, int]) -> Dict[str, int]:
        """One topological settle: packed values of every net.

        Input words must fit the simulator's lane count — extra bits
        would be silently averaged away as dropped samples otherwise.
        """
        words: Dict[str, int] = {}
        for net in self.circuit.inputs:
            word = input_words[net]
            if word >> self.lanes:
                raise ValueError(
                    f"input word for {net!r} has bits beyond lane {self.lanes - 1}; "
                    f"build the simulator with enough lanes"
                )
            words[net] = word
        mask = self.mask
        for output, pins, fn in self._program:
            words[output] = fn([words[p] for p in pins], mask)
        return words

    # ------------------------------------------------------------------
    def run(self, input_stats: Mapping[str, SignalStats], steps: int = 64,
            dt: Optional[float] = None, seed: Optional[int] = 0,
            rng: Optional[np.random.Generator] = None) -> BitSimReport:
        """Sample ``steps`` time steps of ``lanes`` independent input streams.

        Each input follows the discretised two-state Markov chain of its
        :class:`SignalStats`: a high lane falls with probability
        ``dt / mean_high_dwell`` per step and a low lane rises with
        ``dt / mean_low_dwell``, which preserves the stationary
        probability exactly and yields ``dt * D`` expected transitions
        per step.  ``dt`` defaults to half the shortest mean dwell time
        over the inputs, keeping every per-step toggle probability at or
        below one half.
        """
        missing = [n for n in self.circuit.inputs if n not in input_stats]
        if missing:
            raise KeyError(f"missing input statistics for {missing}")
        if steps < 1:
            raise ValueError("need at least one time step")
        if rng is None:
            rng = _resolve_rng(seed)

        dwells: Dict[str, Tuple[float, float]] = {}
        shortest = np.inf
        for net in self.circuit.inputs:
            stats = input_stats[net]
            high, low = stats.mean_high_dwell, stats.mean_low_dwell
            dwells[net] = (high, low)
            shortest = min(shortest, high, low)
        if dt is None:
            dt = 0.5 * shortest if np.isfinite(shortest) else 1.0
        if dt <= 0.0:
            raise ValueError("dt must be positive")
        if dt > shortest:
            raise ValueError(
                f"dt={dt:g} too coarse: per-step toggle probability exceeds 1 "
                f"(shortest mean dwell is {shortest:g})"
            )

        words = {
            net: _bernoulli_word(rng, input_stats[net].probability, self.lanes)
            for net in self.circuit.inputs
        }
        values = self.sweep(words)
        ones = {net: word.bit_count() for net, word in values.items()}
        toggles = {net: 0 for net in values}

        for _ in range(steps - 1):
            for net in self.circuit.inputs:
                high, low = dwells[net]
                if not np.isfinite(high):
                    continue  # constant signal
                word = words[net]
                fall = _bernoulli_word(rng, dt / high, self.lanes)
                rise = _bernoulli_word(rng, dt / low, self.lanes)
                words[net] = word ^ ((word & fall) | (~word & self.mask & rise))
            new_values = self.sweep(words)
            for net, word in new_values.items():
                ones[net] += word.bit_count()
                toggles[net] += (word ^ values[net]).bit_count()
            values = new_values

        return BitSimReport(self.lanes, steps, dt, ones, toggles)

    # ------------------------------------------------------------------
    def run_vectors(self, vector_words: Sequence[Mapping[str, int]],
                    dt: float = 1.0,
                    durations: Optional[Sequence[float]] = None) -> BitSimReport:
        """Replay an explicit sequence of packed input words.

        Step ``t`` of lane ``k`` sees bit ``k`` of ``vector_words[t]``;
        toggles are counted between consecutive steps per lane.
        ``durations`` optionally gives the time each vector's settled
        values persist (unequal step lengths); the report then carries
        time-weighted ``high_time``, its probabilities become
        time-weighted, and ``dt`` is recorded as 0 (there is no uniform
        step size — read ``duration`` instead).
        """
        if not vector_words:
            raise ValueError("need at least one vector word")
        if durations is not None and len(durations) != len(vector_words):
            raise ValueError("need one duration per vector word")
        if durations is not None:
            dt = 0.0
        values = self.sweep(vector_words[0])
        ones = {net: word.bit_count() for net, word in values.items()}
        toggles = {net: 0 for net in values}
        high_time = None
        time_total = None
        if durations is not None:
            if any(d < 0.0 for d in durations):
                raise ValueError("durations must be non-negative")
            high_time = {
                net: word.bit_count() * durations[0]
                for net, word in values.items()
            }
            time_total = float(sum(durations))
        for step, step_words in enumerate(vector_words[1:], start=1):
            new_values = self.sweep(step_words)
            for net, word in new_values.items():
                ones[net] += word.bit_count()
                toggles[net] += (word ^ values[net]).bit_count()
                if high_time is not None:
                    high_time[net] += word.bit_count() * durations[step]
            values = new_values
        return BitSimReport(self.lanes, len(vector_words), dt, ones, toggles,
                            high_time, time_total)

    # ------------------------------------------------------------------
    def run_stimulus(self, stimulus: Stimulus) -> BitSimReport:
        """Replay a concrete :class:`Stimulus` on one lane.

        Settles the circuit at every event timestamp — the bit-parallel
        twin of ``SwitchLevelSimulator(delay_mode="zero")``: the
        report's toggle counts match that simulator's per-net transition
        counts exactly on identical stimulus, and its probabilities are
        time-weighted over the (unequal) inter-event intervals, matching
        the event-driven ``measured_stats`` convention.
        """
        if self.lanes != 1:
            raise ValueError("stimulus replay needs a single-lane simulator")
        steps, durations = stimulus_step_vectors(stimulus, self.circuit.inputs)
        return self.run_vectors(steps, durations=durations)


    # ------------------------------------------------------------------
    def settle_streams(
        self, streams: Mapping[str, Sequence[int]]
    ) -> Dict[str, List[int]]:
        """Settle every step of per-input word streams, keeping history.

        Returns ``history[net] = [word at step 0, word at step 1, ...]``
        for every net — the state a later :meth:`resettle` updates in
        place.  All streams must be equally long and fit the lane count.
        """
        lengths = {len(words) for words in streams.values()}
        if len(lengths) != 1:
            raise ValueError(f"input streams differ in length: {sorted(lengths)}")
        (steps,) = lengths
        history: Dict[str, List[int]] = {}
        for net in self.circuit.inputs:
            words = list(streams[net])
            if any(word >> self.lanes for word in words):
                raise ValueError(
                    f"input stream for {net!r} has bits beyond lane {self.lanes - 1}"
                )
            history[net] = words
        mask = self.mask
        for output, pins, fn in self._program:
            pin_streams = [history[p] for p in pins]
            history[output] = [
                fn([s[k] for s in pin_streams], mask) for k in range(steps)
            ]
        return history

    def resettle(self, history: Dict[str, List[int]],
                 gates: Sequence[GateInstance]) -> Tuple[str, ...]:
        """Recompute only ``gates`` (given in topological order) in place.

        The incremental path: each gate's word function is recompiled
        from its *current* template and configuration (so template
        swaps applied after construction are honoured — unlike
        :meth:`sweep`, which runs the construction-time program), and
        its full stream is rebuilt from the fanin streams in
        ``history``.  Because the gates arrive in dependency order, a
        dirty gate always reads already-updated fanin streams; clean
        fanins keep their stored streams.  Returns the updated nets.
        """
        mask = self.mask
        for gate in gates:
            tt = gate.compiled().output_tt
            fn = _compile_word_function(tt.nvars, tt.bits)
            pin_streams = [
                history[gate.pin_nets[pin]] for pin in gate.template.pins
            ]
            history[gate.output] = [
                fn([s[k] for s in pin_streams], mask)
                for k in range(len(history[gate.output]))
            ]
        return tuple(g.output for g in gates)


def sampled_stats(circuit: Circuit, input_stats: Mapping[str, SignalStats],
                  lanes: int = DEFAULT_LANES, steps: int = 64,
                  dt: Optional[float] = None,
                  seed: Optional[int] = 0) -> Dict[str, SignalStats]:
    """Monte-Carlo (P, D) estimate for every net of ``circuit``.

    API-compatible with :func:`repro.stochastic.density.local_stats` and
    :func:`~repro.stochastic.density.exact_stats`; also reachable as
    ``propagate_stats(..., method="sampled")``.
    """
    simulator = BitParallelSimulator(circuit, lanes)
    report = simulator.run(input_stats, steps=steps, dt=dt, seed=seed)
    return report.stats_map()
