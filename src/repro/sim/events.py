"""Event queue for the event-driven simulators.

A thin wrapper over ``heapq`` with a monotonically increasing sequence
number so simultaneous events pop in schedule order (deterministic
runs), plus lazy cancellation for inertial-delay modelling.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, Optional, Tuple

__all__ = ["Event", "EventQueue"]


@dataclass(frozen=True, order=False)
class Event:
    """A scheduled value change on a net."""

    time: float
    seq: int
    net: str
    value: int


class EventQueue:
    """Time-ordered event queue with stable tie-breaking and cancellation."""

    def __init__(self):
        self._heap = []
        self._seq = itertools.count()
        self._cancelled: set = set()

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def schedule(self, time: float, net: str, value: int) -> Event:
        """Add an event; returns it (the handle used for cancellation)."""
        if time < 0.0:
            raise ValueError("cannot schedule in negative time")
        event = Event(time, next(self._seq), net, int(value))
        heapq.heappush(self._heap, (event.time, event.seq, event))
        return event

    def cancel(self, event: Event) -> None:
        """Mark a scheduled event as void (lazy removal)."""
        self._cancelled.add((event.time, event.seq))

    def pop(self) -> Optional[Event]:
        """Next live event, or ``None`` when the queue is exhausted."""
        while self._heap:
            time, seq, event = heapq.heappop(self._heap)
            if (time, seq) in self._cancelled:
                self._cancelled.discard((time, seq))
                continue
            return event
        return None

    def peek_time(self) -> Optional[float]:
        while self._heap:
            time, seq, _ = self._heap[0]
            if (time, seq) in self._cancelled:
                heapq.heappop(self._heap)
                self._cancelled.discard((time, seq))
                continue
            return time
        return None
