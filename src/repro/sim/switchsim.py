"""Event-driven switch-level power simulation.

This is the reproduction's stand-in for the SLS simulator the paper
validates against (reference [11]): transistor-level power metering on
top of logic-level event timing.

* Every gate is evaluated at switch level: node values follow the
  conducting-path functions ``H``/``G`` (1 when connected to Vdd, 0
  when connected to Vss, *retained* when isolated), exactly the charge
  model of §3.3.  Internal nodes respond instantly to input changes;
  every node transition is billed ``½·C·Vdd²``.
* Output changes propagate with per-pin Elmore delays of the gate's
  *current transistor ordering* (or zero delay), so unequal path delays
  generate the glitches — "useless signal transitions" — that motivate
  the paper.  Transport delay is the default; inertial filtering is
  optional.
* The report carries per-gate internal/output energy, per-net
  transition counts and measured (P, D) statistics, so simulated
  figures can be compared directly with the stochastic model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from ..circuit.netlist import Circuit, GateInstance
from ..circuit.topology import topological_gates
from ..gates.capacitance import TechParams, node_capacitance
from ..gates.network import OUT
from ..stochastic.signal import SignalStats
from ..timing.elmore import gate_pin_delay
from ..timing.sta import DEFAULT_PO_LOAD
from .events import Event, EventQueue
from .stimulus import Stimulus

__all__ = ["SwitchLevelSimulator", "SwitchSimReport", "GateEnergy"]

DELAY_MODES = ("elmore", "zero")


@dataclass
class GateEnergy:
    """Energy split of one gate instance."""

    internal: float = 0.0
    output: float = 0.0

    @property
    def total(self) -> float:
        return self.internal + self.output


@dataclass
class SwitchSimReport:
    """Results of one simulation run."""

    duration: float
    gate_energy: Dict[str, GateEnergy]
    input_net_energy: float
    net_transitions: Dict[str, int]
    net_high_time: Dict[str, float]

    @property
    def energy(self) -> float:
        """Total gate energy (internal nodes + driven nets), joules."""
        return sum(e.total for e in self.gate_energy.values())

    @property
    def internal_energy(self) -> float:
        return sum(e.internal for e in self.gate_energy.values())

    @property
    def output_energy(self) -> float:
        return sum(e.output for e in self.gate_energy.values())

    @property
    def power(self) -> float:
        """Average power over the run (W)."""
        return self.energy / self.duration

    def measured_stats(self, net: str) -> SignalStats:
        """Empirical (P, D) of a net over the run."""
        p = self.net_high_time[net] / self.duration
        d = self.net_transitions[net] / self.duration
        if d > 0.0:
            p = min(1.0 - 1e-12, max(1e-12, p))
        else:
            p = min(1.0, max(0.0, p))
        return SignalStats(p, d)


class SwitchLevelSimulator:
    """Simulate a mapped circuit under a concrete input stimulus."""

    def __init__(self, circuit: Circuit, tech: Optional[TechParams] = None,
                 po_load: float = DEFAULT_PO_LOAD, delay_mode: str = "elmore",
                 inertial: bool = False):
        if delay_mode not in DELAY_MODES:
            raise ValueError(f"delay_mode must be one of {DELAY_MODES}")
        circuit.validate()
        self.circuit = circuit
        self.tech = tech if tech is not None else TechParams()
        self.po_load = po_load
        self.delay_mode = delay_mode
        self.inertial = inertial
        self._factor = self.tech.switch_energy_factor
        self._prepare()

    def _prepare(self) -> None:
        """Precompute per-gate data and the fanout map."""
        self._gates = list(topological_gates(self.circuit))
        self._compiled: Dict[str, object] = {}
        self._node_caps: Dict[str, Dict[str, float]] = {}
        self._net_cap: Dict[str, float] = {}
        self._pin_delays: Dict[str, Dict[str, float]] = {}
        self._fanout: Dict[str, List[Tuple[GateInstance, str]]] = {
            net: [] for net in self.circuit.nets()
        }
        for gate in self._gates:
            compiled = gate.compiled()
            config = gate.effective_config()
            load = self.circuit.output_load(gate.output, self.tech, self.po_load)
            self._compiled[gate.name] = compiled
            caps = {
                node: node_capacitance(compiled, node, self.tech, load=load)
                for node in compiled.nodes
            }
            self._node_caps[gate.name] = caps
            self._net_cap[gate.output] = caps[OUT]
            if self.delay_mode == "elmore":
                self._pin_delays[gate.name] = {
                    pin: gate_pin_delay(compiled, config, pin, self.tech, load)
                    for pin in gate.template.pins
                }
            else:
                self._pin_delays[gate.name] = {pin: 0.0 for pin in gate.template.pins}
            for pin in gate.template.pins:
                self._fanout[gate.pin_nets[pin]].append((gate, pin))
        for net in self.circuit.inputs:
            # Primary-input nets carry the pin loads they drive.
            self._net_cap[net] = self.circuit.output_load(net, self.tech, self.po_load)

    # ------------------------------------------------------------------
    def run(self, stimulus: Stimulus) -> SwitchSimReport:
        """Simulate the stimulus and return the energy/activity report.

        ``delay_mode="elmore"`` is event driven with per-pin delays (so
        unequal path delays create glitches); ``delay_mode="zero"``
        settles the whole circuit instantaneously at every input event
        (one topological sweep per timestamp — no delta-cycle hazards),
        which measures the steady-state activity the stochastic model
        predicts.
        """
        missing = [n for n in self.circuit.inputs if n not in stimulus.waveforms]
        if missing:
            raise KeyError(f"stimulus missing waveforms for {missing}")
        if self.delay_mode == "zero":
            return self._run_zero_delay(stimulus)
        duration = stimulus.duration

        # --- initial state: settle the circuit at t = 0 (no energy billed).
        values: Dict[str, int] = {
            net: stimulus.waveforms[net][0] for net in self.circuit.inputs
        }
        states: Dict[str, Dict[str, int]] = {}
        for gate in self._gates:
            compiled = self._compiled[gate.name]
            minterm = self._minterm(gate, values)
            previous = {node: 0 for node in compiled.nodes}
            st = compiled.evaluate_nodes(minterm, previous)
            states[gate.name] = st
            values[gate.output] = st[OUT]

        gate_energy = {g.name: GateEnergy() for g in self._gates}
        net_transitions = {net: 0 for net in self.circuit.nets()}
        high_since: Dict[str, float] = {net: 0.0 for net in self.circuit.nets()}
        high_time: Dict[str, float] = {net: 0.0 for net in self.circuit.nets()}
        input_net_energy = 0.0

        queue = EventQueue()
        for net in self.circuit.inputs:
            initial, times = stimulus.waveforms[net]
            value = initial
            for t in times:
                value ^= 1
                queue.schedule(t, net, value)
        pending: Dict[str, Event] = {}

        while True:
            event = queue.pop()
            if event is None or event.time >= duration:
                break
            net = event.net
            if pending.get(net) is event:
                del pending[net]
            if event.value == values[net]:
                continue
            # --- commit the net transition.
            if values[net]:
                high_time[net] += event.time - high_since[net]
            else:
                high_since[net] = event.time
            values[net] = event.value
            net_transitions[net] += 1
            energy = self._factor * self._net_cap[net]
            driver = self.circuit.driver(net)
            if driver is not None:
                gate_energy[driver.name].output += energy
            else:
                input_net_energy += energy
            # --- re-evaluate every fanout gate.
            for gate, pin in self._fanout[net]:
                compiled = self._compiled[gate.name]
                minterm = self._minterm(gate, values)
                previous = states[gate.name]
                new_states = compiled.evaluate_nodes(minterm, previous)
                caps = self._node_caps[gate.name]
                acc = 0.0
                for node in compiled.internal_nodes:
                    if new_states[node] != previous[node]:
                        acc += self._factor * caps[node]
                if acc:
                    gate_energy[gate.name].internal += acc
                states[gate.name] = new_states
                new_out = new_states[OUT]
                self._schedule_output(
                    queue, pending, gate, pin, event.time, new_out, values
                )

        for net in self.circuit.nets():
            if values[net]:
                high_time[net] += duration - high_since[net]

        return SwitchSimReport(
            duration=duration,
            gate_energy=gate_energy,
            input_net_energy=input_net_energy,
            net_transitions=net_transitions,
            net_high_time=high_time,
        )

    # ------------------------------------------------------------------
    def _run_zero_delay(self, stimulus: Stimulus) -> SwitchSimReport:
        """Settle the whole circuit at each input timestamp (no glitches)."""
        duration = stimulus.duration
        values: Dict[str, int] = {
            net: stimulus.waveforms[net][0] for net in self.circuit.inputs
        }
        states: Dict[str, Dict[str, int]] = {}
        for gate in self._gates:
            compiled = self._compiled[gate.name]
            minterm = self._minterm(gate, values)
            st = compiled.evaluate_nodes(
                minterm, {node: 0 for node in compiled.nodes}
            )
            states[gate.name] = st
            values[gate.output] = st[OUT]

        gate_energy = {g.name: GateEnergy() for g in self._gates}
        net_transitions = {net: 0 for net in self.circuit.nets()}
        high_since: Dict[str, float] = {net: 0.0 for net in self.circuit.nets()}
        high_time: Dict[str, float] = {net: 0.0 for net in self.circuit.nets()}
        input_net_energy = 0.0

        # Group input transitions by timestamp.
        events: List[Tuple[float, str, int]] = []
        for net in self.circuit.inputs:
            initial, times = stimulus.waveforms[net]
            value = initial
            for t in times:
                value ^= 1
                events.append((t, net, value))
        events.sort(key=lambda e: e[0])

        def commit(net: str, new_value: int, time: float) -> float:
            if values[net]:
                high_time[net] += time - high_since[net]
            else:
                high_since[net] = time
            values[net] = new_value
            net_transitions[net] += 1
            return self._factor * self._net_cap[net]

        index = 0
        while index < len(events):
            time = events[index][0]
            if time >= duration:
                break
            while index < len(events) and events[index][0] == time:
                _, net, value = events[index]
                index += 1
                if value == values[net]:
                    continue
                input_net_energy += commit(net, value, time)
            # One settled sweep: every gate sees final fanin values.
            for gate in self._gates:
                compiled = self._compiled[gate.name]
                minterm = self._minterm(gate, values)
                previous = states[gate.name]
                new_states = compiled.evaluate_nodes(minterm, previous)
                caps = self._node_caps[gate.name]
                for node in compiled.internal_nodes:
                    if new_states[node] != previous[node]:
                        gate_energy[gate.name].internal += self._factor * caps[node]
                states[gate.name] = new_states
                if new_states[OUT] != values[gate.output]:
                    gate_energy[gate.name].output += commit(
                        gate.output, new_states[OUT], time
                    )

        for net in self.circuit.nets():
            if values[net]:
                high_time[net] += duration - high_since[net]
        return SwitchSimReport(
            duration=duration,
            gate_energy=gate_energy,
            input_net_energy=input_net_energy,
            net_transitions=net_transitions,
            net_high_time=high_time,
        )

    # ------------------------------------------------------------------
    def _minterm(self, gate: GateInstance, values: Mapping[str, int]) -> int:
        minterm = 0
        for j, pin in enumerate(gate.template.pins):
            if values[gate.pin_nets[pin]]:
                minterm |= 1 << j
        return minterm

    def _schedule_output(self, queue: EventQueue, pending: Dict[str, Event],
                         gate: GateInstance, pin: str, now: float,
                         new_out: int, values: Mapping[str, int]) -> None:
        delay = self._pin_delays[gate.name][pin]
        net = gate.output
        if self.inertial:
            previous = pending.get(net)
            if previous is not None:
                if previous.value == new_out:
                    return  # already in flight
                queue.cancel(previous)
                del pending[net]
            if new_out == values[net]:
                return  # pulse suppressed
            pending[net] = queue.schedule(now + delay, net, new_out)
        else:
            previous = pending.get(net)
            if previous is not None and previous.value == new_out and previous.time <= now + delay:
                return  # identical change already in flight
            pending[net] = queue.schedule(now + delay, net, new_out)
