"""Simulation substrates: event queue, stimulus, switch-level power sim."""

from .events import Event, EventQueue
from .logicsim import check_equivalence, count_toggles, exhaustive_vectors, random_vectors
from .stimulus import ScenarioA, ScenarioB, Stimulus
from .switchsim import GateEnergy, SwitchLevelSimulator, SwitchSimReport

__all__ = [
    "Event",
    "EventQueue",
    "ScenarioA",
    "ScenarioB",
    "Stimulus",
    "SwitchLevelSimulator",
    "SwitchSimReport",
    "GateEnergy",
    "check_equivalence",
    "count_toggles",
    "exhaustive_vectors",
    "random_vectors",
]
