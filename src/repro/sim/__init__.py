"""Simulation substrates: event queue, stimulus, switch-level power sim,
bit-parallel Monte Carlo sampling (see README.md in this directory)."""

from .bitsim import (
    BitParallelSimulator,
    BitSimReport,
    pack_vectors,
    sampled_stats,
    stimulus_step_vectors,
)
from .events import Event, EventQueue
from .logicsim import check_equivalence, count_toggles, exhaustive_vectors, random_vectors
from .stimulus import ScenarioA, ScenarioB, Stimulus
from .switchsim import GateEnergy, SwitchLevelSimulator, SwitchSimReport

__all__ = [
    "Event",
    "EventQueue",
    "ScenarioA",
    "ScenarioB",
    "Stimulus",
    "SwitchLevelSimulator",
    "SwitchSimReport",
    "GateEnergy",
    "BitParallelSimulator",
    "BitSimReport",
    "sampled_stats",
    "pack_vectors",
    "stimulus_step_vectors",
    "check_equivalence",
    "count_toggles",
    "exhaustive_vectors",
    "random_vectors",
]
