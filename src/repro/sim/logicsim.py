"""Zero-delay logic simulation utilities.

Used for functional equivalence checking (e.g. mapper output versus the
source logic network) and for quick zero-delay activity estimates.
Works uniformly on :class:`~repro.circuit.netlist.Circuit` and
:class:`~repro.circuit.logic.LogicNetwork` because both expose
``inputs``/``outputs``/``evaluate``.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

import numpy as np

__all__ = [
    "random_vectors",
    "exhaustive_vectors",
    "outputs_equal",
    "check_equivalence",
    "count_toggles",
]


def random_vectors(input_names: Sequence[str], count: int,
                   rng: np.random.Generator) -> List[Dict[str, bool]]:
    """``count`` uniform random input assignments."""
    bits = rng.integers(0, 2, size=(count, len(input_names)))
    return [
        {name: bool(bits[i, j]) for j, name in enumerate(input_names)}
        for i in range(count)
    ]


def exhaustive_vectors(input_names: Sequence[str]) -> List[Dict[str, bool]]:
    """All ``2**n`` assignments (keep ``n`` small)."""
    if len(input_names) > 20:
        raise ValueError("refusing to enumerate more than 2**20 vectors")
    return [
        dict(zip(input_names, combo))
        for combo in itertools.product([False, True], repeat=len(input_names))
    ]


def outputs_equal(design_a, design_b, vector: Mapping[str, bool]) -> bool:
    """Compare primary outputs of two designs on one vector."""
    va = design_a.evaluate(vector)
    vb = design_b.evaluate(vector)
    return all(bool(va[o]) == bool(vb[o]) for o in design_a.outputs)


def check_equivalence(design_a, design_b, vectors: Optional[Iterable[Mapping[str, bool]]] = None,
                      seed: int = 0, samples: int = 256) -> bool:
    """Equivalence check: exhaustive up to 12 inputs, sampled beyond.

    Both designs must agree on input and output name sets.
    """
    if set(design_a.inputs) != set(design_b.inputs):
        raise ValueError("designs have different primary inputs")
    if set(design_a.outputs) != set(design_b.outputs):
        raise ValueError("designs have different primary outputs")
    if vectors is None:
        if len(design_a.inputs) <= 12:
            vectors = exhaustive_vectors(list(design_a.inputs))
        else:
            rng = np.random.default_rng(seed)
            vectors = random_vectors(list(design_a.inputs), samples, rng)
    return all(outputs_equal(design_a, design_b, v) for v in vectors)


def count_toggles(design, vectors: Sequence[Mapping[str, bool]]) -> Dict[str, int]:
    """Zero-delay toggle counts of every net across consecutive vectors."""
    counts: Dict[str, int] = {}
    previous: Optional[Dict[str, bool]] = None
    for vector in vectors:
        values = design.evaluate(vector)
        if previous is not None:
            for net, value in values.items():
                if bool(previous[net]) != bool(value):
                    counts[net] = counts.get(net, 0) + 1
        else:
            counts = {net: 0 for net in values}
        previous = values
    return counts
