"""Trace-stream digestion: the ``repro trace summarize`` backend.

Reads a JSONL trace (see :mod:`repro.obs.trace` for the event schema)
and reduces it to a per-span-name table — count, total time, self time
(total minus the time spent in child spans), p50 and p95 — plus a
top-N list of the slowest individual spans, so a trace is readable
without any external tooling.

Everything here is deterministic for a given input file: span rows are
ordered by descending total time with the span name as tie-break, the
slowest list by descending duration then timestamp, and percentiles use
the nearest-rank method (no interpolation), so the summary of a stored
trace is byte-stable.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

__all__ = [
    "SpanStats",
    "TraceSummary",
    "read_records",
    "summarize_records",
    "summarize_file",
    "render_summary",
]


@dataclass
class SpanStats:
    """Aggregate of every completed span sharing one name."""

    name: str
    count: int = 0
    total_ns: int = 0
    self_ns: int = 0
    errors: int = 0
    durations: List[int] = field(default_factory=list)

    def percentile(self, q: float) -> int:
        """Nearest-rank percentile of the span durations (deterministic)."""
        return _nearest_rank(sorted(self.durations), q)


def _nearest_rank(ordered: List[int], q: float) -> int:
    """``q`` in (0, 1]: the nearest-rank percentile of a sorted list.

    Rank = ceil(q * n) computed in integer math (q arrives as a
    two-decimal fraction), so no float rounding can move a rank.
    """
    if not ordered:
        return 0
    n = len(ordered)
    rank = -((-n * int(round(q * 100))) // 100)  # ceil(n * q)
    return ordered[min(n, max(1, rank)) - 1]


@dataclass
class TraceSummary:
    """Everything :func:`render_summary` needs, in deterministic order."""

    spans: List[SpanStats]
    slowest: List[Tuple[int, int, str, int]]
    """``(dur_ns, ts_ns, name, depth)`` of individual spans, slowest first."""

    records: int = 0
    instants: int = 0
    unclosed: List[str] = field(default_factory=list)
    """Names of spans begun but never ended (a crashed or truncated run)."""

    metrics: Optional[Dict[str, object]] = None
    """The last metrics-snapshot (``M``) record's payload, if any."""


def read_records(path: str) -> Iterator[dict]:
    """Yield the JSON records of a trace file, skipping malformed lines.

    A trace cut short mid-line (a killed process) should still
    summarize; the damaged tail is dropped, not fatal.
    """
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict):
                yield record


def summarize_records(records: Iterable[dict]) -> TraceSummary:
    """Reduce an event stream to per-name statistics and a slowest list."""
    stats: Dict[str, SpanStats] = {}
    #: Open-span stack entries: ``[name, child_ns]`` — child time
    #: accumulates as nested spans end, so self = dur - child_ns.
    stack: List[List[object]] = []
    slowest: List[Tuple[int, int, str, int]] = []
    count = 0
    instants = 0
    metrics: Optional[Dict[str, object]] = None
    for record in records:
        count += 1
        ev = record.get("ev")
        if ev == "B":
            stack.append([record.get("name", "?"), 0])
        elif ev == "E":
            name = record.get("name", "?")
            dur = int(record.get("dur_ns", 0))
            child_ns = 0
            # Tolerate streams whose B was lost (truncated head): only
            # pop when the top matches this span's name.
            if stack and stack[-1][0] == name:
                child_ns = int(stack.pop()[1])
            if stack:
                stack[-1][1] += dur
            entry = stats.get(name)
            if entry is None:
                entry = stats[name] = SpanStats(name)
            entry.count += 1
            entry.total_ns += dur
            entry.self_ns += dur - child_ns
            entry.durations.append(dur)
            if record.get("error"):
                entry.errors += 1
            slowest.append((dur, int(record.get("ts_ns", 0)), name,
                            int(record.get("depth", 0))))
        elif ev == "I":
            instants += 1
        elif ev == "M":
            payload = record.get("metrics")
            if isinstance(payload, dict):
                metrics = payload
    slowest.sort(key=lambda item: (-item[0], item[1], item[2]))
    ordered = sorted(stats.values(), key=lambda s: (-s.total_ns, s.name))
    return TraceSummary(
        spans=ordered,
        slowest=slowest,
        records=count,
        instants=instants,
        unclosed=[str(entry[0]) for entry in stack],
        metrics=metrics,
    )


def summarize_file(path: str) -> TraceSummary:
    return summarize_records(read_records(path))


def _ms(ns: int) -> str:
    return f"{ns / 1e6:.3f}"


def render_summary(summary: TraceSummary, top: int = 10) -> str:
    """The human-readable report of ``repro trace summarize``."""
    from ..analysis.report import format_table

    lines: List[str] = []
    rows = [
        (
            entry.name,
            entry.count,
            _ms(entry.total_ns),
            _ms(entry.self_ns),
            _ms(entry.percentile(0.50)),
            _ms(entry.percentile(0.95)),
        )
        for entry in summary.spans
    ]
    lines.append(format_table(
        ("span", "count", "total ms", "self ms", "p50 ms", "p95 ms"),
        rows,
        title=f"trace summary - {summary.records} records, "
              f"{summary.instants} instants",
    ))
    if summary.slowest:
        lines.append("")
        lines.append(format_table(
            ("dur ms", "at ms", "depth", "span"),
            [
                (_ms(dur), _ms(ts), depth, name)
                for dur, ts, name, depth in summary.slowest[:top]
            ],
            title=f"slowest spans (top {min(top, len(summary.slowest))})",
        ))
    if summary.unclosed:
        lines.append("")
        lines.append(
            f"WARNING: {len(summary.unclosed)} span(s) never closed: "
            + ", ".join(summary.unclosed)
        )
    if summary.metrics is not None:
        lines.append("")
        lines.append("final metrics snapshot:")
        for name in sorted(summary.metrics):
            lines.append(f"  {name} = {summary.metrics[name]}")
    return "\n".join(lines) + "\n"
