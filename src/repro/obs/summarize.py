"""Trace-stream digestion: the ``repro trace summarize`` backend.

Reads a JSONL trace (see :mod:`repro.obs.trace` for the event schema)
and reduces it to a per-span-name table — count, total time, self time
(total minus the time spent in child spans), p50 and p95 — plus a
top-N list of the slowest individual spans, so a trace is readable
without any external tooling.

Merged multi-process traces (see :mod:`repro.obs.shards`) interleave
records from several pids; nesting is tracked with one open-span stack
per pid, so a worker's spans never count as children of a parent-side
span they merely interleave with.  Damage is tolerated, not fatal: a
truncated tail line (a killed process mid-write) is dropped and counted
in :attr:`TraceSummary.truncated_records`, and spans left open at end
of stream (a crashed process) are closed synthetically at that pid's
last-seen timestamp and flagged in :attr:`SpanStats.unclosed` — their
time still lands in the right rows instead of silently inflating an
unrelated span's child time.

Everything here is deterministic for a given input file: span rows are
ordered by descending total time with the span name as tie-break, the
slowest list by descending duration then timestamp, and percentiles use
the nearest-rank method (no interpolation), so the summary of a stored
trace is byte-stable.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

__all__ = [
    "SpanStats",
    "TraceSummary",
    "RecordReader",
    "read_records",
    "summarize_records",
    "summarize_file",
    "render_summary",
]


@dataclass
class SpanStats:
    """Aggregate of every completed span sharing one name."""

    name: str
    count: int = 0
    total_ns: int = 0
    self_ns: int = 0
    errors: int = 0
    unclosed: int = 0
    """Spans of this name closed synthetically (no E record seen)."""

    durations: List[int] = field(default_factory=list)

    def percentile(self, q: float) -> int:
        """Nearest-rank percentile of the span durations (deterministic)."""
        return _nearest_rank(sorted(self.durations), q)


def _nearest_rank(ordered: List[int], q: float) -> int:
    """``q`` in (0, 1]: the nearest-rank percentile of a sorted list.

    Rank = ceil(q * n) computed in integer math (q arrives as a
    two-decimal fraction), so no float rounding can move a rank.
    """
    if not ordered:
        return 0
    n = len(ordered)
    rank = -((-n * int(round(q * 100))) // 100)  # ceil(n * q)
    return ordered[min(n, max(1, rank)) - 1]


@dataclass
class TraceSummary:
    """Everything :func:`render_summary` needs, in deterministic order."""

    spans: List[SpanStats]
    slowest: List[Tuple[int, int, str, int]]
    """``(dur_ns, ts_ns, name, depth)`` of individual spans, slowest first."""

    records: int = 0
    instants: int = 0
    unclosed: List[str] = field(default_factory=list)
    """Names of spans begun but never ended (a crashed or truncated run)."""

    truncated_records: int = 0
    """Malformed lines dropped while reading (a worker killed mid-write)."""

    metrics: Optional[Dict[str, object]] = None
    """The last metrics-snapshot (``M``) record's payload, if any."""


class RecordReader:
    """Iterate a trace file's JSON records, counting damaged lines.

    A trace cut short mid-line (a killed process) should still
    summarize; malformed or non-object lines are skipped and tallied in
    :attr:`truncated`, which is only complete once iteration finishes.
    The file is opened with ``errors="replace"`` so even a multi-byte
    character split by the cut cannot raise ``UnicodeDecodeError``.
    """

    def __init__(self, path: str):
        self.path = path
        self.truncated = 0

    def __iter__(self) -> Iterator[dict]:
        with open(self.path, encoding="utf-8", errors="replace") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    self.truncated += 1
                    continue
                if isinstance(record, dict):
                    yield record
                else:
                    self.truncated += 1


def read_records(path: str) -> Iterable[dict]:
    """The records of a trace file, skipping (and counting) damage."""
    return RecordReader(path)


def summarize_records(records: Iterable[dict]) -> TraceSummary:
    """Reduce an event stream to per-name statistics and a slowest list."""
    stats: Dict[str, SpanStats] = {}
    #: Per-pid open-span stacks; entries ``[name, child_ns, begin_ts]``
    #: — child time accumulates as nested spans end, so
    #: self = dur - child_ns.
    stacks: Dict[object, List[List[object]]] = {}
    last_ts: Dict[object, int] = {}
    slowest: List[Tuple[int, int, str, int]] = []
    unclosed_names: List[str] = []
    count = 0
    instants = 0
    metrics: Optional[Dict[str, object]] = None

    def entry_for(name: str) -> SpanStats:
        entry = stats.get(name)
        if entry is None:
            entry = stats[name] = SpanStats(name)
        return entry

    def close_dangling(stack: List[List[object]], at_ts: int) -> None:
        # Synthetically end the innermost open span at ``at_ts``: its
        # time is bounded by the event that proved it never closed (the
        # enclosing E, or end of stream).  Charged as child time to its
        # parent like a real close, but kept out of the slowest list —
        # the duration is a floor, not a measurement.
        name, child_ns, begin_ts = stack.pop()
        dur = max(0, int(at_ts) - int(begin_ts))
        if stack:
            stack[-1][1] += dur
        entry = entry_for(str(name))
        entry.count += 1
        entry.total_ns += dur
        entry.self_ns += dur - int(child_ns)
        entry.durations.append(dur)
        entry.unclosed += 1
        unclosed_names.append(str(name))

    for record in records:
        count += 1
        ev = record.get("ev")
        pid = record.get("pid")
        ts = int(record.get("ts_ns", 0))
        stack = stacks.setdefault(pid, [])
        if ts > last_ts.get(pid, 0):
            last_ts[pid] = ts
        if ev == "B":
            stack.append([record.get("name", "?"), 0, ts])
        elif ev == "E":
            name = record.get("name", "?")
            dur = int(record.get("dur_ns", 0))
            child_ns = 0
            # Find this E's B on the stack.  Anything above it is a
            # dangling span (a crashed child, a lost E): close those
            # synthetically at this E's timestamp.  An E with no B at
            # all (truncated head) just charges its parent, as before.
            match = None
            for index in range(len(stack) - 1, -1, -1):
                if stack[index][0] == name:
                    match = index
                    break
            if match is not None:
                while len(stack) - 1 > match:
                    close_dangling(stack, ts)
                child_ns = int(stack.pop()[1])
            if stack:
                stack[-1][1] += dur
            entry = entry_for(name)
            entry.count += 1
            entry.total_ns += dur
            entry.self_ns += dur - child_ns
            entry.durations.append(dur)
            if record.get("error"):
                entry.errors += 1
            slowest.append((dur, ts, name, int(record.get("depth", 0))))
        elif ev == "I":
            instants += 1
        elif ev == "M":
            payload = record.get("metrics")
            if isinstance(payload, dict):
                metrics = payload
    # End of stream: whatever is still open died with its process.
    pid_order = sorted(
        stacks,
        key=lambda p: (not isinstance(p, int),
                       p if isinstance(p, int) else 0, str(p)),
    )
    for pid in pid_order:
        stack = stacks[pid]
        at_ts = last_ts.get(pid, 0)
        while stack:
            close_dangling(stack, at_ts)
    slowest.sort(key=lambda item: (-item[0], item[1], item[2]))
    ordered = sorted(stats.values(), key=lambda s: (-s.total_ns, s.name))
    return TraceSummary(
        spans=ordered,
        slowest=slowest,
        records=count,
        instants=instants,
        unclosed=unclosed_names,
        metrics=metrics,
    )


def summarize_file(path: str) -> TraceSummary:
    reader = RecordReader(path)
    summary = summarize_records(reader)
    summary.truncated_records = reader.truncated
    return summary


def _ms(ns: int) -> str:
    return f"{ns / 1e6:.3f}"


def render_summary(summary: TraceSummary, top: int = 10) -> str:
    """The human-readable report of ``repro trace summarize``."""
    from ..analysis.report import format_table

    lines: List[str] = []
    flag_unclosed = any(entry.unclosed for entry in summary.spans)
    headers = ["span", "count", "total ms", "self ms", "p50 ms", "p95 ms"]
    if flag_unclosed:
        headers.append("unclosed")
    rows = []
    for entry in summary.spans:
        row = [
            entry.name,
            entry.count,
            _ms(entry.total_ns),
            _ms(entry.self_ns),
            _ms(entry.percentile(0.50)),
            _ms(entry.percentile(0.95)),
        ]
        if flag_unclosed:
            row.append(entry.unclosed or "")
        rows.append(tuple(row))
    lines.append(format_table(
        tuple(headers),
        rows,
        title=f"trace summary - {summary.records} records, "
              f"{summary.instants} instants",
    ))
    if summary.slowest:
        lines.append("")
        lines.append(format_table(
            ("dur ms", "at ms", "depth", "span"),
            [
                (_ms(dur), _ms(ts), depth, name)
                for dur, ts, name, depth in summary.slowest[:top]
            ],
            title=f"slowest spans (top {min(top, len(summary.slowest))})",
        ))
    if summary.unclosed:
        lines.append("")
        lines.append(
            f"WARNING: {len(summary.unclosed)} span(s) never closed "
            "(ended synthetically at last-seen ts): "
            + ", ".join(summary.unclosed)
        )
    if summary.truncated_records:
        lines.append("")
        lines.append(
            f"WARNING: {summary.truncated_records} malformed line(s) "
            "dropped (trace cut short mid-write?)"
        )
    if summary.metrics is not None:
        lines.append("")
        lines.append("final metrics snapshot:")
        for name in sorted(summary.metrics):
            lines.append(f"  {name} = {summary.metrics[name]}")
    return "\n".join(lines) + "\n"
