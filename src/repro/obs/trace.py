"""The span tracer: JSON-lines trace events, zero overhead when off.

A *span* brackets one unit of work — a cache refresh, a candidate
batch, a greedy round — with monotonic timestamps, a nesting depth and
a dict of attributes::

    tracer = trace.ACTIVE
    span = tracer.span("stats.refresh", gates=cone) if tracer is not None \
        else trace.NULL_SPAN
    with span:
        ...                       # the work being measured

Cold call sites can use the module-level convenience
:func:`span` / :func:`instant` directly; hot paths use the explicit
``ACTIVE``-guard above so the disabled path is one global read, one
``is not None`` test and a no-op context manager — **no kwargs dict is
ever built** (the zero-overhead contract
``benchmarks/bench_obs_overhead.py`` holds to < 2% of
``bench_eco_search``'s wall time).

The stream is JSON lines, one record per event, in emission order:

==  ====================================================================
ev  record
==  ====================================================================
B   span begin — ``name``, ``ts_ns``, ``depth``, optional ``attrs``
E   span end — ``name``, ``ts_ns``, ``depth``, ``dur_ns``, optional
    ``attrs`` (added via :meth:`Span.note`), ``error: true`` if the
    body raised
I   instant event — ``name``, ``ts_ns``, ``depth``, optional ``attrs``
M   metrics snapshot — ``metrics`` (a
    :meth:`~repro.obs.metrics.MetricsRegistry.snapshot` map)
==  ====================================================================

``ts_ns`` is ``time.perf_counter_ns()`` relative to the tracer's
creation — ``CLOCK_MONOTONIC``, so it is comparable across the
processes of one machine — and **never copied into result artifacts**:
enabling tracing must not perturb a single artifact byte
(``tests/test_obs.py`` locks this).  Every record carries the emitting
``pid``.  Spans are exception-safe: a raising body still emits the E
record (flagged ``error``), so the stream never carries dangling spans.

Worker processes that inherit an enabled path-backed tracer over
``fork`` detect the pid change on their first event and lazily reroute
to a private *shard file* (``<trace>.pid<N>.jsonl``, see
:func:`shard_path`) instead of interleaving writes into the parent's
stream; the inherited parent handle is abandoned unflushed (its buffer
is a fork-time copy of the parent's — flushing it would duplicate
records).  ``spawn``-style workers join explicitly via :func:`adopt`,
which opens the shard with the parent's clock origin so merged
timestamps stay comparable.  Workers must call :func:`flush` before
returning results: pool children exit via ``os._exit``, which skips
interpreter-shutdown buffer flushing.  The parent interleaves shards
back into the main file with :func:`repro.obs.shards.merge_file`
(CLI: ``repro trace merge``, auto-invoked on traced-CLI exit).
IO-backed tracers (no path) still go silent in children.

Enable with ``REPRO_TRACE=path`` (the CLI honours it for every
subcommand) or ``--trace path`` on ``repro search|eco|optimize|bench``,
or programmatically via :func:`enable`.
"""

from __future__ import annotations

import glob
import json
import os
import re
import time
from typing import IO, List, Mapping, Optional, Union

__all__ = [
    "ENV_VAR",
    "ACTIVE",
    "NULL_SPAN",
    "Span",
    "Tracer",
    "active",
    "enabled",
    "span",
    "instant",
    "enable",
    "disable",
    "start",
    "shard_path",
    "find_shards",
    "adopt",
    "flush",
]

ENV_VAR = "REPRO_TRACE"

_SHARD_SUFFIX = re.compile(r"\.pid(\d+)\.jsonl$")


def shard_path(path: str, pid: int) -> str:
    """The per-pid shard file a worker with ``pid`` writes for ``path``."""
    return f"{path}.pid{pid}.jsonl"


def find_shards(path: str) -> List[str]:
    """Existing shard files for the trace at ``path``, sorted by pid."""
    found = []
    for candidate in glob.glob(glob.escape(path) + ".pid*.jsonl"):
        match = _SHARD_SUFFIX.search(candidate)
        if match:
            found.append((int(match.group(1)), candidate))
    return [shard for _, shard in sorted(found)]


class _NullSpan:
    """The no-op span: a shared singleton, nothing allocated per use."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def note(self, **attrs) -> None:
        pass


NULL_SPAN = _NullSpan()

#: The process-wide live tracer, or ``None`` when tracing is off.  Hot
#: paths read this attribute directly and skip all further work on
#: ``None``.
ACTIVE: Optional["Tracer"] = None


class Span:
    """One live span of an enabled tracer (use as a context manager)."""

    __slots__ = ("tracer", "name", "attrs", "_end_attrs", "_start", "_depth")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict):
        self.tracer = tracer
        self.name = name
        self.attrs = attrs
        self._end_attrs: Optional[dict] = None
        self._start = 0
        self._depth = 0

    def note(self, **attrs) -> None:
        """Attach attributes that are only known at span end (emitted on E)."""
        if self._end_attrs is None:
            self._end_attrs = attrs
        else:
            self._end_attrs.update(attrs)

    def __enter__(self) -> "Span":
        tracer = self.tracer
        self._depth = tracer._depth
        tracer._depth += 1
        self._start = time.perf_counter_ns()
        record = {
            "ev": "B",
            "name": self.name,
            "ts_ns": self._start - tracer._t0,
            "depth": self._depth,
        }
        if self.attrs:
            record["attrs"] = self.attrs
        tracer._emit(record)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        now = time.perf_counter_ns()
        tracer = self.tracer
        tracer._depth = self._depth
        record = {
            "ev": "E",
            "name": self.name,
            "ts_ns": now - tracer._t0,
            "depth": self._depth,
            "dur_ns": now - self._start,
        }
        if self._end_attrs:
            record["attrs"] = self._end_attrs
        if exc_type is not None:
            record["error"] = True
        tracer._emit(record)
        return False


class Tracer:
    """A JSONL trace-event writer bound to one file handle and one pid."""

    def __init__(self, sink: Union[str, IO[str]], *, mode: str = "w"):
        if isinstance(sink, str):
            directory = os.path.dirname(os.path.abspath(sink))
            os.makedirs(directory, exist_ok=True)
            if mode == "w":
                for stale in find_shards(sink):
                    try:
                        os.unlink(stale)
                    except OSError:
                        pass
            self._handle: IO[str] = open(sink, mode)
            self._owns_handle = True
            self.path: Optional[str] = sink
        else:
            self._handle = sink
            self._owns_handle = False
            self.path = None
        self._pid = os.getpid()
        self._t0 = time.perf_counter_ns()
        self._depth = 0
        self._closed = False
        # Handle inherited across fork, parked unflushed (its buffer is a
        # copy of the parent's pending records).
        self._abandoned: Optional[IO[str]] = None
        #: Records emitted so far (the overhead benchmark counts the
        #: instrumentation touchpoints a workload hits through this).
        self.records = 0

    # ------------------------------------------------------------------
    def _ensure_process(self) -> bool:
        """True when this process may emit; reroutes forked children.

        The first event after a pid change switches a path-backed tracer
        onto this pid's shard file (append mode — pool workers are
        reused).  The inherited handle must never be flushed or closed
        here: its buffer duplicates the parent's unflushed records at a
        shared file offset.  IO-backed tracers cannot shard and go
        silent instead.
        """
        pid = os.getpid()
        if pid == self._pid:
            return not self._closed
        if self.path is None or self._closed:
            return False
        try:
            handle = open(shard_path(self.path, pid), "a")
        except OSError:
            self._closed = True
            return False
        self._abandoned = self._handle
        self._handle = handle
        self._owns_handle = True
        self._pid = pid
        self._depth = 0
        self.records = 0
        return True

    def _emit(self, record: dict) -> None:
        if self._closed:
            return
        record["pid"] = self._pid
        self._handle.write(
            json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
        )
        self.records += 1

    def span(self, name: str, **attrs) -> Union[Span, _NullSpan]:
        """A new span (or the null span when this process cannot emit)."""
        if not self._ensure_process():
            return NULL_SPAN
        return Span(self, name, attrs)

    def instant(self, name: str, **attrs) -> None:
        """Emit one point-in-time event at the current depth."""
        if not self._ensure_process():
            return
        record = {
            "ev": "I",
            "name": name,
            "ts_ns": time.perf_counter_ns() - self._t0,
            "depth": self._depth,
        }
        if attrs:
            record["attrs"] = attrs
        self._emit(record)

    def metrics(self, snapshot: Mapping[str, object]) -> None:
        """Emit a metrics-snapshot record (sorted keys, canonical form)."""
        if not self._ensure_process():
            return
        self._emit({
            "ev": "M",
            "ts_ns": time.perf_counter_ns() - self._t0,
            "metrics": dict(snapshot),
        })

    def flush(self) -> None:
        """Flush the current stream (never an inherited parent handle)."""
        if self._closed or os.getpid() != self._pid:
            return
        try:
            self._handle.flush()
        except (OSError, ValueError):
            pass

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if os.getpid() != self._pid:
            # Inherited, never-rerouted handle: the parent owns it.
            return
        self._handle.flush()
        if self._owns_handle:
            self._handle.close()

    def __repr__(self) -> str:
        return f"Tracer({self.path!r}, records={self.records})"


# ----------------------------------------------------------------------
# Module-level switchboard
# ----------------------------------------------------------------------
def active() -> Optional[Tracer]:
    """The live tracer, or ``None`` — the hot-path guard reads this."""
    return ACTIVE


def enabled() -> bool:
    return ACTIVE is not None


def span(name: str, **attrs) -> Union[Span, _NullSpan]:
    """Convenience span for cold call sites (CLI, per-edit drivers).

    Hot loops should use the explicit ``ACTIVE`` guard instead: this
    form builds the kwargs dict before discovering tracing is off.
    """
    tracer = ACTIVE
    if tracer is None:
        return NULL_SPAN
    return tracer.span(name, **attrs)


def instant(name: str, **attrs) -> None:
    tracer = ACTIVE
    if tracer is not None:
        tracer.instant(name, **attrs)


def enable(sink: Union[str, IO[str]]) -> Tracer:
    """Open a tracer on ``sink`` (path or file object) and make it live.

    Any previously live tracer is closed first — one stream per process.
    """
    global ACTIVE
    if ACTIVE is not None:
        ACTIVE.close()
    ACTIVE = Tracer(sink)
    return ACTIVE


def disable() -> None:
    """Close and clear the live tracer (idempotent)."""
    global ACTIVE
    if ACTIVE is not None:
        ACTIVE.close()
        ACTIVE = None


def adopt(path: str, t0_ns: int) -> Optional[Tracer]:
    """Join a parent's trace from a worker process.

    Under ``fork`` the child inherits the parent's live tracer (which
    reroutes itself to a shard on first use) and this is a no-op; under
    ``spawn`` — a fresh interpreter with ``ACTIVE is None`` — it opens
    this pid's shard directly, carrying the parent's clock origin
    ``t0_ns`` so merged timestamps stay comparable.
    """
    global ACTIVE
    if ACTIVE is not None:
        return ACTIVE
    tracer = Tracer(shard_path(path, os.getpid()), mode="a")
    tracer.path = path  # shard naming stays rooted at the parent's path
    tracer._t0 = t0_ns
    ACTIVE = tracer
    return tracer


def flush() -> None:
    """Flush the live tracer's stream, if any.

    Pool workers call this before returning results: children exit via
    ``os._exit``, which skips interpreter-shutdown buffer flushing.
    """
    tracer = ACTIVE
    if tracer is not None:
        tracer.flush()


def start(path: Optional[str] = None) -> Optional[Tracer]:
    """Resolve a ``--trace`` argument against the ``REPRO_TRACE`` flag.

    An explicit ``path`` wins; otherwise the environment variable, if
    set and non-empty, supplies one; otherwise tracing stays off and
    ``None`` is returned.
    """
    if path is None:
        path = os.environ.get(ENV_VAR) or None
    if path is None:
        return None
    return enable(path)
