"""The span tracer: JSON-lines trace events, zero overhead when off.

A *span* brackets one unit of work — a cache refresh, a candidate
batch, a greedy round — with monotonic timestamps, a nesting depth and
a dict of attributes::

    tracer = trace.ACTIVE
    span = tracer.span("stats.refresh", gates=cone) if tracer is not None \
        else trace.NULL_SPAN
    with span:
        ...                       # the work being measured

Cold call sites can use the module-level convenience
:func:`span` / :func:`instant` directly; hot paths use the explicit
``ACTIVE``-guard above so the disabled path is one global read, one
``is not None`` test and a no-op context manager — **no kwargs dict is
ever built** (the zero-overhead contract
``benchmarks/bench_obs_overhead.py`` holds to < 2% of
``bench_eco_search``'s wall time).

The stream is JSON lines, one record per event, in emission order:

==  ====================================================================
ev  record
==  ====================================================================
B   span begin — ``name``, ``ts_ns``, ``depth``, optional ``attrs``
E   span end — ``name``, ``ts_ns``, ``depth``, ``dur_ns``, optional
    ``attrs`` (added via :meth:`Span.note`), ``error: true`` if the
    body raised
I   instant event — ``name``, ``ts_ns``, ``depth``, optional ``attrs``
M   metrics snapshot — ``metrics`` (a
    :meth:`~repro.obs.metrics.MetricsRegistry.snapshot` map)
==  ====================================================================

``ts_ns`` is ``time.perf_counter_ns()`` relative to the tracer's
creation: monotonic, meaningless across processes, and **never copied
into result artifacts** — enabling tracing must not perturb a single
artifact byte (``tests/test_obs.py`` locks this).  Spans are
exception-safe: a raising body still emits the E record (flagged
``error``), so the stream never carries dangling spans.  Worker
processes that inherit an enabled tracer over ``fork`` detect the pid
change and go silent instead of interleaving writes into the parent's
stream.

Enable with ``REPRO_TRACE=path`` (the CLI honours it for every
subcommand) or ``--trace path`` on ``repro search|eco|optimize|bench``,
or programmatically via :func:`enable`.
"""

from __future__ import annotations

import json
import os
import time
from typing import IO, Mapping, Optional, Union

__all__ = [
    "ENV_VAR",
    "ACTIVE",
    "NULL_SPAN",
    "Span",
    "Tracer",
    "active",
    "enabled",
    "span",
    "instant",
    "enable",
    "disable",
    "start",
]

ENV_VAR = "REPRO_TRACE"


class _NullSpan:
    """The no-op span: a shared singleton, nothing allocated per use."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def note(self, **attrs) -> None:
        pass


NULL_SPAN = _NullSpan()

#: The process-wide live tracer, or ``None`` when tracing is off.  Hot
#: paths read this attribute directly and skip all further work on
#: ``None``.
ACTIVE: Optional["Tracer"] = None


class Span:
    """One live span of an enabled tracer (use as a context manager)."""

    __slots__ = ("tracer", "name", "attrs", "_end_attrs", "_start", "_depth")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict):
        self.tracer = tracer
        self.name = name
        self.attrs = attrs
        self._end_attrs: Optional[dict] = None
        self._start = 0
        self._depth = 0

    def note(self, **attrs) -> None:
        """Attach attributes that are only known at span end (emitted on E)."""
        if self._end_attrs is None:
            self._end_attrs = attrs
        else:
            self._end_attrs.update(attrs)

    def __enter__(self) -> "Span":
        tracer = self.tracer
        self._depth = tracer._depth
        tracer._depth += 1
        self._start = time.perf_counter_ns()
        record = {
            "ev": "B",
            "name": self.name,
            "ts_ns": self._start - tracer._t0,
            "depth": self._depth,
        }
        if self.attrs:
            record["attrs"] = self.attrs
        tracer._emit(record)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        now = time.perf_counter_ns()
        tracer = self.tracer
        tracer._depth = self._depth
        record = {
            "ev": "E",
            "name": self.name,
            "ts_ns": now - tracer._t0,
            "depth": self._depth,
            "dur_ns": now - self._start,
        }
        if self._end_attrs:
            record["attrs"] = self._end_attrs
        if exc_type is not None:
            record["error"] = True
        tracer._emit(record)
        return False


class Tracer:
    """A JSONL trace-event writer bound to one file handle and one pid."""

    def __init__(self, sink: Union[str, IO[str]]):
        if isinstance(sink, str):
            directory = os.path.dirname(os.path.abspath(sink))
            os.makedirs(directory, exist_ok=True)
            self._handle: IO[str] = open(sink, "w")
            self._owns_handle = True
            self.path: Optional[str] = sink
        else:
            self._handle = sink
            self._owns_handle = False
            self.path = None
        self._pid = os.getpid()
        self._t0 = time.perf_counter_ns()
        self._depth = 0
        self._closed = False
        #: Records emitted so far (the overhead benchmark counts the
        #: instrumentation touchpoints a workload hits through this).
        self.records = 0

    # ------------------------------------------------------------------
    def _emit(self, record: dict) -> None:
        if self._closed:
            return
        self._handle.write(
            json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
        )
        self.records += 1

    def span(self, name: str, **attrs) -> Union[Span, _NullSpan]:
        """A new span (or the null span in a forked child process)."""
        if os.getpid() != self._pid:
            return NULL_SPAN
        return Span(self, name, attrs)

    def instant(self, name: str, **attrs) -> None:
        """Emit one point-in-time event at the current depth."""
        if os.getpid() != self._pid:
            return
        record = {
            "ev": "I",
            "name": name,
            "ts_ns": time.perf_counter_ns() - self._t0,
            "depth": self._depth,
        }
        if attrs:
            record["attrs"] = attrs
        self._emit(record)

    def metrics(self, snapshot: Mapping[str, object]) -> None:
        """Emit a metrics-snapshot record (sorted keys, canonical form)."""
        if os.getpid() != self._pid:
            return
        self._emit({
            "ev": "M",
            "ts_ns": time.perf_counter_ns() - self._t0,
            "metrics": dict(snapshot),
        })

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._handle.flush()
            if self._owns_handle:
                self._handle.close()

    def __repr__(self) -> str:
        return f"Tracer({self.path!r}, records={self.records})"


# ----------------------------------------------------------------------
# Module-level switchboard
# ----------------------------------------------------------------------
def active() -> Optional[Tracer]:
    """The live tracer, or ``None`` — the hot-path guard reads this."""
    return ACTIVE


def enabled() -> bool:
    return ACTIVE is not None


def span(name: str, **attrs) -> Union[Span, _NullSpan]:
    """Convenience span for cold call sites (CLI, per-edit drivers).

    Hot loops should use the explicit ``ACTIVE`` guard instead: this
    form builds the kwargs dict before discovering tracing is off.
    """
    tracer = ACTIVE
    if tracer is None:
        return NULL_SPAN
    return tracer.span(name, **attrs)


def instant(name: str, **attrs) -> None:
    tracer = ACTIVE
    if tracer is not None:
        tracer.instant(name, **attrs)


def enable(sink: Union[str, IO[str]]) -> Tracer:
    """Open a tracer on ``sink`` (path or file object) and make it live.

    Any previously live tracer is closed first — one stream per process.
    """
    global ACTIVE
    if ACTIVE is not None:
        ACTIVE.close()
    ACTIVE = Tracer(sink)
    return ACTIVE


def disable() -> None:
    """Close and clear the live tracer (idempotent)."""
    global ACTIVE
    if ACTIVE is not None:
        ACTIVE.close()
        ACTIVE = None


def start(path: Optional[str] = None) -> Optional[Tracer]:
    """Resolve a ``--trace`` argument against the ``REPRO_TRACE`` flag.

    An explicit ``path`` wins; otherwise the environment variable, if
    set and non-empty, supplies one; otherwise tracing stays off and
    ``None`` is returned.
    """
    if path is None:
        path = os.environ.get(ENV_VAR) or None
    if path is None:
        return None
    return enable(path)
