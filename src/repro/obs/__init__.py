"""``repro.obs`` — tracing, metrics and profiling with zero cost when off.

The engine's observability layer, three pieces (see README.md):

* :mod:`repro.obs.metrics` — ``Counter`` / ``Gauge`` / ``Histogram``
  (fixed bucket edges, byte-stable snapshots) and the registries that
  unify the work counters previously scattered across ``StatsCache``,
  ``TimingCache``, the search engine and the compiled kernels;
* :mod:`repro.obs.trace` — the JSONL span tracer
  (``REPRO_TRACE=path`` / ``repro ... --trace path``), a strict no-op
  while disabled;
* :mod:`repro.obs.summarize` — the ``repro trace summarize`` reducer:
  per-span-name count/total/self/p50/p95 plus the slowest spans.

The contract that makes instrumentation safe to leave in hot paths:
**off means off** (one module-global read and an ``is not None`` test;
no allocations — held to < 2% of ``bench_eco_search`` by
``benchmarks/bench_obs_overhead.py``) and **tracing never touches
artifacts** (timestamps exist only in the trace stream; result JSON is
byte-identical with tracing on, locked by ``tests/test_obs.py``).
"""

from . import metrics, summarize, trace
from .metrics import REGISTRY, Counter, Gauge, Histogram, MetricsRegistry
from .trace import Tracer, disable, enable, enabled, instant, span, start

__all__ = [
    "metrics",
    "trace",
    "summarize",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "Tracer",
    "span",
    "instant",
    "enabled",
    "enable",
    "disable",
    "start",
]
