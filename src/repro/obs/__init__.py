"""``repro.obs`` — tracing, metrics and profiling with zero cost when off.

The engine's observability layer (see README.md):

* :mod:`repro.obs.metrics` — ``Counter`` / ``Gauge`` / ``Histogram``
  (fixed bucket edges, byte-stable snapshots) and the registries that
  unify the work counters previously scattered across ``StatsCache``,
  ``TimingCache``, the search engine and the compiled kernels;
* :mod:`repro.obs.trace` — the JSONL span tracer
  (``REPRO_TRACE=path`` / ``repro ... --trace path``), a strict no-op
  while disabled; forked workers shard to ``<trace>.pid<N>.jsonl``;
* :mod:`repro.obs.shards` — the deterministic cross-process shard
  merge behind ``repro trace merge`` (auto-run on traced-CLI exit);
* :mod:`repro.obs.summarize` — the ``repro trace summarize`` reducer:
  per-span-name count/total/self/p50/p95 plus the slowest spans,
  damage-tolerant (truncated tails, crashed-process dangling spans);
* :mod:`repro.obs.export` — ``repro trace export --format chrome``:
  Chrome/Perfetto trace-event JSON for ``chrome://tracing``;
* :mod:`repro.obs.perfdb` — the perf-regression baseline store behind
  ``repro bench check --baseline`` / ``repro bench baseline``;
* :mod:`repro.obs.progress` — the opt-in ``--progress`` live status
  channel (stderr, rate-limited).

The contract that makes instrumentation safe to leave in hot paths:
**off means off** (one module-global read and an ``is not None`` test;
no allocations — held to < 2% of ``bench_eco_search`` by
``benchmarks/bench_obs_overhead.py``) and **tracing never touches
artifacts** (timestamps exist only in the trace stream; result JSON is
byte-identical with tracing on and across worker counts, locked by
``tests/test_obs.py`` / ``tests/test_trace_shards.py``).
"""

from . import export, metrics, perfdb, progress, shards, summarize, trace
from .metrics import REGISTRY, Counter, Gauge, Histogram, MetricsRegistry
from .trace import (
    Tracer,
    adopt,
    disable,
    enable,
    enabled,
    flush,
    instant,
    span,
    start,
)

__all__ = [
    "metrics",
    "trace",
    "shards",
    "summarize",
    "export",
    "perfdb",
    "progress",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "Tracer",
    "span",
    "instant",
    "enabled",
    "enable",
    "disable",
    "start",
    "adopt",
    "flush",
]
