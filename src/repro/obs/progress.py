"""Live progress streaming: opt-in, rate-limited, stderr.

Hour-long searches on large circuits are silent today unless tracing is
on — and a trace is a post-mortem artifact, not a heartbeat.  This
module is the heartbeat: ``--progress`` (any traced subcommand has it)
installs a process-wide :class:`Progress` sink and the existing
instrumentation touchpoints (greedy rounds, anneal steps, portfolio
restart completions, bench cases) feed it one-line status updates::

    [    12.3s] search.round round=41 queue=388 accepted=12 power=17.304

The channel is stderr so it never contaminates piped artifact output,
and emission is rate-limited (default one line per 0.25 s; milestone
events pass ``force=True``) so a hot anneal loop cannot flood the
terminal.  The same zero-overhead contract as tracing applies: hot call
sites read :data:`ACTIVE` and skip all work — **no kwargs dict is ever
built** — when it is ``None``.  Forked workers inherit an enabled
sink but stay silent (pid guard): only the parent narrates.
"""

from __future__ import annotations

import os
import sys
import time
from typing import IO, Optional

__all__ = ["ACTIVE", "Progress", "enable", "disable", "emit"]

#: The process-wide live progress sink, or ``None`` when off.  Hot
#: paths read this directly and skip all further work on ``None``.
ACTIVE: Optional["Progress"] = None


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


class Progress:
    """A rate-limited line writer for live status updates."""

    def __init__(self, stream: Optional[IO[str]] = None,
                 interval: float = 0.25):
        self.stream = stream if stream is not None else sys.stderr
        self.interval = interval
        self.emitted = 0
        self._pid = os.getpid()
        self._t0 = time.monotonic()
        self._last = float("-inf")

    def emit(self, name: str, force: bool = False, **fields) -> None:
        """Write one status line, unless rate-limited (or in a child)."""
        if os.getpid() != self._pid:
            return
        now = time.monotonic()
        if not force and now - self._last < self.interval:
            return
        self._last = now
        parts = " ".join(f"{key}={_fmt(fields[key])}" for key in fields)
        line = f"[{now - self._t0:8.1f}s] {name}"
        if parts:
            line += " " + parts
        try:
            self.stream.write(line + "\n")
            self.stream.flush()
        except (OSError, ValueError):
            pass
        self.emitted += 1


def enable(stream: Optional[IO[str]] = None,
           interval: float = 0.25) -> Progress:
    """Install a live progress sink (replacing any existing one)."""
    global ACTIVE
    ACTIVE = Progress(stream, interval)
    return ACTIVE


def disable() -> None:
    global ACTIVE
    ACTIVE = None


def emit(name: str, force: bool = False, **fields) -> None:
    """Convenience emit for cold call sites (hot loops guard ACTIVE)."""
    sink = ACTIVE
    if sink is not None:
        sink.emit(name, force=force, **fields)
