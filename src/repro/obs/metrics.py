"""The metrics registry: counters, gauges and fixed-bucket histograms.

One shared vocabulary for the work counters that used to live scattered
across the engine (``StatsCache.gates_repropagated``,
``TimingCache.gates_retimed``, ``OptimizeResult.gates_decided``, the
compiled kernels' invocation counts, ...).  Three metric kinds:

:class:`Counter`    a monotonically increasing integer (work done);
:class:`Gauge`      a point-in-time value (last batch size, queue depth);
:class:`Histogram`  a distribution over **fixed bucket edges** chosen at
                    construction — never derived from the observed data —
                    so two runs observing the same values produce
                    byte-identical snapshots.

Metrics are *always on*: an increment is a slotted-attribute ``+=``
(no locks, no dict allocations, no branching on an enabled flag), cheap
enough to live inside the dirty-cone refresh loops.  Everything
run-varying — wall-clock durations — belongs in the trace stream
(:mod:`repro.obs.trace`), never in a metric: snapshots are pure
functions of the work performed, so they can sit next to artifact
fields without breaking byte-stability.

Two scopes:

* **per-instance registries** — each ``StatsCache`` / ``TimingCache``
  owns a :class:`MetricsRegistry` so concurrent caches (portfolio
  workers, nested searches) never share counters;
* the **process-global** :data:`REGISTRY` — for code without a natural
  owner (the compiled kernels), mirrored into the trace stream's final
  metrics record.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, List, Optional, Sequence, Tuple, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "SIZE_EDGES",
]

#: Default bucket edges for size-like distributions (cone sizes, kernel
#: batch sizes): powers of two.  Fixed here — not derived from data —
#: so histogram snapshots are byte-stable across runs and inputs.
SIZE_EDGES: Tuple[float, ...] = (
    1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0,
    1024.0, 4096.0, 16384.0, 65536.0,
)


class Counter:
    """A monotonically increasing integer metric."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str):
        self.name = name
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        self._value += amount

    @property
    def value(self) -> int:
        return self._value

    def since(self, checkpoint: int) -> int:
        """Work done since a previously read :attr:`value`.

        The one delta idiom every caller shares (per-edit cones, per-move
        retime counts, per-search totals), so the artifact numbers and
        the metrics snapshot cannot drift: both read the same counter.
        """
        return self._value - checkpoint

    def snapshot(self) -> int:
        return self._value

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, {self._value})"


class Gauge:
    """A point-in-time value metric (last observed, not accumulated)."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = value

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> float:
        return self._value

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, {self._value})"


class Histogram:
    """A distribution metric over fixed bucket edges.

    ``edges`` must be strictly increasing; an observation lands in the
    first bucket whose upper edge is >= the value (the last bucket is
    the open overflow bucket).  Because the edges are fixed at
    construction, :meth:`snapshot` is a pure function of the observed
    values — byte-stable across runs for deterministic workloads.
    """

    __slots__ = ("name", "edges", "counts", "count", "total")

    def __init__(self, name: str, edges: Sequence[float] = SIZE_EDGES):
        edges = tuple(float(e) for e in edges)
        if not edges or any(b <= a for a, b in zip(edges, edges[1:])):
            raise ValueError("histogram edges must be strictly increasing")
        self.name = name
        self.edges = edges
        self.counts: List[int] = [0] * (len(edges) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        self.counts[bisect_right(self.edges, value)] += 1
        self.count += 1
        self.total += value

    def snapshot(self) -> Dict[str, object]:
        return {
            "edges": list(self.edges),
            "counts": list(self.counts),
            "count": self.count,
            "total": self.total,
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, n={self.count})"


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """A named set of metrics with get-or-create accessors.

    Asking twice for the same name returns the same object; asking for
    an existing name as a different kind raises (one name, one meaning).
    """

    def __init__(self):
        self._metrics: Dict[str, Metric] = {}

    def _get(self, name: str, kind, factory) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory()
            self._metrics[name] = metric
        elif not isinstance(metric, kind):
            raise TypeError(
                f"metric {name!r} is a {type(metric).__name__}, "
                f"not a {kind.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge, lambda: Gauge(name))

    def histogram(self, name: str,
                  edges: Optional[Sequence[float]] = None) -> Histogram:
        return self._get(
            name, Histogram,
            lambda: Histogram(name, SIZE_EDGES if edges is None else edges),
        )

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __iter__(self):
        return iter(sorted(self._metrics))

    def snapshot(self) -> Dict[str, object]:
        """Name -> value map in sorted-name order (canonical-JSON ready)."""
        return {name: self._metrics[name].snapshot() for name in self}

    def reset(self) -> None:
        """Forget all metrics (tests and fresh benchmark phases)."""
        self._metrics.clear()

    def __repr__(self) -> str:
        return f"MetricsRegistry({len(self._metrics)} metrics)"


#: The process-global registry: kernel invocation counts and other
#: metrics with no per-instance owner.
REGISTRY = MetricsRegistry()
