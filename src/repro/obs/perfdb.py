"""Perf-regression harness: a baseline store for bench headline numbers.

The weekly bench sweep emits ``BENCH_*.json`` artifacts full of speedup
factors and wall times that, until now, nobody compared against
anything — a 30% hot-path slowdown inside the ≥5x/≥10x floors would
land silently.  This module closes the loop:

* :func:`headline_metrics` extracts the headline numbers from a bench
  or suite artifact (see :mod:`repro.bench.runner` for the schemas) as
  named :class:`Metric` values with a regression *direction* and a
  tolerance *kind*.
* :func:`append_artifact` records them (with the artifact's
  ``environment_meta``) as a new entry in a committed baseline file —
  ``benchmarks/BASELINE.json`` is the repo's; later entries supersede
  earlier ones metric-by-metric, so the file is an append-only history.
* :func:`check_metrics` compares a fresh run against the folded
  baseline with per-metric relative thresholds; ``repro bench check
  --baseline`` renders the (deterministic) table and exits nonzero on
  any ``REGRESSED`` row.

Metric naming is ``<source>/<row key>/<field>``.  Direction and kind
come from the field name: ``*speedup*``/``*reduction*`` fields are
higher-is-better machine-relative ratios (default tolerance
|Δ| ≤ 35%), while ``*_s``/``*_ns`` wall times and ``*_fraction``
overheads are lower-is-better; wall times get a deliberately loose
default (≤ 2x) because the baseline machine and the checking machine
usually differ — tighten with ``--tolerance`` when comparing runs from
one box.  Metrics present on only one side report ``new``/``absent``
and never fail the check.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

__all__ = [
    "BASELINE_SCHEMA",
    "DEFAULT_TOLERANCES",
    "Metric",
    "CheckRow",
    "CheckResult",
    "headline_metrics",
    "empty_store",
    "load_baseline",
    "append_artifact",
    "baseline_metrics",
    "check_metrics",
    "render_check",
]

BASELINE_SCHEMA = 1

#: Default relative tolerance per metric kind: ``ratio`` metrics
#: (speedups, overhead fractions) are machine-relative and stable;
#: ``wall`` metrics compare absolute seconds across possibly-different
#: hardware.
DEFAULT_TOLERANCES = {"ratio": 0.35, "wall": 1.0}


@dataclass(frozen=True)
class Metric:
    """One headline number: value plus how to judge a change in it."""

    name: str
    value: float
    direction: str  # "higher" | "lower" (which way is better)
    kind: str       # "ratio" | "wall" (which default tolerance applies)


def _classify(field: str) -> Optional[tuple]:
    """``(direction, kind)`` for a result field, or ``None`` to skip it."""
    if "speedup" in field or "reduction" in field:
        return ("higher", "ratio")
    if field.endswith("_fraction"):
        return ("lower", "ratio")
    if field.endswith("_s") or field.endswith("_ns"):
        return ("lower", "wall")
    return None


def headline_metrics(artifact: Mapping[str, object]) -> Dict[str, Metric]:
    """Extract the named headline metrics of a bench or suite artifact."""
    metrics: Dict[str, Metric] = {}

    def add(name: str, value: object, direction: str, kind: str) -> None:
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            metrics[name] = Metric(name, float(value), direction, kind)

    results = artifact.get("results")
    rows = results if isinstance(results, list) else []
    bench = artifact.get("bench")
    if isinstance(bench, Mapping):
        source = str(bench.get("name", "bench"))
        for index, row in enumerate(rows):
            if not isinstance(row, Mapping):
                continue
            key = str(row.get("mode") or row.get("circuit") or index)
            for field in sorted(row):
                spec = _classify(str(field))
                if spec is not None:
                    add(f"{source}/{key}/{field}", row[field], *spec)
    elif isinstance(artifact.get("suite"), Mapping):
        suite = artifact["suite"]
        source = f"suite-{suite.get('subset', '?')}"
        for row in rows:
            if not isinstance(row, Mapping):
                continue
            key = f"{row.get('circuit', '?')}:{row.get('scenario', '?')}"
            add(f"{source}/{key}/elapsed_s", row.get("elapsed_s"),
                "lower", "wall")
        add(f"{source}/total/elapsed_s", artifact.get("elapsed_s"),
            "lower", "wall")
    else:
        raise ValueError(
            "artifact carries no headline metrics (neither a bench nor a "
            "suite artifact)"
        )
    return metrics


# ----------------------------------------------------------------------
# The baseline store
# ----------------------------------------------------------------------
def empty_store() -> Dict[str, object]:
    return {"schema": BASELINE_SCHEMA, "entries": []}


def load_baseline(path: str) -> Dict[str, object]:
    with open(path) as handle:
        store = json.load(handle)
    if not isinstance(store, dict) or store.get("schema") != BASELINE_SCHEMA:
        raise ValueError(f"{path}: not a schema-{BASELINE_SCHEMA} baseline")
    if not isinstance(store.get("entries"), list):
        raise ValueError(f"{path}: baseline has no entries list")
    return store


def append_artifact(
    path: str,
    artifact: Mapping[str, object],
    label: Optional[str] = None,
) -> Dict[str, object]:
    """Record an artifact's headline metrics as a new baseline entry."""
    if os.path.exists(path):
        store = load_baseline(path)
    else:
        store = empty_store()
    entry: Dict[str, object] = {
        "metrics": {
            metric.name: {
                "value": metric.value,
                "direction": metric.direction,
                "kind": metric.kind,
            }
            for metric in headline_metrics(artifact).values()
        },
    }
    if label:
        entry["label"] = label
    meta = artifact.get("meta")
    if isinstance(meta, Mapping):
        entry["meta"] = dict(meta)
    store["entries"].append(entry)
    from ..robust.atomic import atomic_write_text

    atomic_write_text(
        path, json.dumps(store, indent=2, sort_keys=True) + "\n"
    )
    return entry


def baseline_metrics(store: Mapping[str, object]) -> Dict[str, Metric]:
    """Fold the entry history: the latest value of each metric wins."""
    folded: Dict[str, Metric] = {}
    for entry in store.get("entries", ()):
        if not isinstance(entry, Mapping):
            continue
        recorded = entry.get("metrics")
        if not isinstance(recorded, Mapping):
            continue
        for name in recorded:
            spec = recorded[name]
            if not isinstance(spec, Mapping):
                continue
            value = spec.get("value")
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                folded[str(name)] = Metric(
                    str(name),
                    float(value),
                    str(spec.get("direction", "lower")),
                    str(spec.get("kind", "wall")),
                )
    return folded


# ----------------------------------------------------------------------
# The check
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CheckRow:
    name: str
    baseline: Optional[float]
    current: Optional[float]
    ratio: Optional[float]
    tolerance: Optional[float]
    status: str  # "ok" | "REGRESSED" | "new" | "absent"


@dataclass
class CheckResult:
    rows: List[CheckRow]

    @property
    def regressions(self) -> List[CheckRow]:
        return [row for row in self.rows if row.status == "REGRESSED"]


def check_metrics(
    current: Mapping[str, Metric],
    baseline: Mapping[str, Metric],
    tolerance: Optional[float] = None,
) -> CheckResult:
    """Judge a current run against a folded baseline, metric by metric.

    A lower-is-better metric regresses when current exceeds baseline by
    more than its relative tolerance; a higher-is-better one when it
    falls short by more.  An explicit ``tolerance`` overrides the
    per-kind defaults for every metric.
    """
    rows: List[CheckRow] = []
    for name in sorted(set(current) | set(baseline)):
        cur = current.get(name)
        base = baseline.get(name)
        if base is None:
            rows.append(CheckRow(name, None, cur.value, None, None, "new"))
            continue
        if cur is None:
            rows.append(CheckRow(name, base.value, None, None, None,
                                 "absent"))
            continue
        tol = tolerance if tolerance is not None else \
            DEFAULT_TOLERANCES.get(base.kind, DEFAULT_TOLERANCES["wall"])
        ratio = cur.value / base.value if base.value else None
        if ratio is None:
            regressed = False
        elif base.direction == "higher":
            regressed = ratio < 1.0 - tol
        else:
            regressed = ratio > 1.0 + tol
        rows.append(CheckRow(
            name, base.value, cur.value, ratio, tol,
            "REGRESSED" if regressed else "ok",
        ))
    return CheckResult(rows)


def _num(value: Optional[float]) -> str:
    return "-" if value is None else f"{value:.6g}"


def render_check(result: CheckResult) -> str:
    """The deterministic table ``repro bench check`` prints."""
    from ..analysis.report import format_table

    rows = []
    for row in result.rows:
        change = "-"
        if row.ratio is not None:
            change = f"{(row.ratio - 1.0) * 100.0:+.1f}%"
        tol = "-" if row.tolerance is None else f"{row.tolerance * 100:.0f}%"
        rows.append((row.name, _num(row.baseline), _num(row.current),
                     change, tol, row.status))
    regressed = len(result.regressions)
    checked = sum(1 for row in result.rows if row.status in ("ok",
                                                             "REGRESSED"))
    table = format_table(
        ("metric", "baseline", "current", "change", "tol", "status"),
        rows,
        title=f"bench check - {checked} compared, {regressed} regressed",
    )
    lines = [table]
    if regressed:
        lines.append("")
        lines.append(f"REGRESSION: {regressed} metric(s) beyond tolerance")
    return "\n".join(lines) + "\n"
