"""Deterministic merge of per-pid trace shards into one stream.

Multi-process runs leave one main trace file (the parent's) plus one
``<trace>.pid<N>.jsonl`` shard per worker process (see
:func:`repro.obs.trace.shard_path`).  :func:`merge_file` interleaves
them back into a single JSONL stream ordered by ``(ts_ns, pid,
emission order)`` — timestamps share one ``CLOCK_MONOTONIC`` origin, so
the merged stream is a faithful machine-wide timeline, and the sort key
is a total order: **the merged bytes are identical for any worker
completion order**.  Records are re-serialized in the tracer's
canonical form (sorted keys, compact separators), and malformed tail
lines (a worker killed mid-write) are dropped, the same policy
:mod:`repro.obs.summarize` applies when reading.

The CLI front end is ``repro trace merge``; ``repro.cli.main``
auto-invokes the merge when a traced command exits, so by the time the
prompt returns the main trace file already contains every worker span.
"""

from __future__ import annotations

import json
import os
from typing import List, Optional

from .trace import find_shards, shard_path  # noqa: F401  (re-exported)

__all__ = ["find_shards", "shard_path", "merge_file", "merge_records"]


def merge_records(streams) -> List[dict]:
    """Interleave record streams into ``(ts_ns, pid, seq)`` order.

    ``streams`` is an iterable of record iterables (e.g.
    :class:`~repro.obs.summarize.RecordReader` instances).  ``seq`` is
    the record's position within its own stream, so equal-timestamp
    records from one process keep their emission order; ``pid`` breaks
    ties across processes.  The result is independent of the order the
    streams are supplied in.
    """
    keyed = []
    for stream in streams:
        for seq, record in enumerate(stream):
            pid = record.get("pid")
            pid = int(pid) if isinstance(pid, int) else -1
            keyed.append((int(record.get("ts_ns", 0)), pid, seq, record))
    keyed.sort(key=lambda item: item[:3])
    return [record for _, _, _, record in keyed]


def merge_file(
    path: str,
    out: Optional[str] = None,
    keep_shards: bool = False,
) -> int:
    """Merge ``path``'s shards into it (or into ``out``); count shards.

    With no shards present and no explicit ``out`` this is a no-op that
    leaves the main file byte-untouched.  After an in-place merge the
    consumed shard files are removed unless ``keep_shards``; merging to
    a separate ``out`` never deletes its inputs.
    """
    from .summarize import RecordReader

    shards = find_shards(path)
    if not shards and out is None:
        return 0
    sources = [path] + shards if os.path.exists(path) else list(shards)
    merged = merge_records(RecordReader(source) for source in sources)
    target = out if out is not None else path
    from ..robust.atomic import atomic_write_text

    atomic_write_text(target, "".join(
        json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
        for record in merged
    ))
    if out is None and not keep_shards:
        for shard in shards:
            try:
                os.unlink(shard)
            except OSError:
                pass
    return len(shards)
