"""Chrome trace-event export: open ``repro`` traces in ``chrome://tracing``.

Converts the tracer's JSONL stream (see :mod:`repro.obs.trace`) into
the Chrome/Perfetto trace-event JSON format, so a merged multi-process
trace renders as one timeline with a lane per process:

==  =================================================================
ev  Chrome event
==  =================================================================
B   ``ph="B"`` duration-begin — ``name``, ``ts`` (µs), ``pid``/``tid``
E   ``ph="E"`` duration-end (span-end ``attrs`` become ``args``)
I   ``ph="i"`` instant, thread-scoped (``s="t"``)
M   ``ph="C"`` counter named ``metrics`` carrying the snapshot's
    numeric entries (non-numeric entries are dropped)
==  =================================================================

``ts`` is the record's ``ts_ns`` divided by 1000 (Chrome wants
microseconds); all processes of one trace share a clock origin, so
cross-process ordering survives the conversion.  ``tid`` duplicates
``pid`` — the tracer is single-threaded per process.  Records missing a
``pid`` (pre-shard traces) land on pid 0.  Output is the
``{"traceEvents": [...]}`` wrapper object, serialized with sorted keys
so exports are byte-stable.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional

__all__ = ["chrome_events", "chrome_trace", "export_chrome_file"]


def chrome_events(records: Iterable[dict]) -> List[dict]:
    """Map tracer records to Chrome trace-event dicts, in stream order."""
    events: List[dict] = []
    for record in records:
        ev = record.get("ev")
        pid = record.get("pid")
        pid = int(pid) if isinstance(pid, int) else 0
        ts = int(record.get("ts_ns", 0)) / 1000.0
        if ev in ("B", "E"):
            event = {
                "ph": ev,
                "name": str(record.get("name", "?")),
                "cat": "repro",
                "ts": ts,
                "pid": pid,
                "tid": pid,
            }
            attrs = record.get("attrs")
            if isinstance(attrs, dict) and attrs:
                event["args"] = attrs
            if record.get("error"):
                event.setdefault("args", {})["error"] = True
            events.append(event)
        elif ev == "I":
            event = {
                "ph": "i",
                "name": str(record.get("name", "?")),
                "cat": "repro",
                "ts": ts,
                "pid": pid,
                "tid": pid,
                "s": "t",
            }
            attrs = record.get("attrs")
            if isinstance(attrs, dict) and attrs:
                event["args"] = attrs
            events.append(event)
        elif ev == "M":
            payload = record.get("metrics")
            if not isinstance(payload, dict):
                continue
            numbers = {
                key: value for key, value in payload.items()
                if isinstance(value, (int, float))
                and not isinstance(value, bool)
            }
            if numbers:
                events.append({
                    "ph": "C",
                    "name": "metrics",
                    "cat": "repro",
                    "ts": ts,
                    "pid": pid,
                    "tid": pid,
                    "args": numbers,
                })
    return events


def chrome_trace(records: Iterable[dict]) -> Dict[str, object]:
    """The full Chrome trace object for an event stream."""
    return {
        "traceEvents": chrome_events(records),
        "displayTimeUnit": "ms",
    }


def export_chrome_file(path: str, out: Optional[str] = None) -> str:
    """Convert the trace at ``path``; write to ``out`` when given.

    Returns the serialized JSON either way.  Reading tolerates damaged
    lines the same way ``summarize`` does (they are simply dropped).
    """
    from .summarize import RecordReader

    text = json.dumps(
        chrome_trace(RecordReader(path)), sort_keys=True,
        separators=(",", ":"),
    ) + "\n"
    if out is not None:
        from ..robust.atomic import atomic_write_text

        atomic_write_text(out, text)
    return text
