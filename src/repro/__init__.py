"""repro — reproduction of Musoll & Cortadella, DATE 1996.

*Optimizing CMOS Circuits for Low Power Using Transistor Reordering.*

Public API highlights
---------------------
- :func:`repro.gates.default_library` — the paper's Table 2 gate library.
- :class:`repro.circuit.Circuit` / :func:`repro.circuit.load_blif` — netlists.
- :func:`repro.synth.map_circuit` — technology mapping onto the library.
- :class:`repro.core.GatePowerModel` — the extended stochastic power model.
- :func:`repro.core.optimize_circuit` — the paper's Figure 3 algorithm.
- :class:`repro.sim.SwitchLevelSimulator` — switch-level power validation.
- :class:`repro.incremental.StatsCache` — incremental (P, D) under ECO edits.
- :func:`repro.timing.circuit_delay` — Elmore-based static timing.
- :mod:`repro.analysis` — drivers regenerating every table and figure.
"""

__version__ = "1.0.0"

from . import (  # noqa: F401
    analysis,
    bench,
    boolean,
    circuit,
    core,
    gates,
    incremental,
    sim,
    stochastic,
    synth,
    timing,
)

__all__ = [
    "analysis",
    "bench",
    "boolean",
    "circuit",
    "core",
    "gates",
    "incremental",
    "sim",
    "stochastic",
    "synth",
    "timing",
    "__version__",
]
