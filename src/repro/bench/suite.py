"""The benchmark suite used to regenerate the paper's Table 3.

Thirty combinational circuits in the size range of the paper's MCNC
selection (tens to hundreds of mapped gates).  A few classics are
embedded as BLIF text (exercising the parser in the full flow); the
rest come from :mod:`repro.bench.generators`.  The substitution for
the original MCNC files is documented in DESIGN.md §3.7.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..circuit.blif import parse_blif
from ..circuit.logic import LogicNetwork
from . import generators as g

__all__ = ["BenchmarkCase", "benchmark_suite", "get_case", "C17_BLIF"]

#: ISCAS-85 c17 — small enough to publish inline, classic enough to matter.
C17_BLIF = """
.model c17
.inputs 1gat 2gat 3gat 6gat 7gat
.outputs 22gat 23gat
.names 1gat 3gat 10gat
11 0
.names 3gat 6gat 11gat
11 0
.names 2gat 11gat 16gat
11 0
.names 11gat 7gat 19gat
11 0
.names 10gat 16gat 22gat
11 0
.names 16gat 19gat 23gat
11 0
.end
"""

_XOR5_BLIF = """
.model xor5
.inputs a b c d e
.outputs y
.names a b t0
10 1
01 1
.names c d t1
10 1
01 1
.names t0 t1 t2
10 1
01 1
.names t2 e y
10 1
01 1
.end
"""

_MAJ3_BLIF = """
.model maj3
.inputs a b c
.outputs y
.names a b c y
11- 1
1-1 1
-11 1
.end
"""


@dataclass(frozen=True)
class BenchmarkCase:
    """One suite entry: a named logic-network factory."""

    name: str
    build: Callable[[], LogicNetwork]
    description: str
    group: str

    def network(self) -> LogicNetwork:
        network = self.build()
        network.validate()
        return network


def _blif_case(name: str, text: str, description: str) -> BenchmarkCase:
    return BenchmarkCase(name, lambda: parse_blif(text), description, "blif")


_CASES: List[BenchmarkCase] = [
    _blif_case("c17", C17_BLIF, "ISCAS-85 c17 NAND network"),
    _blif_case("xor5", _XOR5_BLIF, "5-input parity (BLIF)"),
    _blif_case("maj3", _MAJ3_BLIF, "3-input majority (BLIF)"),
    BenchmarkCase("fa1", lambda: g.ripple_carry_adder(1), "1-bit full adder", "arith"),
    BenchmarkCase("rca4", lambda: g.ripple_carry_adder(4), "4-bit ripple adder", "arith"),
    BenchmarkCase("rca8", lambda: g.ripple_carry_adder(8), "8-bit ripple adder", "arith"),
    BenchmarkCase("rca16", lambda: g.ripple_carry_adder(16), "16-bit ripple adder", "arith"),
    BenchmarkCase("mult2", lambda: g.array_multiplier(2), "2x2 array multiplier", "arith"),
    BenchmarkCase("mult3", lambda: g.array_multiplier(3), "3x3 array multiplier", "arith"),
    BenchmarkCase("mult4", lambda: g.array_multiplier(4), "4x4 array multiplier", "arith"),
    BenchmarkCase("parity8", lambda: g.parity_tree(8), "8-input parity tree", "tree"),
    BenchmarkCase("parity16", lambda: g.parity_tree(16), "16-input parity tree", "tree"),
    BenchmarkCase("eqcmp8", lambda: g.equality_comparator(8), "8-bit equality", "cmp"),
    BenchmarkCase("magcmp6", lambda: g.magnitude_comparator(6), "6-bit magnitude", "cmp"),
    BenchmarkCase("magcmp10", lambda: g.magnitude_comparator(10), "10-bit magnitude", "cmp"),
    BenchmarkCase("dec3", lambda: g.decoder(3), "3-to-8 decoder", "ctl"),
    BenchmarkCase("dec4", lambda: g.decoder(4), "4-to-16 decoder", "ctl"),
    BenchmarkCase("mux8", lambda: g.mux_tree(3), "8-to-1 multiplexer", "ctl"),
    BenchmarkCase("mux16", lambda: g.mux_tree(4), "16-to-1 multiplexer", "ctl"),
    BenchmarkCase("alu2", lambda: g.alu_slice(2), "2-bit 4-function ALU", "arith"),
    BenchmarkCase("alu4", lambda: g.alu_slice(4), "4-bit 4-function ALU", "arith"),
    BenchmarkCase("maj5", lambda: g.majority(5), "5-input majority", "tree"),
    BenchmarkCase("rnd_a", lambda: g.random_logic(8, 20, seed=11, name="rnd_a"),
                  "random logic 8x20", "rand"),
    BenchmarkCase("rnd_b", lambda: g.random_logic(10, 35, seed=23, name="rnd_b"),
                  "random logic 10x35", "rand"),
    BenchmarkCase("rnd_c", lambda: g.random_logic(12, 50, seed=37, name="rnd_c"),
                  "random logic 12x50", "rand"),
    BenchmarkCase("rnd_d", lambda: g.random_logic(16, 80, seed=41, name="rnd_d"),
                  "random logic 16x80", "rand"),
    BenchmarkCase("rnd_e", lambda: g.random_logic(14, 60, seed=53, name="rnd_e"),
                  "random logic 14x60", "rand"),
    BenchmarkCase("rnd_f", lambda: g.random_logic(20, 110, seed=67, name="rnd_f"),
                  "random logic 20x110", "rand"),
    BenchmarkCase("rnd_g", lambda: g.random_logic(24, 140, seed=71, name="rnd_g"),
                  "random logic 24x140", "rand"),
    BenchmarkCase("rnd_h", lambda: g.random_logic(18, 95, seed=83, name="rnd_h"),
                  "random logic 18x95", "rand"),
]


def benchmark_suite(subset: Optional[str] = None) -> List[BenchmarkCase]:
    """The evaluation suite.

    ``subset="quick"`` returns a small representative selection for
    CI-speed runs; ``None``/``"full"`` returns all 30 circuits.
    """
    if subset in (None, "full"):
        return list(_CASES)
    if subset == "quick":
        names = {"c17", "fa1", "rca4", "mult2", "parity8", "dec3",
                 "mux8", "magcmp6", "rnd_a", "rnd_b"}
        return [c for c in _CASES if c.name in names]
    raise ValueError(f"unknown subset {subset!r}; use 'quick' or 'full'")


def get_case(name: str) -> BenchmarkCase:
    for case in _CASES:
        if case.name == name:
            return case
    raise KeyError(f"no benchmark named {name!r}")
