"""Parametric benchmark circuit generators.

The MCNC LGSynth BLIF files the paper uses are not redistributable
here, so the evaluation runs on a suite of generated circuits of the
same character and size range (documented substitution, DESIGN.md
§3.7): datapath blocks whose input activity profiles are non-uniform
(adders, multipliers, comparators), control-ish random multilevel
logic, and classic structures (decoders, multiplexers, parity trees).
Every generator returns a technology-independent
:class:`~repro.circuit.logic.LogicNetwork` ready for mapping.
"""

from __future__ import annotations

from typing import Dict as Dict_, List, Sequence

import numpy as np

from ..circuit.logic import LogicNetwork

__all__ = [
    "full_adder_node_names",
    "ripple_carry_adder",
    "array_multiplier",
    "parity_tree",
    "equality_comparator",
    "magnitude_comparator",
    "decoder",
    "mux_tree",
    "alu_slice",
    "majority",
    "random_logic",
    "priority_encoder",
    "barrel_shifter",
    "carry_select_adder",
]

_SUM_CUBES = ("100", "010", "001", "111")
_CARRY_CUBES = ("11-", "1-1", "-11")
_XOR2 = ("10", "01")
_XNOR2 = ("11", "00")


def full_adder_node_names(index: int) -> tuple:
    """(sum, carry) node names used by the adder generators for bit ``index``."""
    return f"s{index}", f"c{index}"


def _add_full_adder(network: LogicNetwork, a: str, b: str, cin: str,
                    sum_name: str, carry_name: str) -> None:
    network.add_cover(sum_name, (a, b, cin), _SUM_CUBES)
    network.add_cover(carry_name, (a, b, cin), _CARRY_CUBES)


def ripple_carry_adder(width: int, with_cin: bool = True,
                       expose_carries: bool = False) -> LogicNetwork:
    """An n-bit ripple-carry adder — the paper's §1.1 motivating circuit.

    Inputs ``a0..``, ``b0..`` (plus ``cin``), outputs ``s0..`` and the
    carry out.  The carry chain accumulates switching activity towards
    the most significant bits, which is exactly the skew the extended
    power model exploits.
    """
    if width < 1:
        raise ValueError("width must be positive")
    network = LogicNetwork(f"rca{width}")
    for i in range(width):
        network.add_input(f"a{i}")
        network.add_input(f"b{i}")
    carry = None
    if with_cin:
        network.add_input("cin")
        carry = "cin"
    for i in range(width):
        sum_name, carry_name = full_adder_node_names(i)
        if carry is None:  # half adder for bit 0 without carry-in
            network.add_cover(sum_name, (f"a{i}", f"b{i}"), _XOR2)
            network.add_cover(carry_name, (f"a{i}", f"b{i}"), ("11",))
        else:
            _add_full_adder(network, f"a{i}", f"b{i}", carry, sum_name, carry_name)
        network.add_output(sum_name)
        if expose_carries and i < width - 1:
            network.add_output(carry_name)
        carry = carry_name
    network.add_output(carry)
    return network


def array_multiplier(width: int) -> LogicNetwork:
    """An n×n array multiplier built from AND partial products and adders."""
    if width < 2:
        raise ValueError("width must be at least 2")
    network = LogicNetwork(f"mult{width}")
    for i in range(width):
        network.add_input(f"a{i}")
    for j in range(width):
        network.add_input(f"b{j}")
    # Partial products.
    for i in range(width):
        for j in range(width):
            network.add_cover(f"pp{i}_{j}", (f"a{i}", f"b{j}"), ("11",))
    # Column-wise carry-save reduction with full/half adders.
    columns: List[List[str]] = [[] for _ in range(2 * width)]
    for i in range(width):
        for j in range(width):
            columns[i + j].append(f"pp{i}_{j}")
    counter = 0
    for col in range(2 * width):
        while len(columns[col]) > 1:
            if len(columns[col]) >= 3:
                x, y, z = columns[col][:3]
                del columns[col][:3]
                s, c = f"ms{counter}", f"mc{counter}"
                counter += 1
                _add_full_adder(network, x, y, z, s, c)
            else:
                x, y = columns[col][:2]
                del columns[col][:2]
                s, c = f"ms{counter}", f"mc{counter}"
                counter += 1
                network.add_cover(s, (x, y), _XOR2)
                network.add_cover(c, (x, y), ("11",))
            columns[col].append(s)
            if col + 1 < 2 * width:
                columns[col + 1].append(c)
    for col in range(2 * width):
        if columns[col]:
            network.add_output(columns[col][0])
    return network


def parity_tree(width: int) -> LogicNetwork:
    """XOR reduction tree over ``width`` inputs."""
    if width < 2:
        raise ValueError("width must be at least 2")
    network = LogicNetwork(f"parity{width}")
    level = [f"x{i}" for i in range(width)]
    for name in level:
        network.add_input(name)
    counter = 0
    while len(level) > 1:
        nxt = []
        for i in range(0, len(level) - 1, 2):
            name = f"p{counter}"
            counter += 1
            network.add_cover(name, (level[i], level[i + 1]), _XOR2)
            nxt.append(name)
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
    network.add_output(level[0])
    return network


def equality_comparator(width: int) -> LogicNetwork:
    """``a == b`` over two n-bit operands (XNOR bits, AND tree)."""
    if width < 1:
        raise ValueError("width must be positive")
    network = LogicNetwork(f"eqcmp{width}")
    bits = []
    for i in range(width):
        network.add_input(f"a{i}")
        network.add_input(f"b{i}")
        name = f"e{i}"
        network.add_cover(name, (f"a{i}", f"b{i}"), _XNOR2)
        bits.append(name)
    level = bits
    counter = 0
    while len(level) > 1:
        nxt = []
        for i in range(0, len(level) - 1, 2):
            name = f"t{counter}"
            counter += 1
            network.add_cover(name, (level[i], level[i + 1]), ("11",))
            nxt.append(name)
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
    network.add_output(level[0])
    return network


def magnitude_comparator(width: int) -> LogicNetwork:
    """``a < b`` via the ripple recurrence ``lt_i = !a&b | eq&lt_{i-1}``."""
    if width < 1:
        raise ValueError("width must be positive")
    network = LogicNetwork(f"magcmp{width}")
    lt_prev = None
    for i in range(width):
        network.add_input(f"a{i}")
        network.add_input(f"b{i}")
    for i in range(width):
        a, b = f"a{i}", f"b{i}"
        if lt_prev is None:
            network.add_cover(f"lt{i}", (a, b), ("01",))
        else:
            # lt = (!a & b) | ((a xnor b) & lt_prev)
            network.add_cover(
                f"lt{i}", (a, b, lt_prev), ("01-", "111", "001")
            )
        lt_prev = f"lt{i}"
    network.add_output(lt_prev)
    return network


def decoder(select_bits: int) -> LogicNetwork:
    """A ``select_bits``-to-``2**select_bits`` line decoder with enable."""
    if not 1 <= select_bits <= 6:
        raise ValueError("select_bits must be in 1..6")
    network = LogicNetwork(f"dec{select_bits}")
    sels = [f"s{i}" for i in range(select_bits)]
    for s in sels:
        network.add_input(s)
    network.add_input("en")
    for value in range(1 << select_bits):
        pattern = "".join(
            "1" if (value >> i) & 1 else "0" for i in range(select_bits)
        ) + "1"
        name = f"o{value}"
        network.add_cover(name, tuple(sels) + ("en",), (pattern,))
        network.add_output(name)
    return network


def mux_tree(select_bits: int) -> LogicNetwork:
    """A ``2**select_bits``-to-1 multiplexer built as a tree of 2:1 muxes."""
    if not 1 <= select_bits <= 6:
        raise ValueError("select_bits must be in 1..6")
    network = LogicNetwork(f"mux{1 << select_bits}")
    data = [f"d{i}" for i in range(1 << select_bits)]
    sels = [f"s{i}" for i in range(select_bits)]
    for name in data + sels:
        network.add_input(name)
    level = data
    counter = 0
    for stage, sel in enumerate(sels):
        nxt = []
        for i in range(0, len(level), 2):
            name = f"m{counter}"
            counter += 1
            # out = sel ? level[i+1] : level[i], inputs (sel, d0, d1).
            network.add_cover(name, (sel, level[i], level[i + 1]), ("01-", "1-1"))
            nxt.append(name)
        level = nxt
    network.add_output(level[0])
    return network


def alu_slice(width: int) -> LogicNetwork:
    """An n-bit 4-function ALU: op selects AND / OR / XOR / ADD.

    Inputs ``a*``, ``b*``, ``op0``, ``op1``; one output per bit plus the
    adder carry out.  The op inputs see very different activity from
    the data inputs, which makes this a good reordering workload.
    """
    if width < 1:
        raise ValueError("width must be positive")
    network = LogicNetwork(f"alu{width}")
    for i in range(width):
        network.add_input(f"a{i}")
        network.add_input(f"b{i}")
    network.add_input("op0")
    network.add_input("op1")
    carry = None
    for i in range(width):
        a, b = f"a{i}", f"b{i}"
        network.add_cover(f"and{i}", (a, b), ("11",))
        network.add_cover(f"or{i}", (a, b), ("1-", "-1"))
        network.add_cover(f"xor{i}", (a, b), _XOR2)
        if carry is None:
            network.add_cover(f"add{i}", (a, b), _XOR2)
            network.add_cover(f"cy{i}", (a, b), ("11",))
        else:
            _add_full_adder(network, a, b, carry, f"add{i}", f"cy{i}")
        carry = f"cy{i}"
        # 4:1 mux on (op1, op0): 00=and, 01=or, 10=xor, 11=add.
        network.add_cover(
            f"y{i}",
            ("op1", "op0", f"and{i}", f"or{i}", f"xor{i}", f"add{i}"),
            ("001---", "01-1--", "10--1-", "11---1"),
        )
        network.add_output(f"y{i}")
    network.add_output(carry)
    return network


def majority(width: int = 3) -> LogicNetwork:
    """Majority-of-n (odd n up to 7) as a single flat cover."""
    if width % 2 == 0 or not 3 <= width <= 7:
        raise ValueError("width must be odd, between 3 and 7")
    network = LogicNetwork(f"maj{width}")
    names = [f"x{i}" for i in range(width)]
    for n in names:
        network.add_input(n)
    threshold = width // 2 + 1
    cubes = []
    for mask in range(1 << width):
        if bin(mask).count("1") == threshold:
            cubes.append(
                "".join("1" if (mask >> i) & 1 else "-" for i in range(width))
            )
    network.add_cover("maj", tuple(names), tuple(cubes))
    network.add_output("maj")
    return network


def random_logic(num_inputs: int, num_nodes: int, seed: int,
                 max_fanin: int = 4, name: str = None) -> LogicNetwork:
    """Seeded random multilevel logic (control-logic stand-in).

    Nodes pick 2..``max_fanin`` distinct existing nets and a random
    non-trivial SOP over them.  Every sink node (one that nothing reads)
    becomes a primary output, so no logic dangles.
    """
    if num_inputs < 2 or num_nodes < 1:
        raise ValueError("need at least 2 inputs and 1 node")
    rng = np.random.default_rng(seed)
    network = LogicNetwork(name or f"rand{num_inputs}x{num_nodes}s{seed}")
    # Vector simulation (128 random assignments) guards against nodes
    # that are globally constant — the Table 2 library has no tie cells,
    # so a constant output would be unmappable.
    samples = 128
    columns: Dict_ = {}
    nets = []
    for i in range(num_inputs):
        net = f"x{i}"
        network.add_input(net)
        nets.append(net)
        columns[net] = rng.integers(0, 2, size=samples).astype(bool)

    def column_of(inputs, cubes):
        value = np.zeros(samples, dtype=bool)
        for cube in cubes:
            term = np.ones(samples, dtype=bool)
            for char, net in zip(cube, inputs):
                if char == "1":
                    term &= columns[net]
                elif char == "0":
                    term &= ~columns[net]
            value |= term
        return value

    read = set()
    for n in range(num_nodes):
        node_name = f"n{n}"
        for _attempt in range(32):
            fanin = int(rng.integers(2, max_fanin + 1))
            fanin = min(fanin, len(nets))
            chosen = list(rng.choice(len(nets), size=fanin, replace=False))
            inputs = tuple(nets[i] for i in chosen)
            cubes = set()
            num_cubes = int(rng.integers(1, fanin + 2))
            for _ in range(num_cubes):
                cube = "".join(rng.choice(["0", "1", "-"], p=[0.3, 0.4, 0.3])
                               for _ in range(fanin))
                if cube != "-" * fanin:
                    cubes.add(cube)
            if not cubes:
                continue
            cubes = tuple(sorted(cubes))
            column = column_of(inputs, cubes)
            if column.all() or not column.any():
                continue  # (near-)constant under sampling: resample
            break
        else:
            # Guaranteed non-constant fallback: XOR with a fresh primary input.
            inputs = (nets[int(rng.integers(0, num_inputs))], "x0")
            if inputs[0] == "x0":
                inputs = ("x1", "x0")
            cubes = ("10", "01")
            column = column_of(inputs, cubes)
        network.add_cover(node_name, inputs, cubes)
        columns[node_name] = column
        nets.append(node_name)
        read.update(inputs)
    for node in network.nodes:
        if node.name not in read:
            network.add_output(node.name)
    if not network.outputs:
        network.add_output(network.nodes[-1].name)
    return network


def priority_encoder(width: int) -> LogicNetwork:
    """Priority encoder: index of the highest asserted input, plus valid.

    Output bit ``q{j}`` is 1 when the highest set request has bit ``j``
    in its index; ``valid`` is the OR of all requests.
    """
    if not 2 <= width <= 16:
        raise ValueError("width must be in 2..16")
    network = LogicNetwork(f"prienc{width}")
    reqs = [f"r{i}" for i in range(width)]
    for r in reqs:
        network.add_input(r)
    # grant_i = r_i & !r_{i+1} & ... & !r_{width-1}
    for i in range(width):
        inputs = tuple(reqs[i:])
        pattern = "1" + "0" * (width - 1 - i)
        network.add_cover(f"g{i}", inputs, (pattern,))
    bits = max(1, (width - 1).bit_length())
    for j in range(bits):
        grants = tuple(f"g{i}" for i in range(width) if (i >> j) & 1)
        # Every index bit j has at least one grant with that bit set,
        # because bits is derived from width - 1.
        patterns = tuple(
            "-" * k + "1" + "-" * (len(grants) - 1 - k)
            for k in range(len(grants))
        )
        network.add_cover(f"q{j}", grants, patterns)
        network.add_output(f"q{j}")
    patterns = tuple(
        "-" * k + "1" + "-" * (width - 1 - k) for k in range(width)
    )
    network.add_cover("valid", tuple(reqs), patterns)
    network.add_output("valid")
    return network


def barrel_shifter(width_log2: int) -> LogicNetwork:
    """Logical right barrel shifter: ``2**width_log2`` data bits, staged muxes."""
    if not 1 <= width_log2 <= 4:
        raise ValueError("width_log2 must be in 1..4")
    width = 1 << width_log2
    network = LogicNetwork(f"bshift{width}")
    data = [f"d{i}" for i in range(width)]
    sels = [f"s{k}" for k in range(width_log2)]
    for name in data + sels:
        network.add_input(name)
    current = data
    for stage, sel in enumerate(sels):
        shift = 1 << stage
        nxt = []
        for i in range(width):
            src0 = current[i]
            name = f"st{stage}_{i}"
            if i + shift < width:
                src1 = current[i + shift]
                # out = sel ? src1 : src0, inputs (sel, src0, src1).
                network.add_cover(name, (sel, src0, src1), ("01-", "1-1"))
            else:
                # Shifted-in zero: out = !sel & src0.
                network.add_cover(name, (sel, src0), ("01",))
            nxt.append(name)
        current = nxt
    for i, net in enumerate(current):
        network.add_output(net)
    return network


def carry_select_adder(width: int, block: int = 4) -> LogicNetwork:
    """Carry-select adder: per-block dual ripple chains plus carry muxes.

    A different adder topology than :func:`ripple_carry_adder` — blocks
    compute both carry hypotheses speculatively, so the internal
    activity profile differs markedly (good reordering variety).
    """
    if width < 1 or block < 1:
        raise ValueError("width and block must be positive")
    network = LogicNetwork(f"csel{width}")
    for i in range(width):
        network.add_input(f"a{i}")
        network.add_input(f"b{i}")
    network.add_input("cin")
    carry = "cin"
    for base in range(0, width, block):
        top = min(base + block, width)
        suffix0, suffix1 = f"_{base}c0", f"_{base}c1"
        # Two speculative chains: carry-in 0 and carry-in 1.
        prev0 = prev1 = None
        for i in range(base, top):
            a, b = f"a{i}", f"b{i}"
            s0, c0 = f"ss{i}{suffix0}", f"cc{i}{suffix0}"
            s1, c1 = f"ss{i}{suffix1}", f"cc{i}{suffix1}"
            if prev0 is None:
                network.add_cover(s0, (a, b), _XOR2)
                network.add_cover(c0, (a, b), ("11",))
                network.add_cover(s1, (a, b), _XNOR2)
                network.add_cover(c1, (a, b), ("1-", "-1"))
            else:
                _add_full_adder(network, a, b, prev0, s0, c0)
                _add_full_adder(network, a, b, prev1, s1, c1)
            prev0, prev1 = c0, c1
        # Select the real results with the incoming carry.
        for i in range(base, top):
            name = f"s{i}"
            network.add_cover(
                name, (carry, f"ss{i}{suffix0}", f"ss{i}{suffix1}"),
                ("01-", "1-1"),
            )
            network.add_output(name)
        out_carry = f"c{top - 1}"
        network.add_cover(
            out_carry, (carry, prev0, prev1), ("01-", "1-1")
        )
        carry = out_carry
    network.add_output(carry)
    return network
