"""Parallel batch runner for the Table-3 benchmark sweep.

Runs the full flow (map -> optimise best/worst -> switch-level simulate
-> STA) for every suite circuit and scenario, fanned out over worker
processes with :mod:`multiprocessing`, and collects the rows into a
canonical JSON artifact:

* one work item per circuit, covering all requested scenarios, so the
  mapped netlist is built once per circuit (a per-process cache keyed
  by case name) instead of once per (circuit, scenario, run);
* results are deterministic for a given seed — identical across runs
  and across ``--jobs`` settings — because the per-case stimulus seed
  is CRC-based (:func:`repro.analysis.experiments.case_seed`) and work
  items are collected in suite order regardless of completion order;
* the artifact separates payload from timing (``elapsed_s`` fields), so
  golden comparisons strip timing with :func:`strip_timing` and byte-
  compare the rest (:func:`dumps_artifact` is canonical: sorted keys,
  fixed separators, trailing newline).

The ``repro bench`` CLI subcommand wraps :func:`run_suite`; the
``benchmarks/bench_runner_suite.py`` script consumes the artifact.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..circuit.netlist import Circuit
from ..synth.mapper import map_circuit
from .suite import benchmark_suite, get_case

# NOTE: repro.analysis.experiments imports repro.bench.suite, so the
# experiment driver is imported lazily inside the worker functions to
# keep `import repro.bench` cycle-free.

__all__ = [
    "SCHEMA_VERSION",
    "TIMING_FIELDS",
    "environment_meta",
    "run_suite",
    "dumps_artifact",
    "write_artifact",
    "load_artifact",
    "strip_timing",
]

SCHEMA_VERSION = 1

#: Keys that describe the run rather than the result (wall-clock times,
#: worker count, host environment); stripped for golden byte-comparisons.
TIMING_FIELDS = ("elapsed_s", "jobs", "meta")


def _git_sha() -> Optional[str]:
    """The checkout's HEAD commit, or ``None`` outside a git checkout."""
    import subprocess

    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if proc.returncode != 0:
        return None
    return proc.stdout.strip() or None


def environment_meta() -> Dict[str, object]:
    """The run-environment block every benchmark artifact carries.

    Describes *where* the numbers were produced (interpreter, numpy,
    core count, kernel routing, host, source revision) — run
    descriptors like ``elapsed_s``, so ``meta`` is in
    :data:`TIMING_FIELDS` and :func:`strip_timing` drops it from golden
    byte-comparisons.  ``git_sha`` is best-effort: ``None`` outside a
    checkout (an installed package, a tarball).
    """
    import platform

    import numpy

    from ..compiled.flags import compiled_default

    return {
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "platform": platform.system(),
        "machine": platform.machine(),
        "hostname": platform.node(),
        "cpu_count": os.cpu_count() or 1,
        "compiled": compiled_default(),
        "git_sha": _git_sha(),
    }

#: Worker-local mapped-netlist cache: case name -> mapped circuit.  The
#: optimiser copies before reordering, so cached circuits stay pristine.
_MAPPED_CACHE: Dict[str, Circuit] = {}


def _mapped_circuit(case_name: str) -> Circuit:
    circuit = _MAPPED_CACHE.get(case_name)
    if circuit is None:
        circuit = map_circuit(get_case(case_name).network())
        _MAPPED_CACHE[case_name] = circuit
    return circuit


def _row_dict(row, elapsed: float) -> Dict[str, object]:
    return {
        "circuit": row.name,
        "scenario": row.scenario,
        "status": "ok",
        "gates": row.gates,
        "model_reduction": row.model_reduction,
        "sim_reduction": row.sim_reduction,
        "delay_increase": row.delay_increase,
        "model_power_best": row.model_power_best,
        "sim_power_best": row.sim_power_best,
        "elapsed_s": elapsed,
    }


def _error_row(case_name: str, status: str,
               error: Optional[str]) -> Dict[str, object]:
    """The row a failed case contributes instead of aborting the sweep."""
    return {
        "circuit": case_name,
        "status": status,
        "error": error or "",
    }


def _run_case(work: Tuple[str, Tuple[str, ...], int]) -> List[Dict[str, object]]:
    """One work item: every scenario of one circuit, mapping reused."""
    from ..analysis.experiments import run_table3_case
    from ..obs import trace as _trace
    from ..robust import faults as _faults

    case_name, scenarios, seed = work
    tracer = _trace.ACTIVE
    span = (tracer.span("bench.case", circuit=case_name)
            if tracer is not None else _trace.NULL_SPAN)
    try:
        with span:
            _faults.fire("bench.case", match=case_name)
            circuit = _mapped_circuit(case_name)
            case = get_case(case_name)
            rows = []
            for scenario in scenarios:
                start = time.perf_counter()
                row = run_table3_case(case, scenario, seed=seed,
                                      circuit=circuit)
                rows.append(_row_dict(row, time.perf_counter() - start))
            return rows
    finally:
        # Pool workers exit via os._exit: flush this pid's trace shard
        # before the result ships back.
        _trace.flush()


def _case_progress(case_name: str, done: int, total: int) -> None:
    from ..obs import progress as _progress

    sink = _progress.ACTIVE
    if sink is not None:
        sink.emit("bench.case", force=True, circuit=case_name, done=done,
                  total=total)


def run_suite(subset: Optional[str] = "quick",
              scenarios: Sequence[str] = ("A", "B"),
              jobs: int = 1,
              seed: int = 0,
              cases: Optional[Sequence[str]] = None,
              out_path: Optional[str] = None,
              case_timeout_s: Optional[float] = None,
              retries: int = 2) -> Dict[str, object]:
    """Run the Table-3 sweep, optionally in parallel, and return the artifact.

    ``cases`` overrides ``subset`` with an explicit list of case names.
    ``jobs > 1`` fans circuits out over supervised worker processes
    (:func:`repro.robust.supervise.run_supervised`); results are in
    suite order and bit-identical to a ``jobs=1`` run.  When
    ``out_path`` is given the canonical JSON artifact is also written
    there (atomically — a kill mid-write never leaves a torn file).

    A case that raises, crashes its worker or outlives ``case_timeout_s``
    no longer aborts the sweep: after ``retries`` additional attempts it
    contributes a single ``{"status": "error"|"crashed"|"timeout"}`` row
    carrying the failure text, and every other case still reports.
    Success rows carry ``status: "ok"``.  ``case_timeout_s`` needs a
    worker process to enforce, so setting it routes even ``jobs=1`` runs
    through the supervisor.  ``KeyboardInterrupt``/SIGTERM stops the
    sweep, keeps the completed rows and flags the artifact
    ``partial: true`` instead of raising.
    """
    if cases is not None:
        names = [get_case(name).name for name in cases]
        subset_label = "custom"
    else:
        names = [case.name for case in benchmark_suite(subset)]
        subset_label = subset or "full"
    scenarios = tuple(scenarios)
    for scenario in scenarios:
        if scenario not in ("A", "B"):
            raise ValueError(f"scenario must be 'A' or 'B', got {scenario!r}")
    if jobs < 1:
        raise ValueError("jobs must be at least 1")

    work = [(name, scenarios, seed) for name in names]
    grouped: List[Optional[List[Dict[str, object]]]] = [None] * len(work)
    interrupted = False
    start = time.perf_counter()
    if case_timeout_s is None and (jobs == 1 or len(work) <= 1):
        done = 0
        try:
            for index, item in enumerate(work):
                attempt = 1
                while True:
                    try:
                        rows = _run_case(item)
                    except KeyboardInterrupt:
                        raise
                    except Exception as error:
                        if attempt <= retries:
                            attempt += 1
                            continue
                        rows = [_error_row(
                            item[0], "error",
                            f"{type(error).__name__}: {error}",
                        )]
                    break
                grouped[index] = rows
                done += 1
                _case_progress(item[0], done, len(work))
        except KeyboardInterrupt:
            interrupted = True
    else:
        from ..robust.supervise import run_supervised

        def on_complete(outcome, done, total) -> None:
            if outcome.ok:
                grouped[outcome.index] = outcome.value
            _case_progress(work[outcome.index][0], done, total)

        run = run_supervised(
            _run_case, work, min(jobs, len(work)),
            retries=retries, deadline_s=case_timeout_s,
            on_complete=on_complete, label="bench.case",
        )
        interrupted = run.interrupted
        for outcome in run.failed:
            if interrupted and outcome.status == "interrupted":
                continue
            grouped[outcome.index] = [_error_row(
                work[outcome.index][0], outcome.status, outcome.error,
            )]
    elapsed = time.perf_counter() - start

    artifact: Dict[str, object] = {
        "schema": SCHEMA_VERSION,
        "suite": {
            "subset": subset_label,
            "cases": names,
            "scenarios": list(scenarios),
            "seed": seed,
        },
        "jobs": jobs,
        "elapsed_s": elapsed,
        "meta": environment_meta(),
        "results": [row for rows in grouped if rows is not None
                    for row in rows],
    }
    if interrupted:
        artifact["partial"] = True
    if out_path:
        write_artifact(artifact, out_path)
    return artifact


# ----------------------------------------------------------------------
# Artifact serialisation
# ----------------------------------------------------------------------
def dumps_artifact(artifact: Mapping[str, object]) -> str:
    """Canonical JSON: sorted keys, fixed separators, newline-terminated."""
    return json.dumps(artifact, sort_keys=True, indent=2,
                      separators=(",", ": ")) + "\n"


def write_artifact(artifact: Mapping[str, object], path: str) -> None:
    """Write canonical JSON atomically — no torn artifacts on a crash."""
    from ..robust.atomic import atomic_write_text

    atomic_write_text(path, dumps_artifact(artifact))


def load_artifact(path: str) -> Dict[str, object]:
    with open(path) as handle:
        artifact = json.load(handle)
    if artifact.get("schema") != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported artifact schema {artifact.get('schema')!r} "
            f"(expected {SCHEMA_VERSION})"
        )
    return artifact


def strip_timing(value):
    """Recursively drop timing fields — the run-varying part of an artifact."""
    if isinstance(value, Mapping):
        return {
            k: strip_timing(v) for k, v in value.items() if k not in TIMING_FIELDS
        }
    if isinstance(value, list):
        return [strip_timing(v) for v in value]
    return value
