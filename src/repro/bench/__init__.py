"""Benchmark circuits: parametric generators and the Table 3 suite."""

from .generators import (
    alu_slice,
    barrel_shifter,
    carry_select_adder,
    priority_encoder,
    array_multiplier,
    decoder,
    equality_comparator,
    magnitude_comparator,
    majority,
    mux_tree,
    parity_tree,
    random_logic,
    ripple_carry_adder,
)
from .runner import load_artifact, run_suite, strip_timing, write_artifact
from .suite import BenchmarkCase, benchmark_suite, get_case

__all__ = [
    "BenchmarkCase",
    "benchmark_suite",
    "get_case",
    "run_suite",
    "load_artifact",
    "write_artifact",
    "strip_timing",
    "ripple_carry_adder",
    "array_multiplier",
    "parity_tree",
    "equality_comparator",
    "magnitude_comparator",
    "decoder",
    "mux_tree",
    "alu_slice",
    "majority",
    "random_logic",
    "priority_encoder",
    "barrel_shifter",
    "carry_select_adder",
]
