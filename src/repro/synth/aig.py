"""And-inverter graphs with structural hashing.

The subject graph for technology mapping: two-input AND nodes with
complementable edges.  Literals are integers ``2*node + phase`` with
``phase = 1`` meaning inverted; literal 0 is constant false, literal 1
constant true.  Construction folds constants and hashes structurally,
so the graph is compact and topologically ordered by node index.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..boolean.expr import And, Const, Expr, Not, Or, Var, Xor
from ..boolean.truthtable import TruthTable
from ..circuit.logic import LogicNetwork
from .sop import cover_to_expr, simplify_cover

__all__ = ["AIG", "aig_from_logic_network"]

CONST0 = 0
CONST1 = 1


def lit_node(lit: int) -> int:
    """The node index of a literal."""
    return lit >> 1


def lit_phase(lit: int) -> int:
    """1 when the literal is inverted."""
    return lit & 1


def lit_not(lit: int) -> int:
    return lit ^ 1


class AIG:
    """A structurally hashed and-inverter graph."""

    def __init__(self):
        # Node 0 is the constant; nodes 1..n_pi are primary inputs.
        self._fanins: List[Optional[Tuple[int, int]]] = [None]
        self._pi_names: List[str] = []
        self._pi_lit: Dict[str, int] = {}
        self._pos: List[Tuple[str, int]] = []
        self._strash: Dict[Tuple[int, int], int] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_pi(self, name: str) -> int:
        """Declare a primary input; returns its positive literal."""
        if name in self._pi_lit:
            raise ValueError(f"duplicate primary input {name!r}")
        node = len(self._fanins)
        self._fanins.append(None)
        self._pi_names.append(name)
        lit = 2 * node
        self._pi_lit[name] = lit
        return lit

    def pi_literal(self, name: str) -> int:
        return self._pi_lit[name]

    def add_po(self, name: str, lit: int) -> None:
        if any(po == name for po, _ in self._pos):
            raise ValueError(f"duplicate primary output {name!r}")
        self._check_lit(lit)
        self._pos.append((name, lit))

    def and_(self, a: int, b: int) -> int:
        """AND of two literals, with constant folding and strashing."""
        self._check_lit(a)
        self._check_lit(b)
        if a == CONST0 or b == CONST0 or a == lit_not(b):
            return CONST0
        if a == CONST1:
            return b
        if b == CONST1 or a == b:
            return a
        if b < a:
            a, b = b, a
        key = (a, b)
        node = self._strash.get(key)
        if node is None:
            node = len(self._fanins)
            self._fanins.append(key)
            self._strash[key] = node
        return 2 * node

    def or_(self, a: int, b: int) -> int:
        return lit_not(self.and_(lit_not(a), lit_not(b)))

    def xor_(self, a: int, b: int) -> int:
        return lit_not(self.and_(lit_not(self.and_(a, lit_not(b))),
                                 lit_not(self.and_(lit_not(a), b))))

    def and_many(self, lits: Sequence[int]) -> int:
        """Balanced AND tree over a list of literals."""
        return self._balanced(list(lits), self.and_, CONST1)

    def or_many(self, lits: Sequence[int]) -> int:
        return self._balanced(list(lits), self.or_, CONST0)

    def _balanced(self, lits: List[int], op, identity: int) -> int:
        if not lits:
            return identity
        while len(lits) > 1:
            nxt = []
            for i in range(0, len(lits) - 1, 2):
                nxt.append(op(lits[i], lits[i + 1]))
            if len(lits) % 2:
                nxt.append(lits[-1])
            lits = nxt
        return lits[0]

    def _check_lit(self, lit: int) -> None:
        if not 0 <= lit_node(lit) < len(self._fanins):
            raise ValueError(f"literal {lit} out of range")

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """All nodes including the constant and primary inputs."""
        return len(self._fanins)

    @property
    def num_ands(self) -> int:
        return sum(1 for f in self._fanins if f is not None)

    @property
    def pi_names(self) -> Tuple[str, ...]:
        return tuple(self._pi_names)

    @property
    def pos(self) -> Tuple[Tuple[str, int], ...]:
        return tuple(self._pos)

    def is_pi(self, node: int) -> bool:
        return node != 0 and self._fanins[node] is None

    def is_and(self, node: int) -> bool:
        return self._fanins[node] is not None

    def fanins(self, node: int) -> Tuple[int, int]:
        fanin = self._fanins[node]
        if fanin is None:
            raise ValueError(f"node {node} is not an AND node")
        return fanin

    def and_nodes(self) -> Tuple[int, ...]:
        """AND node indices in topological order (construction order)."""
        return tuple(i for i, f in enumerate(self._fanins) if f is not None)

    def pi_name_of(self, node: int) -> str:
        if not self.is_pi(node):
            raise ValueError(f"node {node} is not a primary input")
        return self._pi_names[node - 1]

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(self, assignment: Mapping[str, bool]) -> Dict[str, bool]:
        """Evaluate all primary outputs on one input assignment."""
        values: List[bool] = [False] * len(self._fanins)
        for name, lit in self._pi_lit.items():
            values[lit_node(lit)] = bool(assignment[name])
        for node, fanin in enumerate(self._fanins):
            if fanin is not None:
                a, b = fanin
                va = values[lit_node(a)] ^ bool(lit_phase(a))
                vb = values[lit_node(b)] ^ bool(lit_phase(b))
                values[node] = va and vb
        return {
            name: values[lit_node(lit)] ^ bool(lit_phase(lit))
            for name, lit in self._pos
        }

    def cone_truthtable(self, node: int, leaves: Sequence[int],
                        variables: Sequence[str]) -> TruthTable:
        """Function of ``node`` over cut ``leaves`` (positive leaf phases).

        ``variables[i]`` names leaf ``leaves[i]``.  Raises if the cone
        reaches past the leaves to a primary input or the constant.
        """
        leaf_pos = {leaf: i for i, leaf in enumerate(leaves)}
        cache: Dict[int, TruthTable] = {}

        def walk(n: int) -> TruthTable:
            if n in leaf_pos:
                return TruthTable.variable(variables, variables[leaf_pos[n]])
            hit = cache.get(n)
            if hit is not None:
                return hit
            if not self.is_and(n):
                raise ValueError(f"cone of node {node} escapes the cut at node {n}")
            a, b = self.fanins(n)
            ta = walk(lit_node(a))
            if lit_phase(a):
                ta = ~ta
            tb = walk(lit_node(b))
            if lit_phase(b):
                tb = ~tb
            result = ta & tb
            cache[n] = result
            return result

        return walk(node)

    # Convenience: mimic the Circuit/LogicNetwork evaluation interface.
    @property
    def inputs(self) -> Tuple[str, ...]:
        return self.pi_names

    @property
    def outputs(self) -> Tuple[str, ...]:
        return tuple(name for name, _ in self._pos)


class _LitOps:
    """Adapter giving AIG literals the operator protocol Expr expects."""

    __slots__ = ("aig", "lit")

    def __init__(self, aig: AIG, lit: int):
        self.aig = aig
        self.lit = lit

    def __and__(self, other):
        return _LitOps(self.aig, self.aig.and_(self.lit, other.lit))

    def __or__(self, other):
        return _LitOps(self.aig, self.aig.or_(self.lit, other.lit))

    def __xor__(self, other):
        return _LitOps(self.aig, self.aig.xor_(self.lit, other.lit))

    def __invert__(self):
        return _LitOps(self.aig, lit_not(self.lit))


def aig_from_logic_network(network: LogicNetwork, factored: bool = True) -> AIG:
    """Build the subject graph of a logic network.

    Each node's cover is minimised (two-level,
    :func:`repro.synth.espresso.minimize_cover`) and, when ``factored``,
    algebraically factored (:func:`repro.synth.factoring.factor_to_expr`)
    before being folded into the AIG with structural hashing — factored
    forms share literals, which shrinks the subject graph and hence the
    mapped netlist.
    """
    from .espresso import minimize_cover
    from .factoring import factor_to_expr

    network.validate()
    aig = AIG()
    lits: Dict[str, int] = {}
    for name in network.inputs:
        lits[name] = aig.add_pi(name)
    for node in network.topological_nodes():
        cover = minimize_cover(
            [c.pattern for c in node.cubes], len(node.inputs)
        )
        if factored and len(cover) >= 2:
            expr = factor_to_expr(cover, node.inputs)
        else:
            expr = cover_to_expr(cover, node.inputs)
        env = {name: _LitOps(aig, lits[name]) for name in node.inputs}
        value = expr.evaluate(env)
        if isinstance(value, bool):
            lit = CONST1 if value else CONST0
        else:
            lit = value.lit
        if not node.phase:
            lit = lit_not(lit)
        lits[node.name] = lit
    for name in network.outputs:
        aig.add_po(name, lits[name])
    return aig
