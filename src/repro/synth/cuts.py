"""K-feasible cut enumeration on and-inverter graphs.

A *cut* of node ``n`` is a set of nodes (leaves) such that every path
from the primary inputs to ``n`` crosses a leaf; a cut is k-feasible
when it has at most ``k`` leaves.  Cuts are enumerated bottom-up: the
cuts of an AND node are the pairwise unions of its fanin cuts (plus the
trivial cut ``{n}``), pruned for dominance and capped per node — the
standard FlowMap/ABC scheme.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .aig import AIG, lit_node

__all__ = ["enumerate_cuts", "Cut"]

#: A cut: sorted tuple of leaf node indices.
Cut = Tuple[int, ...]


def _dominated(cut: Cut, others: List[Cut]) -> bool:
    cut_set = set(cut)
    for other in others:
        if other != cut and set(other) <= cut_set:
            return True
    return False


def enumerate_cuts(aig: AIG, k: int = 6, max_cuts: int = 16) -> Dict[int, List[Cut]]:
    """All (pruned) k-feasible cuts of every node.

    Primary inputs get only their trivial cut.  The trivial cut of each
    AND node is always kept in addition to up to ``max_cuts`` merged
    cuts (smallest first), so downstream matching always has the
    fallback decomposition available.
    """
    if k < 2:
        raise ValueError("k must be at least 2")
    cuts: Dict[int, List[Cut]] = {}
    for node in range(aig.num_nodes):
        if node == 0:
            cuts[node] = [()]  # the constant has an empty cut
            continue
        if aig.is_pi(node):
            cuts[node] = [(node,)]
            continue
        a, b = aig.fanins(node)
        na, nb = lit_node(a), lit_node(b)
        merged: List[Cut] = []
        seen = set()
        for cut_a in cuts[na]:
            for cut_b in cuts[nb]:
                union = tuple(sorted(set(cut_a) | set(cut_b)))
                if len(union) > k or union in seen:
                    continue
                seen.add(union)
                merged.append(union)
        merged = [c for c in merged if not _dominated(c, merged)]
        merged.sort(key=lambda c: (len(c), c))
        trivial = (node,)
        result = merged[:max_cuts]
        if trivial not in result:
            result.append(trivial)
        cuts[node] = result
    return cuts
