"""Synthesis substrates: SOP covers, AIGs, cut enumeration, tech mapping."""

from .aig import AIG, aig_from_logic_network
from .cuts import enumerate_cuts
from .mapper import PatternIndex, TechMapper, map_circuit
from .sop import cover_to_expr, cube_contains, merge_cubes, simplify_cover

__all__ = [
    "AIG",
    "aig_from_logic_network",
    "enumerate_cuts",
    "PatternIndex",
    "TechMapper",
    "map_circuit",
    "simplify_cover",
    "cover_to_expr",
    "cube_contains",
    "merge_cubes",
]
