"""Algebraic factoring: kernel extraction and factored forms.

SIS-style algebraic division over SOP covers treated as polynomials of
literals:

* :func:`divide` — weak (algebraic) division of a cover by a divisor;
* :func:`kernels` — all kernels (cube-free primary divisors) and their
  co-kernels, by the classic recursive literal-division algorithm;
* :func:`factor` — quick-factor: recursively divide by the best kernel,
  producing a factored expression tree.

Feeding factored forms (instead of flat OR-of-AND trees) into the AIG
builder shares more structure and maps to smaller netlists; the mapper
uses it through :func:`repro.synth.aig.aig_from_logic_network` when the
cover is large.  Covers here are sets of frozensets of literals, where
a literal is ``(name, polarity)``.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..boolean.expr import And, Const, Expr, Not, Or, Var

__all__ = ["Cube", "Cover", "cover_from_patterns", "divide", "kernels", "factor",
           "factor_to_expr"]

#: A literal: (variable name, True for positive polarity).
Literal = Tuple[str, bool]
Cube = FrozenSet[Literal]
Cover = FrozenSet[Cube]


def cover_from_patterns(patterns: Sequence[str], inputs: Sequence[str]) -> Cover:
    """Build an algebraic cover from BLIF-style patterns."""
    cubes: Set[Cube] = set()
    for pattern in patterns:
        if len(pattern) != len(inputs):
            raise ValueError(f"pattern {pattern!r} arity != {len(inputs)}")
        literals: Set[Literal] = set()
        for char, name in zip(pattern, inputs):
            if char == "1":
                literals.add((name, True))
            elif char == "0":
                literals.add((name, False))
        cubes.add(frozenset(literals))
    return frozenset(cubes)


def divide(cover: Cover, divisor: Cover) -> Tuple[Cover, Cover]:
    """Weak division: ``cover = quotient * divisor + remainder``.

    The quotient is the largest cover Q with ``Q x divisor`` contained
    in ``cover`` (algebraically, i.e. cube-by-cube concatenation).
    """
    if not divisor:
        raise ValueError("division by the empty cover")
    quotients: Optional[Set[Cube]] = None
    for d_cube in divisor:
        partial = set()
        for c_cube in cover:
            if d_cube <= c_cube:
                partial.add(frozenset(c_cube - d_cube))
        if quotients is None:
            quotients = partial
        else:
            quotients &= partial
        if not quotients:
            return frozenset(), cover
    quotient = frozenset(quotients or set())
    used = {
        frozenset(q | d) for q in quotient for d in divisor
    }
    remainder = frozenset(c for c in cover if c not in used)
    return quotient, remainder


def _literal_counts(cover: Cover) -> Dict[Literal, int]:
    counts: Dict[Literal, int] = {}
    for cube in cover:
        for lit in cube:
            counts[lit] = counts.get(lit, 0) + 1
    return counts


def _make_cube_free(cover: Cover) -> Cover:
    """Strip the largest common cube from every cube of the cover."""
    if not cover:
        return cover
    common = None
    for cube in cover:
        common = set(cube) if common is None else common & cube
    if not common:
        return cover
    return frozenset(frozenset(c - common) for c in cover)


def is_cube_free(cover: Cover) -> bool:
    if not cover:
        return True
    common = None
    for cube in cover:
        common = set(cube) if common is None else common & cube
    return not common


def kernels(cover: Cover) -> List[Tuple[Cube, Cover]]:
    """All (co-kernel, kernel) pairs of an algebraic cover.

    The kernel set includes the cover itself when it is cube-free (the
    level-0 trivial kernel).  Deterministic order.
    """
    found: Dict[Cover, Cube] = {}

    def visit(current: Cover, picked: Set[Literal], start_index: int,
              literal_order: List[Literal]) -> None:
        counts = _literal_counts(current)
        for index in range(start_index, len(literal_order)):
            literal = literal_order[index]
            if counts.get(literal, 0) < 2:
                continue
            sub = frozenset(
                frozenset(c - {literal}) for c in current if literal in c
            )
            common: Optional[Set[Literal]] = None
            for cube in sub:
                common = set(cube) if common is None else common & cube
            common = common or set()
            kernel = frozenset(frozenset(c - common) for c in sub)
            co_kernel = frozenset(picked | {literal} | common)
            if kernel not in found:
                found[kernel] = co_kernel
                visit(kernel, set(co_kernel), index + 1, literal_order)

    literal_order = sorted(_literal_counts(cover))
    visit(cover, set(), 0, literal_order)
    if is_cube_free(cover) and cover not in found:
        found[cover] = frozenset()
    return sorted(
        ((co, k) for k, co in found.items()),
        key=lambda pair: (sorted(map(sorted, pair[1])), sorted(pair[0])),
    )


def _best_kernel(cover: Cover) -> Optional[Cover]:
    """The kernel maximising literal savings (None when none helps)."""
    best = None
    best_value = 0
    for _, kernel in kernels(cover):
        if len(kernel) < 2 or kernel == cover:
            continue
        quotient, _ = divide(cover, kernel)
        if not quotient:
            continue
        kernel_lits = sum(len(c) for c in kernel)
        value = (len(quotient) - 1) * kernel_lits
        if value > best_value:
            best_value = value
            best = kernel
    return best


def _cube_expr(cube: Cube) -> Expr:
    literals = sorted(cube)
    parts: List[Expr] = [
        Var(name) if positive else Not(Var(name)) for name, positive in literals
    ]
    if not parts:
        return Const(True)
    return parts[0] if len(parts) == 1 else And(tuple(parts))


def _sum_expr(cover: Cover) -> Expr:
    cubes = sorted(cover, key=lambda c: sorted(c))
    if not cubes:
        return Const(False)
    parts = [_cube_expr(c) for c in cubes]
    return parts[0] if len(parts) == 1 else Or(tuple(parts))


def factor(cover: Cover) -> Expr:
    """Quick-factor: recursively pull out the most valuable kernel."""
    if not cover:
        return Const(False)
    if len(cover) == 1:
        return _cube_expr(next(iter(cover)))
    kernel = _best_kernel(cover)
    if kernel is None:
        return _sum_expr(cover)
    quotient, remainder = divide(cover, kernel)
    if not quotient:
        return _sum_expr(cover)
    product = And((factor(quotient), factor(kernel)))
    if not remainder:
        return product
    return Or((product, factor(remainder)))


def factor_to_expr(patterns: Sequence[str], inputs: Sequence[str]) -> Expr:
    """Factored expression of a BLIF cover (algebraically equivalent)."""
    if not patterns:
        return Const(False)
    if any(set(pattern) <= {"-"} for pattern in patterns):
        return Const(True)  # the universal cube covers everything
    return factor(cover_from_patterns(patterns, inputs))
