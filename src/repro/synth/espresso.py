"""Two-level minimisation: a compact espresso-style EXPAND / IRREDUNDANT loop.

The MCNC covers that feed the mapper are often redundant; shrinking them
first shrinks the AIG and therefore the mapped netlist.  This module
implements the exact-on-small-inputs core of the espresso loop:

* ``EXPAND`` — raise each cube against the OFF-set (computed exactly
  from the cover's truth table, so node support must stay within
  :data:`MAX_EXACT_VARS` inputs; larger nodes pass through untouched);
* ``IRREDUNDANT`` — greedily drop cubes covered by the rest;
* iterate to a fixpoint.

The result is a prime and irredundant cover of exactly the same
function — verified by construction against the truth table and by the
property tests in ``tests/test_espresso.py``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..boolean.truthtable import TruthTable
from ..circuit.logic import LogicNetwork, LogicNode
from .sop import cover_to_expr, simplify_cover

__all__ = ["minimize_cover", "minimize_network", "MAX_EXACT_VARS"]

#: Nodes with more inputs than this skip exact minimisation (dense truth
#: tables get expensive); the cheap :func:`simplify_cover` still runs.
MAX_EXACT_VARS = 12


def _cover_truthtable(patterns: Sequence[str], variables: Tuple[str, ...]) -> TruthTable:
    return cover_to_expr(patterns, variables).to_truthtable(variables)


def _cube_truthtable(pattern: str, variables: Tuple[str, ...]) -> TruthTable:
    tt = TruthTable.constant(variables, True)
    for char, var in zip(pattern, variables):
        if char == "1":
            tt = tt & TruthTable.variable(variables, var)
        elif char == "0":
            tt = tt & ~TruthTable.variable(variables, var)
    return tt


def _expand_cube(pattern: str, off_set: TruthTable,
                 variables: Tuple[str, ...]) -> str:
    """Raise literals of a cube as long as it stays off the OFF-set.

    Literals are tried in a fixed order, so expansion is deterministic;
    the result is a prime implicant containing the input cube.
    """
    current = list(pattern)
    for i in range(len(current)):
        if current[i] == "-":
            continue
        saved = current[i]
        current[i] = "-"
        candidate = "".join(current)
        if (_cube_truthtable(candidate, variables) & off_set).bits != 0:
            current[i] = saved  # raising this literal hits the OFF-set
    return "".join(current)


def _irredundant(patterns: List[str], variables: Tuple[str, ...]) -> List[str]:
    """Greedily drop cubes whose minterms are covered by the others."""
    kept = list(patterns)
    # Try dropping the largest cubes last (they are likely essential).
    order = sorted(range(len(kept)), key=lambda i: kept[i].count("-"))
    target = _cover_truthtable(kept, variables)
    for index in order:
        trial = [kept[i] for i in range(len(kept)) if i != index and kept[i] is not None]
        trial = [p for p in trial if p is not None]
        if kept[index] is None:
            continue
        without = [p for j, p in enumerate(kept) if j != index and p is not None]
        if without and _cover_truthtable(without, variables) == target:
            kept[index] = None
    return [p for p in kept if p is not None]


def minimize_cover(patterns: Sequence[str], num_inputs: int) -> Tuple[str, ...]:
    """Minimise an ON-set cover; the function is preserved exactly.

    Returns a prime, irredundant cover when ``num_inputs`` allows the
    exact OFF-set computation, otherwise the adjacency-merged cover of
    :func:`repro.synth.sop.simplify_cover`.
    """
    patterns = list(simplify_cover(patterns))
    if not patterns or num_inputs == 0:
        return tuple(patterns)
    if num_inputs > MAX_EXACT_VARS:
        return tuple(patterns)
    variables = tuple(f"v{i}" for i in range(num_inputs))
    on_set = _cover_truthtable(patterns, variables)
    if on_set.is_constant():
        return ("-" * num_inputs,) if on_set.constant_value() else ()
    off_set = ~on_set
    previous: Optional[List[str]] = None
    current = patterns
    for _ in range(8):  # fixpoint loop; converges in 1-2 rounds in practice
        expanded = [_expand_cube(p, off_set, variables) for p in current]
        expanded = list(dict.fromkeys(expanded))
        reduced = _irredundant(expanded, variables)
        if reduced == previous:
            break
        previous = current = reduced
    assert _cover_truthtable(current, variables) == on_set
    return tuple(current)


def minimize_network(network: LogicNetwork) -> LogicNetwork:
    """Minimise every node cover of a logic network (same I/O behaviour)."""
    result = LogicNetwork(network.name)
    for net in network.inputs:
        result.add_input(net)
    for node in network.nodes:
        patterns = [c.pattern for c in node.cubes]
        minimized = minimize_cover(patterns, len(node.inputs))
        result.add_cover(node.name, node.inputs, minimized, node.phase)
    for net in network.outputs:
        result.add_output(net)
    return result
