"""Sum-of-products cover manipulation.

A light-weight cube calculus used on the way from BLIF covers to the
and-inverter subject graph: single-cube containment removal and
distance-1 cube merging (the cheap core of espresso's EXPAND/IRREDUNDANT
loop).  Covers are tuples of pattern strings over ``{'0','1','-'}``.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from ..boolean.expr import And, Const, Expr, Not, Or, Var

__all__ = [
    "cube_contains",
    "cube_distance",
    "merge_cubes",
    "simplify_cover",
    "cover_to_expr",
]


def cube_contains(general: str, specific: str) -> bool:
    """True when cube ``general`` covers every minterm of ``specific``."""
    if len(general) != len(specific):
        raise ValueError("cube arity mismatch")
    for g, s in zip(general, specific):
        if g != "-" and g != s:
            return False
    return True


def cube_distance(a: str, b: str) -> int:
    """Number of positions where the cubes have opposing literals."""
    if len(a) != len(b):
        raise ValueError("cube arity mismatch")
    return sum(
        1 for x, y in zip(a, b) if x != "-" and y != "-" and x != y
    )


def merge_cubes(a: str, b: str) -> Optional[str]:
    """Merge two cubes differing in exactly one opposing literal.

    ``10- + 11- -> 1--`` (the classic consensus/adjacency rule); returns
    ``None`` when the cubes are not mergeable this way.
    """
    if len(a) != len(b):
        raise ValueError("cube arity mismatch")
    diff = -1
    for i, (x, y) in enumerate(zip(a, b)):
        if x == y:
            continue
        if x == "-" or y == "-":
            return None  # don't-care mismatch: not a pure adjacency
        if diff >= 0:
            return None
        diff = i
    if diff < 0:
        return a  # identical cubes
    return a[:diff] + "-" + a[diff + 1 :]


def simplify_cover(patterns: Iterable[str]) -> Tuple[str, ...]:
    """Iteratively merge adjacent cubes and drop contained ones.

    The result covers exactly the same minterms (merging and containment
    are both exact operations), it is just smaller — which directly
    shrinks the AIG built from it.
    """
    cover: List[str] = list(dict.fromkeys(patterns))  # dedupe, keep order
    changed = True
    while changed:
        changed = False
        # Adjacency merging.
        merged: List[str] = []
        used = [False] * len(cover)
        for i in range(len(cover)):
            if used[i]:
                continue
            for j in range(i + 1, len(cover)):
                if used[j]:
                    continue
                m = merge_cubes(cover[i], cover[j])
                if m is not None:
                    merged.append(m)
                    used[i] = used[j] = True
                    changed = True
                    break
            if not used[i]:
                merged.append(cover[i])
        cover = list(dict.fromkeys(merged))
        # Single-cube containment.
        kept: List[str] = []
        for i, cube in enumerate(cover):
            contained = any(
                k != i and cube_contains(cover[k], cube)
                and not (cover[k] == cube and k > i)
                for k in range(len(cover))
            )
            if contained:
                changed = True
            else:
                kept.append(cube)
        cover = kept
    return tuple(cover)


def cover_to_expr(patterns: Sequence[str], inputs: Sequence[str]) -> Expr:
    """OR-of-ANDs expression of a cover (constants for degenerate covers)."""
    if not patterns:
        return Const(False)
    terms: List[Expr] = []
    for pattern in patterns:
        literals: List[Expr] = []
        for char, name in zip(pattern, inputs):
            if char == "1":
                literals.append(Var(name))
            elif char == "0":
                literals.append(Not(Var(name)))
        if not literals:
            return Const(True)  # the universal cube covers everything
        terms.append(literals[0] if len(literals) == 1 else And(tuple(literals)))
    return terms[0] if len(terms) == 1 else Or(tuple(terms))
