"""Cut-based technology mapping onto the Table 2 library.

The classic DAG-covering flow (FlowMap/ABC style, area-oriented):

1. the logic network becomes a structurally hashed AIG (`aig.py`);
2. every AND node gets its k-feasible cuts (`cuts.py`);
3. each cut's cone function is matched against a **pattern index** of
   the library: every gate function is pre-expanded under all input
   permutations *and* input phase assignments, so a single dictionary
   lookup finds the gate, the pin permutation and which leaves must be
   complemented;
4. dynamic programming picks, per node and output phase, the cheapest
   implementation (gate match, or the other phase plus an inverter);
5. backtracking from the primary outputs instantiates library gates
   into a :class:`~repro.circuit.netlist.Circuit`.

Costs are transistor counts, so the mapper minimises area; inverters
bridge phase mismatches.  Matching both the function and its complement
guarantees every 2-leaf cut is realisable with ``nand2``/``inv``, hence
mapping always succeeds.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np

from ..circuit.logic import LogicNetwork
from ..circuit.netlist import Circuit, CircuitError
from ..gates.library import GateLibrary, GateTemplate, default_library
from .aig import AIG, aig_from_logic_network, lit_node, lit_phase
from .cuts import Cut, enumerate_cuts

__all__ = ["PatternIndex", "TechMapper", "map_circuit"]

_INF = float("inf")

#: Generic leaf variable names used for cut functions.
_LEAF_VARS = tuple(f"x{i}" for i in range(8))


@dataclass(frozen=True)
class _Match:
    """One library realisation of a cut function."""

    template: GateTemplate
    permutation: Tuple[int, ...]
    """``permutation[j]`` = index of the leaf feeding pin ``j``."""

    phases: Tuple[int, ...]
    """``phases[j]`` = 1 when pin ``j`` needs the complemented leaf."""


class PatternIndex:
    """Library gate functions expanded under permutation and phase.

    ``lookup(m, bits)`` returns the match for an ``m``-leaf function
    whose truth-table bits are ``bits`` (over leaf variables in order),
    or ``None``.  Built once per library (cached by the mapper).
    """

    def __init__(self, library: GateLibrary,
                 gate_names: Optional[Set[str]] = None):
        self.library = library
        self._tables: Dict[int, Dict[int, _Match]] = {}
        templates = sorted(
            (t for t in library if gate_names is None or t.name in gate_names),
            key=lambda t: (t.area, t.name),
        )
        for template in templates:
            self._index_template(template)

    def _index_template(self, template: GateTemplate) -> None:
        m = template.num_inputs
        table = self._tables.setdefault(m, {})
        f = template.function()
        size = 1 << m
        f_values = np.array(
            [(f.bits >> i) & 1 for i in range(size)], dtype=np.uint8
        )
        leaf_index = np.arange(size, dtype=np.uint32)
        leaf_bits = [((leaf_index >> j) & 1) for j in range(m)]
        for sigma in itertools.permutations(range(m)):
            for psi in range(1 << m):
                # Pin j reads leaf sigma[j], complemented when psi bit j set.
                pin_index = np.zeros(size, dtype=np.uint32)
                for j in range(m):
                    bit = leaf_bits[sigma[j]] ^ ((psi >> j) & 1)
                    pin_index |= bit.astype(np.uint32) << j
                values = f_values[pin_index]
                bits = int.from_bytes(
                    np.packbits(values, bitorder="little").tobytes(), "little"
                )
                if bits not in table:
                    table[bits] = _Match(
                        template,
                        tuple(sigma),
                        tuple((psi >> j) & 1 for j in range(m)),
                    )

    def lookup(self, num_leaves: int, bits: int) -> Optional[_Match]:
        return self._tables.get(num_leaves, {}).get(bits)

    def max_leaves(self) -> int:
        return max(self._tables) if self._tables else 0


_PATTERN_CACHE: Dict[tuple, PatternIndex] = {}


def _pattern_index(library: GateLibrary,
                   gate_names: Optional[Set[str]]) -> PatternIndex:
    key = (id(library), None if gate_names is None else tuple(sorted(gate_names)))
    index = _PATTERN_CACHE.get(key)
    if index is None:
        index = PatternIndex(library, gate_names)
        _PATTERN_CACHE[key] = index
    return index


# ----------------------------------------------------------------------
# Dynamic-programming cover
# ----------------------------------------------------------------------
class _Choice:
    """How one (node, phase) is implemented."""

    PI = "pi"
    INV = "inv"
    ALIAS = "alias"
    GATE = "gate"

    __slots__ = ("kind", "match", "leaves", "alias")

    def __init__(self, kind, match=None, leaves=None, alias=None):
        self.kind = kind
        self.match = match
        self.leaves = leaves
        self.alias = alias  # (leaf_node, leaf_phase)


class TechMapper:
    """Map logic networks onto a gate library."""

    def __init__(self, library: Optional[GateLibrary] = None, k: int = 6,
                 max_cuts: int = 16, gate_names: Optional[Set[str]] = None):
        self.library = library if library is not None else default_library()
        if "inv" not in self.library or "nand2" not in self.library:
            raise ValueError("mapping requires at least inv and nand2 in the library")
        if gate_names is not None:
            gate_names = set(gate_names) | {"inv", "nand2"}
        self.k = min(k, 6)
        self.max_cuts = max_cuts
        self.patterns = _pattern_index(self.library, gate_names)
        self._inv_area = self.library["inv"].area

    # ------------------------------------------------------------------
    def map(self, network: LogicNetwork, name: Optional[str] = None) -> Circuit:
        """Technology-map ``network`` into a library-gate circuit."""
        aig = aig_from_logic_network(network)
        cost, choice = self._cover(aig)
        circuit = self._instantiate(aig, network, cost, choice, name)
        circuit.validate()
        return circuit

    # ------------------------------------------------------------------
    def _cover(self, aig: AIG):
        cuts = enumerate_cuts(aig, self.k, self.max_cuts)
        cost: Dict[Tuple[int, int], float] = {}
        choice: Dict[Tuple[int, int], _Choice] = {}
        for node in range(1, aig.num_nodes):
            if aig.is_pi(node):
                cost[(node, 0)] = 0.0
                choice[(node, 0)] = _Choice(_Choice.PI)
                cost[(node, 1)] = self._inv_area
                choice[(node, 1)] = _Choice(_Choice.INV)
                continue
            direct: List[Tuple[float, Optional[_Choice]]] = [(_INF, None), (_INF, None)]
            for cut in cuts[node]:
                if node in cut or not cut:
                    continue
                self._match_cut(aig, node, cut, cost, direct)
            pos_cost, pos_choice = direct[0]
            neg_cost, neg_choice = direct[1]
            if pos_cost == _INF and neg_cost == _INF:
                raise CircuitError(
                    f"no library match for AIG node {node}: library too sparse"
                )
            # Phase bridging with an inverter.
            if neg_cost + self._inv_area < pos_cost:
                pos_cost, pos_choice = neg_cost + self._inv_area, _Choice(_Choice.INV)
            if pos_cost + self._inv_area < neg_cost:
                neg_cost, neg_choice = pos_cost + self._inv_area, _Choice(_Choice.INV)
            cost[(node, 0)], choice[(node, 0)] = pos_cost, pos_choice
            cost[(node, 1)], choice[(node, 1)] = neg_cost, neg_choice
        return cost, choice

    def _match_cut(self, aig: AIG, node: int, cut: Cut, cost, direct) -> None:
        variables = _LEAF_VARS[: len(cut)]
        tt = aig.cone_truthtable(node, cut, variables)
        support = tt.support()
        if len(support) == 0:
            return  # constant cone: handled by AIG folding upstream
        if len(support) < len(cut):
            keep = [i for i, v in enumerate(variables) if v in support]
            cut = tuple(cut[i] for i in keep)
            tt = tt.expand(tuple(variables[i] for i in keep))
            tt = tt.rename(dict(zip(tt.vars, _LEAF_VARS)))
        m = len(cut)
        if m == 1:
            leaf = cut[0]
            leaf_phase = 0 if tt.bits == 0b10 else 1
            for phase in (0, 1):
                alias_phase = leaf_phase ^ phase
                candidate = cost.get((leaf, alias_phase), _INF)
                if candidate < direct[phase][0]:
                    direct[phase] = (
                        candidate,
                        _Choice(_Choice.ALIAS, alias=(leaf, alias_phase)),
                    )
            return
        for phase, bits in ((0, tt.bits), (1, (~tt).bits)):
            match = self.patterns.lookup(m, bits)
            if match is None:
                continue
            total = match.template.area
            for j in range(m):
                total += cost.get((cut[match.permutation[j]], match.phases[j]), _INF)
                if total == _INF:
                    break
            if total < direct[phase][0]:
                direct[phase] = (total, _Choice(_Choice.GATE, match=match, leaves=cut))

    # ------------------------------------------------------------------
    def _instantiate(self, aig: AIG, network: LogicNetwork, cost, choice,
                     name: Optional[str]) -> Circuit:
        circuit = Circuit(name or network.name, self.library)
        for pi in network.inputs:
            circuit.add_input(pi)
        nets: Dict[Tuple[int, int], str] = {}
        counter = itertools.count()

        def fresh() -> str:
            return f"_m{next(counter)}"

        def realize(node: int, phase: int, forced: Optional[str] = None) -> str:
            key = (node, phase)
            if key in nets and forced is None:
                return nets[key]
            ch = choice[key]
            if ch.kind == _Choice.PI:
                net = aig.pi_name_of(node)
                nets.setdefault(key, net)
                return net
            if ch.kind == _Choice.ALIAS:
                net = realize(*ch.alias)
                nets.setdefault(key, net)
                return net
            if key in nets:  # forced duplicate of an existing realisation
                return nets[key]
            if ch.kind == _Choice.INV:
                source = realize(node, 1 - phase)
                net = forced or fresh()
                circuit.add_gate(f"g{len(circuit.gates)}", "inv",
                                 {"a": source}, net)
                nets[key] = net
                return net
            match, leaves = ch.match, ch.leaves
            pin_nets = {}
            for j, pin in enumerate(match.template.pins):
                leaf = leaves[match.permutation[j]]
                pin_nets[pin] = realize(leaf, match.phases[j])
            net = forced or fresh()
            circuit.add_gate(f"g{len(circuit.gates)}", match.template.name,
                             pin_nets, net)
            nets[key] = net
            return net

        for po_name, lit in aig.pos:
            node, phase = lit_node(lit), lit_phase(lit)
            if node == 0:
                raise CircuitError(
                    f"primary output {po_name!r} is constant; the Table 2 "
                    "library has no tie cells"
                )
            existing = nets.get((node, phase))
            if existing is None:
                net = realize(node, phase, forced=po_name)
                if net != po_name:
                    self._emit_copy(circuit, net, po_name)
            elif existing != po_name:
                self._emit_copy(circuit, existing, po_name)
            circuit.add_output(po_name)
        return circuit

    def _emit_copy(self, circuit: Circuit, source: str, target: str) -> None:
        """Create a net named ``target`` equal to ``source``.

        Duplicates the driving gate when there is one; primary inputs
        are buffered with a double inverter (the library has no buffer).
        """
        driver = circuit.driver(source)
        if driver is not None:
            circuit.add_gate(f"g{len(circuit.gates)}", driver.template.name,
                             dict(driver.pin_nets), target)
        else:
            middle = f"{target}_binv"
            circuit.add_gate(f"g{len(circuit.gates)}", "inv", {"a": source}, middle)
            circuit.add_gate(f"g{len(circuit.gates)}", "inv", {"a": middle}, target)


def map_circuit(network: LogicNetwork, library: Optional[GateLibrary] = None,
                k: int = 6, max_cuts: int = 16,
                gate_names: Optional[Set[str]] = None,
                name: Optional[str] = None) -> Circuit:
    """One-call technology mapping (see :class:`TechMapper`)."""
    return TechMapper(library, k, max_cuts, gate_names).map(network, name)
