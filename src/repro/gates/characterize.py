"""Library characterisation: per-configuration datasheets.

The paper's conclusion (a) suggests "current libraries may be upgraded
with more instances of the gates with different transistor reorderings,
so that an optimization algorithm can choose the best instance".  This
module produces exactly the data such an upgraded library would ship:
for every configuration of every cell, the internal-node capacitances,
the per-pin and worst-case Elmore delays at a reference load, and a
reference power figure under nominal input statistics — grouped by
layout instance (:mod:`repro.gates.instances`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..stochastic.signal import SignalStats
from .capacitance import TechParams, internal_node_capacitance
from .instances import GateInstanceClass, instance_partition
from .library import GateConfig, GateLibrary, GateTemplate

__all__ = [
    "ConfigCharacterization",
    "GateDatasheet",
    "characterize_gate",
    "characterize_library",
]

#: Reference input statistics for the nominal power figure.
_REFERENCE_STATS = SignalStats(0.5, 1.0e5)


@dataclass(frozen=True)
class ConfigCharacterization:
    """Electrical characterisation of one transistor ordering."""

    config: GateConfig
    instance_label: str
    internal_capacitances: Tuple[float, ...]
    """Sorted internal-node capacitances (F)."""

    pin_delays: Dict[str, float]
    """Worst-case pin-to-output Elmore delay (s) at the reference load."""

    worst_delay: float
    reference_power: float
    """Modelled power (W) under nominal stats (P = 0.5, D = 100 k/s)."""


@dataclass(frozen=True)
class GateDatasheet:
    """Full characterisation of one library cell."""

    template: GateTemplate
    instances: Tuple[GateInstanceClass, ...]
    configurations: Tuple[ConfigCharacterization, ...]

    @property
    def fastest(self) -> ConfigCharacterization:
        return min(self.configurations, key=lambda c: (c.worst_delay, c.config.key()))

    @property
    def lowest_power(self) -> ConfigCharacterization:
        return min(
            self.configurations, key=lambda c: (c.reference_power, c.config.key())
        )

    @property
    def power_spread(self) -> float:
        """Best-vs-worst reference-power spread (fraction of the worst)."""
        powers = [c.reference_power for c in self.configurations]
        worst = max(powers)
        return 1.0 - min(powers) / worst if worst > 0.0 else 0.0

    @property
    def speed_power_conflict(self) -> bool:
        """True when the fastest ordering is not the lowest-power one.

        This is the tension the paper highlights: the delay rule of
        thumb (critical transistor near the output) contradicts the
        low-power placement in general.
        """
        return self.fastest.config.key() != self.lowest_power.config.key()


def characterize_gate(template: GateTemplate,
                      tech: Optional[TechParams] = None,
                      load: float = 10.0e-15,
                      stats: Optional[Dict[str, SignalStats]] = None) -> GateDatasheet:
    """Characterise every configuration of one gate."""
    from ..core.power_model import GatePowerModel
    from ..timing.elmore import gate_pin_delay

    tech = tech if tech is not None else TechParams()
    model = GatePowerModel(tech)
    if stats is None:
        stats = {pin: _REFERENCE_STATS for pin in template.pins}
    instances = tuple(instance_partition(template))
    label_of: Dict[tuple, str] = {}
    for cls in instances:
        for config in cls.configurations:
            label_of[config.key()] = cls.label
    characterizations: List[ConfigCharacterization] = []
    for config in template.configurations():
        compiled = template.compile_config(config)
        caps = tuple(sorted(
            internal_node_capacitance(compiled, node, tech)
            for node in compiled.internal_nodes
        ))
        pin_delays = {
            pin: gate_pin_delay(compiled, config, pin, tech, load)
            for pin in template.pins
        }
        report = model.gate_power(compiled, stats, output_load=load)
        characterizations.append(
            ConfigCharacterization(
                config=config,
                instance_label=label_of[config.key()],
                internal_capacitances=caps,
                pin_delays=pin_delays,
                worst_delay=max(pin_delays.values()),
                reference_power=report.total,
            )
        )
    return GateDatasheet(template, instances, tuple(characterizations))


def characterize_library(library: GateLibrary,
                         tech: Optional[TechParams] = None,
                         load: float = 10.0e-15) -> List[GateDatasheet]:
    """Datasheets for the whole library."""
    return [characterize_gate(t, tech, load) for t in library]
