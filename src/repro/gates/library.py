"""The standard-cell library of the paper's Table 2.

Seventeen static CMOS gates (inverter, NANDs, NORs, AOIs, OAIs), each
described by its pull-down conduction expression over canonical pin
names ``a..f``.  All configurations of a gate have the same area — the
paper's observation that reordering is area-neutral — because they use
the same transistors.

:func:`default_library` builds the Table 2 library; per-configuration
compilation results are cached process-wide since every instance of a
gate shares them.
"""

from __future__ import annotations

import string
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..boolean.expr import Not, parse_expr
from ..boolean.truthtable import TruthTable
from . import sptree
from .network import CompiledGate, TransistorNetwork
from .sptree import SPTree

__all__ = ["GateConfig", "GateTemplate", "GateLibrary", "default_library", "TABLE2_GATES"]


@dataclass(frozen=True)
class GateConfig:
    """One transistor ordering of a gate: an ordered (PDN, PUN) tree pair."""

    pdn: SPTree
    pun: SPTree

    def key(self) -> tuple:
        """Hashable order-sensitive identity (memoised — hot-path lookup)."""
        cached = getattr(self, "_key", None)
        if cached is None:
            cached = (sptree._ordered_key(self.pdn),
                      sptree._ordered_key(self.pun))
            object.__setattr__(self, "_key", cached)
        return cached

    def __str__(self) -> str:
        return f"pdn={self.pdn} pun={self.pun}"


_COMPILE_CACHE: Dict[tuple, CompiledGate] = {}


def _compile_config(config: GateConfig, inputs: Tuple[str, ...]) -> CompiledGate:
    cache_key = (config.key(), inputs)
    compiled = _COMPILE_CACHE.get(cache_key)
    if compiled is None:
        compiled = CompiledGate(TransistorNetwork(config.pdn, config.pun, inputs))
        _COMPILE_CACHE[cache_key] = compiled
    return compiled


@dataclass(frozen=True)
class GateTemplate:
    """A library cell: logic function plus series-parallel topology."""

    name: str
    pdn_expr: str
    pins: Tuple[str, ...] = ()

    def __post_init__(self):
        pdn = sptree.canonical(sptree.from_expr(parse_expr(self.pdn_expr)))
        signals = sptree.leaves(pdn)
        if len(set(signals)) != len(signals):
            raise ValueError(f"{self.name}: repeated input signal in PDN {pdn}")
        pins = self.pins or tuple(sorted(set(signals)))
        if set(pins) != set(signals):
            raise ValueError(f"{self.name}: pins {pins} do not match PDN signals")
        object.__setattr__(self, "pins", pins)
        object.__setattr__(self, "_pdn", pdn)

    # ------------------------------------------------------------------
    @property
    def pdn(self) -> SPTree:
        """Canonical pull-down SP tree."""
        return self._pdn  # type: ignore[attr-defined]

    @property
    def num_inputs(self) -> int:
        return len(self.pins)

    @property
    def num_transistors(self) -> int:
        """Total device count (N plus P)."""
        return 2 * sptree.transistor_count(self.pdn)

    @property
    def area(self) -> float:
        """Area proxy: the transistor count (identical across configurations)."""
        return float(self.num_transistors)

    def function(self) -> TruthTable:
        """Logic function of the output (complement of the PDN conduction)."""
        return Not(sptree.to_expr(self.pdn, "n")).to_truthtable(self.pins)

    def default_config(self) -> GateConfig:
        """The as-mapped configuration: canonical PDN and its dual PUN."""
        return GateConfig(self.pdn, sptree.dual(self.pdn))

    def num_configurations(self) -> int:
        """Table 2's #C column: distinct orderings of PDN × PUN."""
        return sptree.num_orderings(self.pdn) * sptree.num_orderings(sptree.dual(self.pdn))

    def configurations(self) -> List[GateConfig]:
        """Every distinct transistor ordering (brute-force enumeration)."""
        pdns = list(sptree.enumerate_orderings(self.pdn))
        puns = list(sptree.enumerate_orderings(sptree.dual(self.pdn)))
        return [GateConfig(p, q) for p in pdns for q in puns]

    def compile_config(self, config: Optional[GateConfig] = None) -> CompiledGate:
        """Compile (with caching) a configuration of this gate."""
        if config is None:
            config = self.default_config()
        return _compile_config(config, self.pins)

    def __str__(self) -> str:
        return f"{self.name}({', '.join(self.pins)})"


class GateLibrary:
    """A named collection of gate templates with function lookup for mapping."""

    def __init__(self, templates: Sequence[GateTemplate] = ()):
        self._templates: Dict[str, GateTemplate] = {}
        for t in templates:
            self.add(t)

    def add(self, template: GateTemplate) -> None:
        if template.name in self._templates:
            raise ValueError(f"duplicate gate name {template.name!r}")
        self._templates[template.name] = template

    def __getitem__(self, name: str) -> GateTemplate:
        template = self._templates.get(name)
        if template is None:
            # Deferred import: circuit.netlist imports this module, so
            # the error type cannot be imported at module level.
            from ..circuit.netlist import CircuitError

            raise CircuitError(
                f"unknown template {name!r}; available: "
                f"{', '.join(self._templates)}"
            )
        return template

    def __contains__(self, name: str) -> bool:
        return name in self._templates

    def __iter__(self) -> Iterator[GateTemplate]:
        return iter(self._templates.values())

    def __len__(self) -> int:
        return len(self._templates)

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(self._templates)

    def max_inputs(self) -> int:
        return max(t.num_inputs for t in self)

    def configuration_table(self) -> List[Tuple[str, int]]:
        """(gate, #configurations) rows — regenerates the paper's Table 2."""
        return [(t.name, t.num_configurations()) for t in self]


def _pins(n: int) -> Tuple[str, ...]:
    return tuple(string.ascii_lowercase[:n])


#: name -> (pull-down expression, pin tuple); the paper's Table 2 plus the
#: nand4/nor2 companions needed for a complete 1–4 input NAND/NOR family.
TABLE2_GATES: Dict[str, Tuple[str, Tuple[str, ...]]] = {
    "inv": ("a", _pins(1)),
    "nand2": ("a & b", _pins(2)),
    "nand3": ("a & b & c", _pins(3)),
    "nand4": ("a & b & c & d", _pins(4)),
    "nor2": ("a | b", _pins(2)),
    "nor3": ("a | b | c", _pins(3)),
    "nor4": ("a | b | c | d", _pins(4)),
    "aoi21": ("(a & b) | c", _pins(3)),
    "aoi22": ("(a & b) | (c & d)", _pins(4)),
    "aoi211": ("(a & b) | c | d", _pins(4)),
    "aoi221": ("(a & b) | (c & d) | e", _pins(5)),
    "aoi222": ("(a & b) | (c & d) | (e & f)", _pins(6)),
    "oai21": ("(a | b) & c", _pins(3)),
    "oai22": ("(a | b) & (c | d)", _pins(4)),
    "oai211": ("(a | b) & c & d", _pins(4)),
    "oai221": ("(a | b) & (c | d) & e", _pins(5)),
    "oai222": ("(a | b) & (c | d) & (e | f)", _pins(6)),
}


def default_library() -> GateLibrary:
    """The Table 2 gate library used throughout the reproduction."""
    return GateLibrary(
        [GateTemplate(name, expr, pins) for name, (expr, pins) in TABLE2_GATES.items()]
    )
