"""Structural capacitance model and technology parameters.

The paper extracts node capacitances from the Sea-of-Gates layout of
every library cell.  Without layouts we estimate them structurally
(documented as a substitution in DESIGN.md §3.5):

* every transistor source/drain terminal touching a node contributes
  one diffusion capacitance ``c_diff``;
* every transistor *gate* terminal a net drives contributes ``c_gate``
  (a library-cell input pin is one N plus one P device per occurrence);
* every output net carries a fixed wiring term ``c_wire``.

Defaults are loosely based on a mid-90s 0.8 µm process and — more
importantly for reproducing the paper's *relative* results — put
internal-node power in the 20–40 % range of total gate power, the
regime in which transistor reordering buys the reported ~12 %.
"""

from __future__ import annotations

from dataclasses import dataclass

from .network import CompiledGate, TransistorNetwork

__all__ = [
    "TechParams",
    "pin_capacitance",
    "pin_terminal_counts",
    "net_load",
    "internal_node_capacitance",
    "output_intrinsic_capacitance",
]


@dataclass(frozen=True)
class TechParams:
    """Process/electrical parameters shared by the model, simulator and STA."""

    vdd: float = 3.3
    """Supply voltage (V)."""

    c_diff: float = 2.0e-15
    """Diffusion capacitance per transistor source/drain terminal (F)."""

    c_gate: float = 2.5e-15
    """Gate capacitance per transistor gate terminal (F)."""

    c_wire: float = 4.0e-15
    """Fixed wiring capacitance per output net (F)."""

    r_n: float = 8.0e3
    """On-resistance of one N transistor (ohm)."""

    r_p: float = 12.0e3
    """On-resistance of one P transistor (ohm)."""

    def __post_init__(self):
        for field in ("vdd", "c_diff", "c_gate", "c_wire", "r_n", "r_p"):
            if getattr(self, field) <= 0.0:
                raise ValueError(f"{field} must be positive")

    @property
    def switch_energy_factor(self) -> float:
        """``0.5 * Vdd**2`` — energy per farad per node transition (J/F)."""
        return 0.5 * self.vdd * self.vdd


def pin_terminal_counts(gate: CompiledGate) -> dict:
    """Transistor gate-terminal count per pin, computed once per compiled gate.

    Configuration-independent (every ordering uses the same devices);
    cached on the compiled gate because the load summations below run
    it per sink pin on every hot-path load query, and the flat-circuit
    lowering (:mod:`repro.compiled`) reads the whole table at once.
    """
    counts = getattr(gate, "_pin_terminal_counts", None)
    if counts is None:
        counts = {}
        for t in gate.network.transistors:
            counts[t.signal] = counts.get(t.signal, 0) + 1
        gate._pin_terminal_counts = counts
    return counts


def pin_capacitance(gate: CompiledGate, pin: str, tech: TechParams) -> float:
    """Input capacitance presented by one pin of a gate configuration.

    Counts the transistor gate terminals driven by the pin across both
    networks (one N and one P device for ordinary library gates).
    """
    count = pin_terminal_counts(gate).get(pin, 0)
    if count == 0:
        raise KeyError(f"gate has no pin {pin!r}")
    return count * tech.c_gate


def net_load(sinks, is_output: bool, tech: TechParams,
             po_load: float) -> float:
    """External capacitance on a net from its ``(gate, pin)`` sinks.

    The **single** implementation of the load summation every consumer
    shares — :meth:`repro.circuit.netlist.Circuit.output_load`, the
    batch STA and both incremental caches — so they add the same
    floats in the same order (their bit-identity contracts depend on
    it).  ``sinks`` iterates ``(gate_instance, pin_name)`` pairs; both
    :meth:`Circuit.fanout` and :meth:`FanoutIndex.sinks` produce them
    in gate-creation-then-pin order.
    """
    load = sum(
        pin_capacitance(gate.compiled(), pin, tech) for gate, pin in sinks
    )
    if is_output:
        load += po_load
    return load


def internal_node_capacitance(gate: CompiledGate, node: str, tech: TechParams) -> float:
    """Capacitance of an internal diffusion node (terminals × ``c_diff``)."""
    if node not in gate.internal_nodes:
        raise KeyError(f"{node!r} is not an internal node")
    return gate.terminal_counts[node] * tech.c_diff


def output_intrinsic_capacitance(gate: CompiledGate, tech: TechParams) -> float:
    """Output-node capacitance excluding the external load.

    The external load (fanout pins, primary-output load) is a property
    of the netlist, added by the circuit-level power model.
    """
    from .network import OUT

    return gate.terminal_counts[OUT] * tech.c_diff + tech.c_wire


def node_capacitance(gate: CompiledGate, node: str, tech: TechParams,
                     load: float = 0.0) -> float:
    """Capacitance of any gate node; ``load`` applies to the output only."""
    from .network import OUT

    if node == OUT:
        return output_intrinsic_capacitance(gate, tech) + load
    return internal_node_capacitance(gate, node, tech)
