"""Gate-level substrates: SP trees, transistor networks, capacitance, library."""

from .capacitance import TechParams
from .characterize import characterize_gate, characterize_library
from .instances import GateInstanceClass, instance_partition, instance_table
from .library import GateConfig, GateLibrary, GateTemplate, default_library
from .network import CompiledGate, Transistor, TransistorNetwork, compile_gate
from .sptree import Leaf, Parallel, Series, SPTree

__all__ = [
    "TechParams",
    "GateConfig",
    "GateLibrary",
    "GateTemplate",
    "default_library",
    "CompiledGate",
    "Transistor",
    "TransistorNetwork",
    "compile_gate",
    "Leaf",
    "Parallel",
    "Series",
    "SPTree",
    "instance_partition",
    "instance_table",
    "GateInstanceClass",
    "characterize_gate",
    "characterize_library",
]
