"""Transistor-network graph of a static CMOS gate (paper Figure 2a).

A gate is a graph ``(V, E)`` whose vertices are the power rails
(``vdd``, ``vss``), the output node ``y`` and the internal diffusion
nodes, and whose edges are transistors.  The graph retains the
transistor-order information of a configuration: it is built from an
ordered pull-down SP tree and an ordered pull-up SP tree.

For every node ``n_k`` the paper needs two Boolean functions of the
gate inputs:

* ``H_nk`` — all conducting paths from ``n_k`` to ``vdd``;
* ``G_nk`` — all conducting paths from ``n_k`` to ``vss``.

They are extracted by depth-first enumeration of simple paths (the
paper's CALCULATE_H_FUNCTION), with an N transistor contributing the
literal ``x`` and a P transistor the literal ``!x``; contradictory
paths (containing both ``x`` and ``!x``) vanish in the truth-table
conjunction automatically.  ``H`` and ``G`` are complementary exactly
at the output node — the paper's footnote 2 — which is asserted here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..boolean.truthtable import TruthTable
from . import sptree
from .sptree import Leaf, Parallel, Series, SPTree

__all__ = ["Transistor", "TransistorNetwork", "CompiledGate", "compile_gate"]

VDD = "vdd"
VSS = "vss"
OUT = "y"


@dataclass(frozen=True)
class Transistor:
    """One transistor: an edge between ``node_a`` and ``node_b``.

    ``ttype`` is ``'n'`` (conducts when ``signal`` is 1) or ``'p'``
    (conducts when ``signal`` is 0).
    """

    signal: str
    ttype: str
    node_a: str
    node_b: str

    def conducts(self, value: bool) -> bool:
        """Whether the channel conducts for the given gate-signal value."""
        return value if self.ttype == "n" else not value

    def literal(self, variables: Sequence[str]) -> TruthTable:
        """Conduction condition as a truth table over ``variables``."""
        var = TruthTable.variable(variables, self.signal)
        return var if self.ttype == "n" else ~var


class TransistorNetwork:
    """The full transistor graph of one gate configuration."""

    def __init__(self, pdn: SPTree, pun: Optional[SPTree] = None,
                 inputs: Optional[Sequence[str]] = None):
        """Build the graph from an ordered PDN tree and optional PUN tree.

        ``pun`` defaults to the structural dual of ``pdn`` (the unique
        complementary static CMOS pull-up).  ``inputs`` fixes the pin
        order used for all truth tables; it defaults to first-appearance
        order in the PDN.
        """
        self.pdn = sptree.normalize(pdn)
        self.pun = sptree.normalize(pun) if pun is not None else sptree.dual(self.pdn)
        pdn_signals = set(sptree.leaves(self.pdn))
        pun_signals = set(sptree.leaves(self.pun))
        if pdn_signals != pun_signals:
            raise ValueError(
                f"PDN/PUN input mismatch: {sorted(pdn_signals)} vs {sorted(pun_signals)}"
            )
        if inputs is None:
            seen: List[str] = []
            for s in sptree.leaves(self.pdn):
                if s not in seen:
                    seen.append(s)
            inputs = seen
        self.inputs: Tuple[str, ...] = tuple(inputs)
        if set(self.inputs) != pdn_signals:
            raise ValueError(f"inputs {self.inputs} do not match PDN signals {sorted(pdn_signals)}")

        self.transistors: List[Transistor] = []
        self._counter = 0
        # PDN hangs between the output and ground; series children are
        # laid out from the output side towards the rail.
        self._build(self.pdn, OUT, VSS, "n")
        # PUN between supply and output; series children from vdd down.
        self._build(self.pun, VDD, OUT, "p")

        self._adjacency: Dict[str, List[Tuple[str, Transistor]]] = {}
        for t in self.transistors:
            self._adjacency.setdefault(t.node_a, []).append((t.node_b, t))
            self._adjacency.setdefault(t.node_b, []).append((t.node_a, t))
        internal = [n for n in self._adjacency if n not in (VDD, VSS, OUT)]
        self.internal_nodes: Tuple[str, ...] = tuple(sorted(internal))
        # Sanity: output H/G must be complementary (footnote 2 of the paper).
        h_out = self.h_function(OUT)
        g_out = self.g_function(OUT)
        if (h_out ^ g_out) != TruthTable.constant(self.inputs, True):
            raise ValueError("PUN is not the complement of the PDN: not a static CMOS gate")

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _fresh_node(self) -> str:
        name = f"n{self._counter}"
        self._counter += 1
        return name

    def _build(self, tree: SPTree, top: str, bottom: str, ttype: str) -> None:
        if isinstance(tree, Leaf):
            self.transistors.append(Transistor(tree.signal, ttype, top, bottom))
            return
        if isinstance(tree, Series):
            nodes = [top]
            for _ in range(len(tree.children) - 1):
                nodes.append(self._fresh_node())
            nodes.append(bottom)
            for child, a, b in zip(tree.children, nodes, nodes[1:]):
                self._build(child, a, b, ttype)
            return
        if isinstance(tree, Parallel):
            for child in tree.children:
                self._build(child, top, bottom, ttype)
            return
        raise TypeError(f"not an SP tree node: {tree!r}")

    # ------------------------------------------------------------------
    # Topology queries
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> Tuple[str, ...]:
        """All power-consuming nodes: internal nodes then the output."""
        return self.internal_nodes + (OUT,)

    def terminal_count(self, node: str) -> int:
        """Number of transistor source/drain terminals touching ``node``."""
        return len(self._adjacency.get(node, ()))

    def transistor_between(self, node_a: str, node_b: str) -> Tuple[Transistor, ...]:
        return tuple(t for other, t in self._adjacency.get(node_a, ()) if other == node_b)

    def configuration_key(self) -> tuple:
        """Hashable identity of this configuration (order-sensitive)."""
        return (sptree._ordered_key(self.pdn), sptree._ordered_key(self.pun))

    # ------------------------------------------------------------------
    # Path functions
    # ------------------------------------------------------------------
    def path_function(self, node: str, rail: str) -> TruthTable:
        """OR over all simple paths ``node -> rail`` of their conduction terms.

        Paths never pass *through* a rail (a rail is an endpoint, not a
        via) and never revisit a node — the paper's depth-first search.
        """
        if rail not in (VDD, VSS):
            raise ValueError(f"rail must be vdd or vss, got {rail!r}")
        if node == rail:
            return TruthTable.constant(self.inputs, True)
        other_rail = VSS if rail == VDD else VDD
        result = TruthTable.constant(self.inputs, False)
        true_tt = TruthTable.constant(self.inputs, True)
        visited = {node}

        def dfs(current: str, term: TruthTable) -> None:
            nonlocal result
            for neighbour, transistor in self._adjacency.get(current, ()):
                if neighbour == other_rail or neighbour in visited:
                    continue
                new_term = term & transistor.literal(self.inputs)
                if new_term.bits == 0:
                    continue
                if neighbour == rail:
                    result = result | new_term
                    continue
                visited.add(neighbour)
                dfs(neighbour, new_term)
                visited.remove(neighbour)

        dfs(node, true_tt)
        return result

    def h_function(self, node: str) -> TruthTable:
        """``H_nk``: condition for a conducting path from ``node`` to vdd."""
        return self.path_function(node, VDD)

    def g_function(self, node: str) -> TruthTable:
        """``G_nk``: condition for a conducting path from ``node`` to vss."""
        return self.path_function(node, VSS)

    def output_function(self) -> TruthTable:
        """The gate's logic function ``y = H_y`` (complement of the PDN)."""
        return self.h_function(OUT)

    def __repr__(self) -> str:
        return f"TransistorNetwork(pdn={self.pdn}, pun={self.pun})"


class CompiledGate:
    """Precompiled per-configuration data shared by the model and simulator.

    Holds, for every node of one gate configuration: the ``H``/``G``
    truth tables (also as raw bit masks for fast simulation), the
    Boolean differences with respect to every input, and the diffusion
    terminal counts for the capacitance model.
    """

    def __init__(self, network: TransistorNetwork):
        self.network = network
        self.inputs = network.inputs
        self.nodes = network.nodes
        self.h: Dict[str, TruthTable] = {}
        self.g: Dict[str, TruthTable] = {}
        self.dh: Dict[Tuple[str, str], TruthTable] = {}
        self.dg: Dict[Tuple[str, str], TruthTable] = {}
        for node in self.nodes:
            h = network.h_function(node)
            g = network.g_function(node)
            self.h[node] = h
            self.g[node] = g
            for x in self.inputs:
                self.dh[(node, x)] = h.boolean_difference(x)
                self.dg[(node, x)] = g.boolean_difference(x)
        self.output_tt = self.h[OUT]
        self.h_bits: Dict[str, int] = {n: self.h[n].bits for n in self.nodes}
        self.g_bits: Dict[str, int] = {n: self.g[n].bits for n in self.nodes}
        self.terminal_counts: Dict[str, int] = {
            n: network.terminal_count(n) for n in self.nodes
        }

    @property
    def internal_nodes(self) -> Tuple[str, ...]:
        return self.network.internal_nodes

    def evaluate_nodes(self, minterm: int, previous: Mapping[str, int]) -> Dict[str, int]:
        """Steady node states for an input minterm, given retained values.

        A node is 1 when driven high, 0 when driven low, and keeps its
        previous value when isolated (charge sharing ignored, as in the
        paper).  Drive conflicts cannot occur in complementary gates and
        are asserted against.
        """
        states: Dict[str, int] = {}
        for node in self.nodes:
            driven_high = (self.h_bits[node] >> minterm) & 1
            driven_low = (self.g_bits[node] >> minterm) & 1
            if driven_high and driven_low:
                raise AssertionError(
                    f"node {node} shorted for minterm {minterm} — not series-parallel CMOS"
                )
            if driven_high:
                states[node] = 1
            elif driven_low:
                states[node] = 0
            else:
                states[node] = previous[node]
        return states

    def minterm_of(self, values: Mapping[str, bool]) -> int:
        """Pack input pin values into a minterm index for this gate."""
        i = 0
        for j, pin in enumerate(self.inputs):
            if values[pin]:
                i |= 1 << j
        return i


def compile_gate(pdn: SPTree, pun: Optional[SPTree] = None,
                 inputs: Optional[Sequence[str]] = None) -> CompiledGate:
    """Convenience wrapper: build the network and precompile it."""
    return CompiledGate(TransistorNetwork(pdn, pun, inputs))
