"""Gate *instances*: grouping configurations by physical layout shape.

The paper's Table 2 lists some gates with several **instances** — e.g.
``oai21[A]`` implements configurations (A) and (B) of its Figure 1,
``oai21[B]`` configurations (C) and (D).  Two configurations belong to
the same instance when one is obtained from the other purely by
*input reordering* (re-labelling which signal drives which transistor);
they then share a physical layout.  Configurations in different
instances have structurally different transistor arrangements and need
distinct layouts, so the library must carry one cell per instance for
the optimiser to choose from (the paper's conclusion (a): "current
libraries may be upgraded with more instances of the gates").

The grouping key is the *unlabelled* ordered topology of the (PDN, PUN)
pair: erase the input names, keep series order.  Examples:

* ``oai21``: PDN ``[(a|b) c]`` vs ``[c (a|b)]`` differ structurally ->
  2 instances x 2 input reorderings = the 4 configurations;
* ``nand3``: all six orderings of ``[a b c]`` share one unlabelled
  shape -> a single instance whose 6 configurations are pure input
  permutations;
* ``aoi221``: the PUN series ``(P2, P2, leaf)`` can be arranged with
  the lone transistor at the top, middle or bottom -> 3 instances,
  matching the paper's ``aoi221[A,B,C]``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from .library import GateConfig, GateLibrary, GateTemplate
from .sptree import Leaf, Parallel, Series, SPTree

__all__ = ["unlabelled_key", "GateInstanceClass", "instance_partition", "instance_table"]


def unlabelled_key(tree: SPTree) -> tuple:
    """Structural key with input names erased.

    Series order is preserved (it is the physical stacking order);
    parallel children are sorted so branch listing order — which has no
    electrical or layout meaning — does not split classes.
    """
    if isinstance(tree, Leaf):
        return ("l",)
    if isinstance(tree, Series):
        return ("s",) + tuple(unlabelled_key(c) for c in tree.children)
    keys = sorted(unlabelled_key(c) for c in tree.children)
    return ("p",) + tuple(keys)


@dataclass(frozen=True)
class GateInstanceClass:
    """One physical layout of a gate and the configurations it realises."""

    template_name: str
    label: str
    shape: tuple
    configurations: Tuple[GateConfig, ...]

    @property
    def name(self) -> str:
        """Paper-style instance name, e.g. ``oai21[A]``."""
        return f"{self.template_name}[{self.label}]"

    @property
    def num_input_reorderings(self) -> int:
        return len(self.configurations)


def instance_partition(template: GateTemplate) -> List[GateInstanceClass]:
    """Partition a gate's configurations into layout instances.

    Instances are labelled ``A``, ``B``, ... in the (deterministic)
    order their shape first appears in the enumeration, mirroring the
    paper's ``gate[A]``/``gate[B]`` notation.
    """
    groups: Dict[tuple, List[GateConfig]] = {}
    order: List[tuple] = []
    for config in template.configurations():
        shape = (unlabelled_key(config.pdn), unlabelled_key(config.pun))
        if shape not in groups:
            groups[shape] = []
            order.append(shape)
        groups[shape].append(config)
    classes = []
    for index, shape in enumerate(order):
        label = _label(index)
        classes.append(
            GateInstanceClass(template.name, label, shape, tuple(groups[shape]))
        )
    return classes


def _label(index: int) -> str:
    letters = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
    label = ""
    index += 1
    while index > 0:
        index, rem = divmod(index - 1, 26)
        label = letters[rem] + label
    return label


def instance_table(library: GateLibrary) -> List[Tuple[str, int, int]]:
    """(gate, #instances, #configurations) rows — Table 2 with instances.

    A gate with one instance realises all its configurations by input
    reordering alone; gates with several need extra library cells.
    """
    rows = []
    for template in library:
        classes = instance_partition(template)
        rows.append((template.name, len(classes), template.num_configurations()))
    return rows
