"""Series-parallel transistor topology trees.

A static CMOS library gate is described by the series-parallel (SP)
structure of its pull-down network (PDN); the pull-up network (PUN) is
the structural *dual* (series <-> parallel) with the same input signals
driving P-type devices.  An SP tree here is one of:

* :class:`Leaf` — one transistor, gated by a named input signal;
* :class:`Series` — two or more sub-networks stacked in series;
* :class:`Parallel` — two or more sub-networks side by side.

The *order* of children matters electrically only for :class:`Series`
nodes (parallel branches join the same two electrical nodes).  The
distinct transistor orderings of a network are therefore exactly the
recursive permutations of series children — which this module
enumerates — while parallel children are kept sorted by a canonical key
so that equivalent configurations compare equal.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Iterator, List, Tuple, Union

from ..boolean.expr import And, Expr, Not, Or, Var

__all__ = [
    "Leaf",
    "Series",
    "Parallel",
    "SPTree",
    "normalize",
    "canonical",
    "canonical_key",
    "dual",
    "leaves",
    "transistor_count",
    "from_expr",
    "to_expr",
    "num_orderings",
    "enumerate_orderings",
    "series_gaps",
    "swap_gap",
    "relabel",
]


@dataclass(frozen=True)
class Leaf:
    """A single transistor gated by input ``signal``."""

    signal: str

    def __str__(self) -> str:
        return self.signal


@dataclass(frozen=True)
class Series:
    """Two or more sub-networks in series (order is electrically meaningful)."""

    children: Tuple["SPTree", ...]

    def __post_init__(self):
        if len(self.children) < 2:
            raise ValueError("Series needs at least two children")

    def __str__(self) -> str:
        return "[" + " ".join(str(c) for c in self.children) + "]"


@dataclass(frozen=True)
class Parallel:
    """Two or more sub-networks in parallel (order is immaterial)."""

    children: Tuple["SPTree", ...]

    def __post_init__(self):
        if len(self.children) < 2:
            raise ValueError("Parallel needs at least two children")

    def __str__(self) -> str:
        return "(" + " | ".join(str(c) for c in self.children) + ")"


SPTree = Union[Leaf, Series, Parallel]


# ----------------------------------------------------------------------
# Normalisation and canonical form
# ----------------------------------------------------------------------
def normalize(tree: SPTree) -> SPTree:
    """Flatten nested same-type compositions (series-of-series etc.)."""
    if isinstance(tree, Leaf):
        return tree
    kind = type(tree)
    flat: List[SPTree] = []
    for child in tree.children:
        child = normalize(child)
        if isinstance(child, kind):
            flat.extend(child.children)
        else:
            flat.append(child)
    if len(flat) == 1:
        return flat[0]
    return kind(tuple(flat))


def canonical_key(tree: SPTree) -> tuple:
    """A hashable structural key; parallel children are order-insensitive."""
    if isinstance(tree, Leaf):
        return ("l", tree.signal)
    if isinstance(tree, Series):
        return ("s",) + tuple(canonical_key(c) for c in tree.children)
    keys = sorted(canonical_key(c) for c in tree.children)
    return ("p",) + tuple(keys)


def canonical(tree: SPTree) -> SPTree:
    """Normalise and sort parallel children into a canonical representative."""
    tree = normalize(tree)
    if isinstance(tree, Leaf):
        return tree
    children = tuple(canonical(c) for c in tree.children)
    if isinstance(tree, Parallel):
        children = tuple(sorted(children, key=canonical_key))
    return type(tree)(children)


def dual(tree: SPTree) -> SPTree:
    """Structural dual: series <-> parallel, leaves unchanged.

    The PUN of a static CMOS gate is ``dual(pdn)`` realised with P-type
    transistors (which conduct on logic 0), so the gate output is the
    complement of the PDN conduction function.
    """
    if isinstance(tree, Leaf):
        return tree
    children = tuple(dual(c) for c in tree.children)
    return Parallel(children) if isinstance(tree, Series) else Series(children)


def leaves(tree: SPTree) -> Tuple[str, ...]:
    """Input signal names in left-to-right leaf order (duplicates possible)."""
    if isinstance(tree, Leaf):
        return (tree.signal,)
    return tuple(s for c in tree.children for s in leaves(c))


def transistor_count(tree: SPTree) -> int:
    """Number of transistors (= leaves) in the network."""
    return len(leaves(tree))


def relabel(tree: SPTree, mapping) -> SPTree:
    """Rename leaf signals through ``mapping`` (dict or callable)."""
    fn = mapping.get if hasattr(mapping, "get") else mapping
    if isinstance(tree, Leaf):
        new = fn(tree.signal) if not hasattr(mapping, "get") else mapping.get(tree.signal, tree.signal)
        return Leaf(new)
    return type(tree)(tuple(relabel(c, mapping) for c in tree.children))


# ----------------------------------------------------------------------
# Expression conversion
# ----------------------------------------------------------------------
def from_expr(expr: Expr) -> SPTree:
    """Build the PDN SP tree of a gate whose pull-down function is ``expr``.

    ``expr`` must be an AND/OR combination of positive variables (the
    conduction function of an N-transistor network): AND becomes series,
    OR becomes parallel.
    """
    if isinstance(expr, Var):
        return Leaf(expr.name)
    if isinstance(expr, And):
        return normalize(Series(tuple(from_expr(op) for op in expr.operands)))
    if isinstance(expr, Or):
        return normalize(Parallel(tuple(from_expr(op) for op in expr.operands)))
    raise ValueError(f"not a series-parallel positive AND/OR expression: {expr!r}")


def to_expr(tree: SPTree, polarity: str = "n") -> Expr:
    """Conduction function of the network as an expression.

    ``polarity='n'`` gives the PDN conduction function (leaf conducts
    when its signal is 1); ``polarity='p'`` the PUN one (leaf conducts
    when its signal is 0, i.e. literals are complemented).
    """
    if polarity not in ("n", "p"):
        raise ValueError("polarity must be 'n' or 'p'")
    if isinstance(tree, Leaf):
        var: Expr = Var(tree.signal)
        return Not(var) if polarity == "p" else var
    parts = tuple(to_expr(c, polarity) for c in tree.children)
    return And(parts) if isinstance(tree, Series) else Or(parts)


# ----------------------------------------------------------------------
# Ordering enumeration
# ----------------------------------------------------------------------
def num_orderings(tree: SPTree) -> int:
    """Number of distinct transistor orderings: product of series-arity factorials.

    Repeated identical children of a series node (e.g. two transistors
    driven by the same signal) would make some permutations coincide;
    library gates never repeat a signal, and :func:`enumerate_orderings`
    deduplicates regardless.
    """
    if isinstance(tree, Leaf):
        return 1
    count = 1
    for child in tree.children:
        count *= num_orderings(child)
    if isinstance(tree, Series):
        count *= math.factorial(len(tree.children))
    return count


def enumerate_orderings(tree: SPTree) -> Iterator[SPTree]:
    """Yield every distinct ordering of the network, canonicalised.

    Series children are permuted recursively; parallel children are
    enumerated recursively but kept canonically sorted.  Duplicates
    (possible with repeated sub-structures) are suppressed.
    """
    seen = set()
    for variant in _orderings(canonical(tree)):
        key = _ordered_key(variant)
        if key not in seen:
            seen.add(key)
            yield variant


def _orderings(tree: SPTree) -> Iterator[SPTree]:
    if isinstance(tree, Leaf):
        yield tree
        return
    child_variant_lists = [list(_orderings(c)) for c in tree.children]
    if isinstance(tree, Series):
        for combo in itertools.product(*child_variant_lists):
            for perm in itertools.permutations(combo):
                yield Series(tuple(perm))
    else:
        for combo in itertools.product(*child_variant_lists):
            yield Parallel(tuple(sorted(combo, key=_ordered_key)))


def _ordered_key(tree: SPTree) -> tuple:
    """Configuration identity: series order matters, parallel order does not.

    Two networks whose only difference is the listing order of parallel
    branches are electrically identical (the branches join the same two
    nodes), so this is :func:`canonical_key`.
    """
    return canonical_key(tree)


# ----------------------------------------------------------------------
# Internal-node pivoting support (paper Figure 4)
# ----------------------------------------------------------------------
def series_gaps(tree: SPTree) -> List[Tuple[Tuple[int, ...], int]]:
    """All internal electrical nodes of the network, as pivot handles.

    Every gap between consecutive children of a series composition is an
    internal node of the transistor network.  A handle is ``(path, gap)``
    where ``path`` indexes child positions from the root down to the
    series node and ``gap`` is the junction between its children ``gap``
    and ``gap + 1``.
    """
    handles: List[Tuple[Tuple[int, ...], int]] = []

    def walk(node: SPTree, path: Tuple[int, ...]) -> None:
        if isinstance(node, Leaf):
            return
        if isinstance(node, Series):
            for gap in range(len(node.children) - 1):
                handles.append((path, gap))
        for i, child in enumerate(node.children):
            walk(child, path + (i,))

    walk(tree, ())
    return handles


def swap_gap(tree: SPTree, path: Tuple[int, ...], gap: int) -> SPTree:
    """Pivot on an internal node: transpose the two series blocks adjacent to it."""
    if not path:
        if not isinstance(tree, Series):
            raise ValueError("pivot path does not address a series node")
        children = list(tree.children)
        if not 0 <= gap < len(children) - 1:
            raise ValueError(f"gap {gap} out of range for arity {len(children)}")
        children[gap], children[gap + 1] = children[gap + 1], children[gap]
        return Series(tuple(children))
    if isinstance(tree, Leaf):
        raise ValueError("pivot path descends into a leaf")
    i = path[0]
    children = list(tree.children)
    children[i] = swap_gap(children[i], path[1:], gap)
    return type(tree)(tuple(children))
