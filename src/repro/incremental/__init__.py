"""Incremental (P, D) maintenance under circuit edits.

The third engine-level subsystem (after the analytic propagation in
:mod:`repro.stochastic` and the bit-parallel sampler in
:mod:`repro.sim.bitsim`): instead of recomputing a whole circuit after
every change, a :class:`StatsCache` watches a :class:`~repro.circuit.netlist.Circuit`
for ECO edits, marks exactly the edited gates' transitive fanout cones
dirty, and re-propagates only those gates — through a pluggable
backend (analytic or sampled) whose incremental results are
bit-identical to a from-scratch run.

:class:`TimingCache` is the delay-side twin: it maintains per-net
arrival times (and lazily required times, slacks and the critical
path) under the same edit-listener protocol, with a wider dirty set
(fanin drivers included — an edit changes the load they see) pruned by
early cut-off (re-propagation stops where a recomputed arrival is
bit-identical to the cached one).

See ``src/repro/incremental/README.md`` for the invalidation rules and
the backend contract, and :class:`WhatIf` for trial-apply/rollback.
"""

from .backends import AnalyticBackend, SampledBackend, StatsBackend, make_backend
from .cache import StatsCache
from .eco import (
    InputArrivalEdit,
    InputStatsEdit,
    WhatIf,
    resolve_edit,
    script_edit_label,
)
from .timing import TimingCache
from .portfolio import DEFAULT_RESTARTS, restart_seed
from .search import (
    AcceptedMove,
    Move,
    Objective,
    SearchResult,
    enumerate_moves,
    make_objective,
    search_circuit,
)

__all__ = [
    "StatsBackend",
    "AnalyticBackend",
    "SampledBackend",
    "make_backend",
    "StatsCache",
    "TimingCache",
    "WhatIf",
    "InputStatsEdit",
    "InputArrivalEdit",
    "resolve_edit",
    "script_edit_label",
    "Objective",
    "make_objective",
    "Move",
    "AcceptedMove",
    "SearchResult",
    "enumerate_moves",
    "search_circuit",
    "DEFAULT_RESTARTS",
    "restart_seed",
]
