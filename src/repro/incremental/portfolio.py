"""Process-parallel portfolio annealing: N seeded restarts, one winner.

Simulated annealing is a restart-friendly search: independent runs
from different RNG substreams explore different basins, and the best
of ``restarts`` runs dominates any single run.  This module shards
those restarts over worker processes — each worker rebuilds the
circuit from a plain-data spec and runs the ordinary
:func:`~repro.incremental.search.search_circuit` annealer on its own
:class:`~repro.incremental.cache.StatsCache` /
:class:`~repro.incremental.timing.TimingCache` (and, under the
``REPRO_COMPILED`` flag, its own
:class:`~repro.compiled.circuit.CompiledCircuit`) — and merges the
outcomes deterministically.

Determinism is the design constraint, not an afterthought:

* restart ``i`` draws its seed from :func:`restart_seed` — a CRC
  substream of the base seed, the same scheme the samplers and the
  annealer itself use — so the work each restart does is a pure
  function of ``(circuit, input_stats, seed, i)`` and never of which
  process ran it;
* the merge picks the best objective score with a stable tie-break on
  the restart index;
* consequently the merged :class:`~repro.incremental.search.SearchResult`
  — and its canonical JSON artifact minus the stripped timing fields —
  is **byte-identical across any ``jobs`` setting** (the property
  ``tests/test_portfolio.py`` and ``benchmarks/bench_parallel_search.py``
  lock).

Workers receive only picklable plain data (:func:`circuit_spec`), so
the scheme is indifferent to fork/spawn start methods.  That includes
observability: when the parent traces, workers get the trace path and
clock origin in their payload, write ``portfolio.anneal`` spans (and
everything the annealer emits beneath them) to per-pid shard files
(:mod:`repro.obs.trace`), and the parent's auto-merge interleaves them
back into one timeline — none of which touches result artifacts.
"""

from __future__ import annotations

import zlib
from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from ..circuit.netlist import Circuit
from ..robust import faults as _faults
from ..stochastic.signal import SignalStats

__all__ = [
    "DEFAULT_RESTARTS",
    "PortfolioRun",
    "restart_seed",
    "circuit_spec",
    "circuit_from_spec",
    "run_restarts",
]

#: Restart count when a caller asks for a portfolio (``jobs=N``)
#: without sizing it.  Fixed — never derived from ``jobs`` — so the
#: same request with different worker counts does the same work.
DEFAULT_RESTARTS = 4


def restart_seed(seed: int, index: int) -> int:
    """The CRC-substream seed of restart ``index`` under base ``seed``.

    Mirrors :func:`repro.sim.bitsim.stream_rng`'s labelling scheme:
    stable across processes, platforms and restart-set sizes (adding a
    restart never reseeds the existing ones).
    """
    return zlib.crc32(f"portfolio:{seed}:{index}".encode("utf-8"))


# ----------------------------------------------------------------------
# Picklable circuit round-trip
# ----------------------------------------------------------------------
def _config_index(gate) -> Optional[int]:
    """Position of the gate's configuration in the template enumeration."""
    if gate.config is None:
        return None
    key = gate.config.key()
    for index, config in enumerate(gate.template.configurations()):
        if config.key() == key:
            return index
    raise ValueError(
        f"gate {gate.name}: configuration is not in "
        f"{gate.template.name}'s enumeration and cannot be shipped "
        f"to a worker process"
    )


def circuit_spec(circuit: Circuit) -> Dict[str, object]:
    """A plain-data description a worker can rebuild the circuit from.

    Templates travel as ``(name, pdn_expr, pins)`` triples and
    configurations as indices into the deterministic
    :meth:`~repro.gates.library.GateTemplate.configurations`
    enumeration, so the rebuilt circuit is structurally and
    configuration-wise identical — gate creation order included, which
    topological tie-breaks and artifact byte-stability rely on.
    """
    return {
        "name": circuit.name,
        "templates": [
            (t.name, t.pdn_expr, list(t.pins)) for t in circuit.library
        ],
        "inputs": list(circuit.inputs),
        "outputs": list(circuit.outputs),
        "gates": [
            (
                gate.name,
                gate.template.name,
                [(pin, gate.pin_nets[pin]) for pin in gate.template.pins],
                gate.output,
                _config_index(gate),
            )
            for gate in circuit.gates
        ],
    }


def circuit_from_spec(spec: Mapping[str, object]) -> Circuit:
    """Rebuild a :func:`circuit_spec` circuit (inverse round-trip)."""
    from ..gates.library import GateLibrary, GateTemplate

    library = GateLibrary([
        GateTemplate(name, expr, tuple(pins))
        for name, expr, pins in spec["templates"]
    ])
    circuit = Circuit(spec["name"], library)
    for net in spec["inputs"]:
        circuit.add_input(net)
    for name, template_name, pin_nets, output, config_index in spec["gates"]:
        template = library[template_name]
        config = (None if config_index is None
                  else template.configurations()[config_index])
        circuit.add_gate(name, template_name, dict(pin_nets), output, config)
    for net in spec["outputs"]:
        circuit.add_output(net)
    return circuit


# ----------------------------------------------------------------------
# The worker
# ----------------------------------------------------------------------
def _run_restart(payload: Mapping[str, object]) -> Dict[str, object]:
    """One annealing restart in plain data, for ``Pool.map``.

    Runs in a worker process (or inline for ``jobs=1``); everything in
    and out is picklable, and everything out is a pure function of the
    payload.  When the parent was tracing, the payload carries the
    trace path and clock origin: the worker joins via
    :func:`repro.obs.trace.adopt` (a no-op under ``fork``, where the
    inherited tracer reroutes itself), brackets the whole restart in a
    ``portfolio.anneal`` span, and flushes before returning — pool
    children exit via ``os._exit``, which skips buffer flushing.
    """
    from ..obs import trace as _trace

    trace_ref = payload.get("trace")
    if trace_ref is not None:
        _trace.adopt(trace_ref[0], trace_ref[1])
    tracer = _trace.ACTIVE
    span = (tracer.span("portfolio.anneal", index=payload["index"],
                        seed=payload["seed"])
            if tracer is not None else _trace.NULL_SPAN)
    try:
        with span:
            outcome = _run_restart_body(payload)
            span.note(score=outcome["score"], trials=outcome["trials"],
                      accepted=outcome["accepted_count"])
            return outcome
    finally:
        _trace.flush()


def _run_restart_body(payload: Mapping[str, object]) -> Dict[str, object]:
    from .search import search_circuit

    # Fault-injection site: kill-restart=K / crash-restart=K /
    # sleep-restart=K:SECS target the worker running restart K (one
    # env read when nothing is armed).
    _faults.fire("portfolio.restart", match=payload["index"])
    circuit = circuit_from_spec(payload["spec"])
    input_stats = {
        net: SignalStats(probability, density)
        for net, probability, density in payload["input_stats"]
    }
    result = search_circuit(
        circuit, input_stats, strategy="anneal",
        seed=payload["seed"], **payload["params"],
    )
    score = result.objective.score(result.power_after, result.delay_after,
                                   result.power_before, result.delay_before)
    return {
        "index": payload["index"],
        "seed": payload["seed"],
        "score": score,
        "power_before": result.power_before,
        "power_after": result.power_after,
        "delay_before": result.delay_before,
        "delay_after": result.delay_after,
        "trials": result.trials,
        "rounds": result.rounds,
        "accepted_count": len(result.accepted),
        "gates_repropagated": result.gates_repropagated,
        "gates_retimed": result.gates_retimed,
        "budget_exhausted": result.budget_exhausted,
        "backend": result.backend,
        # Wall time of this restart, for trace/profiling readouts only:
        # the artifact's restart summaries select explicit keys, so it
        # never perturbs byte-stability across jobs settings.
        "elapsed_s": result.elapsed_s,
        "moves": [asdict(move) for move in result.accepted],
        "net_stats": [
            (net, stats.probability, stats.density)
            for net, stats in result.net_stats.items()
        ],
    }


def _restart_progress(outcome: Mapping[str, object],
                      done: int, total: int) -> None:
    from ..obs import progress as _progress

    sink = _progress.ACTIVE
    if sink is not None:
        sink.emit("portfolio.restart", force=True,
                  index=outcome["index"], done=done, total=total,
                  score=outcome["score"],
                  accepted=outcome["accepted_count"])


@dataclass
class PortfolioRun:
    """What a supervised restart fan-out produced.

    ``outcomes`` is in restart order; a ``None`` entry is a restart
    that never completed (crashed/timed out past its retry budget, or
    interrupted).  Those entries are described in ``failures``.
    """

    outcomes: List[Optional[Dict[str, object]]]
    failures: List[Dict[str, object]] = field(default_factory=list)
    interrupted: bool = False


def run_restarts(circuit: Circuit,
                 input_stats: Mapping[str, SignalStats],
                 seed: int,
                 restarts: int,
                 jobs: int,
                 params: Mapping[str, object],
                 *,
                 cached: Optional[Mapping[int, Dict[str, object]]] = None,
                 on_outcome: Optional[Callable[[Dict[int, Dict[str, object]]],
                                               None]] = None,
                 deadline_s: Optional[float] = None,
                 retries: int = 2) -> PortfolioRun:
    """Run ``restarts`` seeded annealing restarts, ``jobs`` at a time.

    Returns a :class:`PortfolioRun` with the per-restart outcome dicts
    in restart order.  ``jobs=1`` (without a ``deadline_s``) runs
    inline — no pool, no pickling of numpy state — retrying an
    in-process exception up to ``retries`` times; higher values fan
    out through :func:`repro.robust.supervise.run_supervised`: one
    process per restart, crash/hang detection, bounded retries with
    backoff and a per-attempt ``deadline_s`` wall-time budget.  Either
    way a restart is a pure function of its payload, so retry counts
    and scheduling never change results — the artifact stays
    byte-identical across ``jobs`` settings.

    ``cached`` pre-fills completed outcomes by restart index (the
    checkpoint/resume path — only the missing restarts run), and
    ``on_outcome`` fires in the parent with the accumulated
    ``{index: outcome}`` map after each completion (the checkpoint
    hook).  ``KeyboardInterrupt``/SIGTERM stops the fan-out and
    returns whatever completed with ``interrupted=True`` — the
    caller's anytime path — instead of raising.
    """
    from ..obs import trace as _trace
    from ..robust.supervise import run_supervised

    tracer = _trace.ACTIVE
    trace_ref = ((tracer.path, tracer._t0)
                 if tracer is not None and tracer.path is not None else None)
    spec = circuit_spec(circuit)
    stats_rows = [
        (net, input_stats[net].probability, input_stats[net].density)
        for net in circuit.inputs
    ]
    results: Dict[int, Dict[str, object]] = dict(cached or {})
    payloads = [
        {
            "spec": spec,
            "input_stats": stats_rows,
            "seed": restart_seed(seed, index),
            "index": index,
            "params": dict(params),
            "trace": trace_ref,
        }
        for index in range(restarts)
        if index not in results
    ]
    failures: List[Dict[str, object]] = []
    interrupted = False

    def record(index: int, outcome: Dict[str, object]) -> None:
        results[index] = outcome
        if on_outcome is not None:
            on_outcome(results)
        _restart_progress(outcome, len(results), restarts)

    if not payloads:
        pass
    elif (jobs == 1 or len(payloads) == 1) and deadline_s is None:
        try:
            for payload in payloads:
                attempt = 1
                while True:
                    try:
                        outcome = _run_restart(payload)
                    except KeyboardInterrupt:
                        raise
                    except Exception as error:
                        if attempt <= retries:
                            attempt += 1
                            continue
                        failures.append({
                            "index": payload["index"],
                            "status": "error",
                            "error": f"{type(error).__name__}: {error}",
                        })
                        break
                    record(payload["index"], outcome)
                    break
        except KeyboardInterrupt:
            interrupted = True
    else:
        def on_complete(task, done, total) -> None:
            if task.ok:
                record(payloads[task.index]["index"], task.value)

        run = run_supervised(
            _run_restart, payloads, min(jobs, len(payloads)),
            retries=retries, deadline_s=deadline_s,
            on_complete=on_complete, label="portfolio.restart",
        )
        interrupted = run.interrupted
        for task in run.failed:
            failures.append({
                "index": payloads[task.index]["index"],
                "status": task.status,
                "error": task.error,
            })

    ordered = [results.get(index) for index in range(restarts)]
    if interrupted:
        # Tasks the supervisor never resolved are failures only if the
        # run wasn't interrupted; under an interrupt they are simply
        # "not done yet" and stay out of the failure list.
        failures = [entry for entry in failures
                    if entry["status"] != "interrupted"]
    failures.sort(key=lambda entry: entry["index"])
    return PortfolioRun(outcomes=ordered, failures=failures,
                        interrupted=interrupted)
