"""What-if trials and the scripted ECO edit vocabulary.

:class:`WhatIf` wraps a :class:`~repro.incremental.cache.StatsCache`:
edits applied through it are trial edits — read the delta power, then
either :meth:`~WhatIf.commit` or let the ``with`` block roll everything
back.  Rollback replays the recorded inverse edits in reverse order
through the same dirty-cone machinery, so the cache lands back on
bit-identical statistics and power (cone-sized work both ways).

The module also defines the JSON edit-script vocabulary of the
``repro eco`` CLI subcommand::

    [{"op": "reorder",       "gate": "g3", "config": 2},
     {"op": "retemplate",    "gate": "g7", "template": "nor2", "config": 0},
     {"op": "input-stats",   "net": "a", "probability": 0.3, "density": 2e5},
     {"op": "input-arrival", "net": "a", "arrival": 2.0e-10},
     {"op": "add-gate",      "gate": "b0", "template": "inv",
      "pins": {"a": "n3"}, "output": "n3_buf"},
     {"op": "remove-gate",   "gate": "g9"},
     {"op": "rewire",        "gate": "g7", "pin": "b", "net": "n3_buf"}]

``"config"`` indexes the gate template's deterministic
:meth:`~repro.gates.library.GateTemplate.configurations` enumeration
(-1 = the template default); on ``"retemplate"`` and ``"add-gate"`` it
is optional (omitted = the template default).  Unknown keys in an
entry are rejected, not ignored — a typo must not silently change what
a script replays.  ``"input-arrival"`` is timing-side only: replaying
it needs an incremental timing cache (``repro eco --timing``).

The last three ops are the **structural** vocabulary (serialised forms
of :class:`~repro.circuit.netlist.AddGate` /
:class:`~repro.circuit.netlist.RemoveGate` /
:class:`~repro.circuit.netlist.RewireNet`).  Their invalidation rules:
an added or rewired gate dirties its (new) transitive fanout cone, a
removed gate's cached entries are purged, and the drivers of every net
whose external load changed (the added/removed gate's fanin nets; a
rewired pin's old and new net) go power- and timing-dirty.  Structural
edits rebuild the circuit's memoised fanout index / topological order,
and both caches re-read them; only backends with
``supports_structure`` (the analytic engines — object and compiled)
accept them, and :meth:`WhatIf.apply` refuses up front for the rest
(the sampled backends keep per-net lane histories keyed to the old
structure), before anything mutates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional, Sequence, Union

from ..circuit.netlist import (
    AddGate,
    Circuit,
    CircuitError,
    RemoveGate,
    RewireNet,
    SetConfig,
    SetTemplate,
    StructuralEdit,
    lookup_template,
)
from ..stochastic.signal import SignalStats
from .cache import StatsCache
from .timing import TimingCache

__all__ = [
    "InputStatsEdit",
    "InputArrivalEdit",
    "EcoEdit",
    "WhatIf",
    "resolve_edit",
    "resolve_edit_script",
    "script_edit_label",
]


@dataclass(frozen=True)
class InputStatsEdit:
    """Replace one primary input's (P, D) — a stimulus-side ECO."""

    net: str
    stats: SignalStats


@dataclass(frozen=True)
class InputArrivalEdit:
    """Replace one primary input's arrival time — a timing-side ECO.

    Only meaningful through a :class:`WhatIf` carrying a
    :class:`~repro.incremental.timing.TimingCache` (statistics do not
    depend on arrival times, so the stats cache never sees it).
    """

    net: str
    arrival: float


#: Everything :meth:`WhatIf.apply` and the eco CLI accept.
EcoEdit = Union[SetConfig, SetTemplate, AddGate, RemoveGate, RewireNet,
                InputStatsEdit, InputArrivalEdit]


class WhatIf:
    """Trial-apply edits against a cache; roll back unless committed.

    ::

        with WhatIf(cache) as trial:
            trial.apply(SetConfig("g3", config))
            if trial.delta_power() < 0.0:
                trial.commit()
        # not committed -> the circuit and cache are back to baseline

    Exception safety: a trial body that raises is **aborted** — the
    rollback runs even after :meth:`commit` was called, so no partial
    trial ever leaks into the circuit.

    Trials nest: an inner ``WhatIf`` on the same cache stacks on top of
    the outer one and must unwind in LIFO order (exiting the outer
    context while an inner trial is still open raises, before any
    out-of-order rollback can corrupt the circuit).  Committing an
    inner trial hands its undo log to the enclosing trial, so rolling
    the outer trial back still undoes the inner edits.

    Pass ``timing=`` (a :class:`~repro.incremental.timing.TimingCache`
    on the same circuit) to co-price delay: :meth:`delay` and
    :meth:`delta_delay` read it cone-sized, and rollback restores it
    for free — the timing cache listens to the same edit notifications
    the inverse edits emit, and recomputing a restored cone reproduces
    the baseline arrivals bit-for-bit (same kernel, same floats).
    Nesting and undo-log promotion need no extra machinery for the
    same reason; only :data:`InputArrivalEdit` goes through the
    timing cache directly (statistics never see arrival times).  An
    inner trial carrying ``timing=`` must share the enclosing trial's
    timing cache — committing it promotes the undo log outward, and a
    promoted ``InputArrivalEdit`` can only be rolled back through the
    cache that applied it (entering with a different one raises).
    """

    def __init__(self, cache: StatsCache, timing: Optional[TimingCache] = None):
        if timing is not None and timing.circuit is not cache.circuit:
            raise ValueError(
                "timing= must be a TimingCache on the cache's own circuit"
            )
        self.cache = cache
        self.timing = timing
        self._undo: List[EcoEdit] = []
        self._committed = False
        self._entered = False
        self.baseline_power = cache.total_power()
        self.baseline_delay = timing.delay() if timing is not None else None

    # ------------------------------------------------------------------
    def apply(self, edit: EcoEdit) -> None:
        """Apply one edit, recording its inverse for rollback."""
        if isinstance(edit, InputStatsEdit):
            old = self.cache.set_input_stats(edit.net, edit.stats)
            self._undo.append(InputStatsEdit(edit.net, old))
        elif isinstance(edit, InputArrivalEdit):
            if self.timing is None:
                raise TypeError(
                    "InputArrivalEdit needs a WhatIf constructed with timing="
                )
            old = self.timing.set_input_arrival(edit.net, edit.arrival)
            self._undo.append(InputArrivalEdit(edit.net, old))
        else:
            if (isinstance(edit, StructuralEdit)
                    and not getattr(self.cache.backend,
                                    "supports_structure", False)):
                # Refuse BEFORE the circuit mutates: the cache listener
                # would raise too, but only after apply_edit changed the
                # netlist, leaving circuit and cache out of sync.
                raise CircuitError(
                    f"cannot trial {script_edit_label(edit)!r}: the "
                    f"{self.cache.backend.name!r} backend does not support "
                    f"structural edits (use the analytic backend)"
                )
            self._undo.append(self.cache.circuit.apply_edit(edit))

    def power(self) -> float:
        """Current total modelled power (incrementally recomputed)."""
        return self.cache.total_power()

    def delta_power(self) -> float:
        """Power change of the trial edits so far versus the baseline."""
        return self.cache.total_power() - self.baseline_power

    def delay(self) -> float:
        """Current circuit delay (incrementally retimed); needs ``timing=``."""
        if self.timing is None:
            raise TypeError("delay() needs a WhatIf constructed with timing=")
        return self.timing.delay()

    def delta_delay(self) -> float:
        """Delay change of the trial edits so far versus the baseline."""
        return self.delay() - self.baseline_delay

    def commit(self) -> None:
        """Keep the applied edits; exiting the block will not roll back."""
        self._committed = True

    def rollback(self) -> None:
        """Undo all applied edits now (most recent first)."""
        while self._undo:
            edit = self._undo.pop()
            if isinstance(edit, InputStatsEdit):
                self.cache.set_input_stats(edit.net, edit.stats)
            elif isinstance(edit, InputArrivalEdit):
                self.timing.set_input_arrival(edit.net, edit.arrival)
            else:
                self.cache.circuit.apply_edit(edit)

    # ------------------------------------------------------------------
    def __enter__(self) -> "WhatIf":
        stack = self.cache.trial_stack
        if (stack and self.timing is not None
                and stack[-1].timing is not self.timing):
            # Committing this trial would promote its undo log — with
            # any InputArrivalEdit inverses — to a trial that cannot
            # replay them through the right timing cache.
            raise RuntimeError(
                "a nested WhatIf carrying timing= must share the enclosing "
                "trial's timing cache"
            )
        self._entered = True
        stack.append(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        stack = self.cache.trial_stack
        if self._entered:
            if not stack or stack[-1] is not self:
                # Out-of-order unwinding: rolling back now would replay
                # inverses over an inner trial's live edits and corrupt
                # the circuit.  Refuse loudly instead.
                raise RuntimeError(
                    "nested WhatIf contexts must unwind in LIFO order "
                    "(an inner trial on this cache is still open)"
                )
            stack.pop()
            self._entered = False
        if exc_type is not None:
            # The trial body raised: abort, even after commit() — a
            # partially executed trial must never leak into the circuit.
            self.rollback()
        elif not self._committed:
            self.rollback()
        elif stack:
            # Inner commit under an open outer trial: "keep" is relative
            # to the enclosing trial, which inherits the undo log so its
            # own rollback still restores the true baseline.
            stack[-1]._undo.extend(self._undo)
            self._undo.clear()


# ----------------------------------------------------------------------
# JSON edit scripts (the `repro eco` CLI)
# ----------------------------------------------------------------------
#: Exhaustive per-op key sets: a script entry carrying anything else is
#: rejected (a typo like "confg" must not silently replay differently).
_ENTRY_KEYS = {
    "reorder": frozenset({"op", "gate", "config"}),
    "retemplate": frozenset({"op", "gate", "template", "config"}),
    "input-stats": frozenset({"op", "net", "probability", "density"}),
    "input-arrival": frozenset({"op", "net", "arrival"}),
    "add-gate": frozenset({"op", "gate", "template", "pins", "output",
                           "config"}),
    "remove-gate": frozenset({"op", "gate"}),
    "rewire": frozenset({"op", "gate", "pin", "net"}),
}


def _config_from_index(template, index, label):
    """``template.configurations()[index]`` with -1 = default (None)."""
    index = int(index)
    if index == -1:
        return None
    configurations = template.configurations()
    if not 0 <= index < len(configurations):
        raise ValueError(
            f"{label}: config index {index} outside "
            f"0..{len(configurations) - 1}"
        )
    return configurations[index]


def resolve_edit(circuit: Circuit, entry: Mapping) -> EcoEdit:
    """Turn one JSON script entry into an :data:`EcoEdit`."""
    op = entry.get("op")
    allowed = _ENTRY_KEYS.get(op)
    if allowed is None:
        raise ValueError(
            f"unknown edit op {op!r}; use one of "
            f"{', '.join(repr(k) for k in _ENTRY_KEYS)}"
        )
    unknown = sorted(set(entry) - allowed)
    if unknown:
        raise ValueError(
            f"{op} entry has unknown keys {unknown}; allowed: "
            f"{sorted(allowed)}"
        )
    if op == "reorder":
        gate = circuit.gate(entry["gate"])
        return SetConfig(
            gate.name,
            _config_from_index(
                gate.template, entry["config"],
                f"gate {gate.name} ({gate.template.name})",
            ),
        )
    if op == "retemplate":
        gate = circuit.gate(entry["gate"])
        template = lookup_template(circuit.library, entry["template"])
        config = None
        if "config" in entry:
            config = _config_from_index(
                template, entry["config"],
                f"gate {gate.name} (-> {template.name})",
            )
        return SetTemplate(gate.name, template.name, config)
    if op == "input-stats":
        return InputStatsEdit(
            entry["net"],
            SignalStats(float(entry["probability"]), float(entry["density"])),
        )
    if op == "input-arrival":
        return InputArrivalEdit(entry["net"], float(entry["arrival"]))
    if op == "add-gate":
        template = lookup_template(circuit.library, entry["template"])
        pins = entry["pins"]
        if sorted(pins) != sorted(template.pins):
            raise ValueError(
                f"add-gate {entry['gate']}: pins {sorted(pins)} do not "
                f"match template {template.name!r} pins "
                f"{sorted(template.pins)}"
            )
        config = None
        if "config" in entry:
            config = _config_from_index(
                template, entry["config"],
                f"add-gate {entry['gate']} ({template.name})",
            )
        return AddGate(
            str(entry["gate"]), template.name,
            tuple((pin, str(pins[pin])) for pin in template.pins),
            str(entry["output"]), config,
        )
    if op == "remove-gate":
        return RemoveGate(circuit.gate(entry["gate"]).name)
    # op == "rewire"
    gate = circuit.gate(entry["gate"])
    return RewireNet(gate.name, str(entry["pin"]), str(entry["net"]))


def resolve_edit_script(circuit: Circuit,
                        entries: Sequence[Mapping]) -> List[EcoEdit]:
    """Resolve a whole JSON script (a list of entries) against a circuit."""
    return [resolve_edit(circuit, entry) for entry in entries]


def script_edit_label(edit: EcoEdit) -> str:
    """Short human-readable form of an edit for reports and tables."""
    if isinstance(edit, SetConfig):
        suffix = "default" if edit.config is None else "reordered"
        return f"reorder {edit.gate} ({suffix})"
    if isinstance(edit, SetTemplate):
        return f"retemplate {edit.gate} -> {edit.template}"
    if isinstance(edit, InputStatsEdit):
        return (
            f"input-stats {edit.net} -> (P={edit.stats.probability:g}, "
            f"D={edit.stats.density:g})"
        )
    if isinstance(edit, InputArrivalEdit):
        return f"input-arrival {edit.net} -> {edit.arrival:g}"
    if isinstance(edit, AddGate):
        return f"add-gate {edit.gate} ({edit.template}) -> {edit.output}"
    if isinstance(edit, RemoveGate):
        return f"remove-gate {edit.gate}"
    if isinstance(edit, RewireNet):
        return f"rewire {edit.gate}.{edit.pin} -> {edit.net}"
    return repr(edit)
