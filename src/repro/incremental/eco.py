"""What-if trials and the scripted ECO edit vocabulary.

:class:`WhatIf` wraps a :class:`~repro.incremental.cache.StatsCache`:
edits applied through it are trial edits — read the delta power, then
either :meth:`~WhatIf.commit` or let the ``with`` block roll everything
back.  Rollback replays the recorded inverse edits in reverse order
through the same dirty-cone machinery, so the cache lands back on
bit-identical statistics and power (cone-sized work both ways).

The module also defines the JSON edit-script vocabulary of the
``repro eco`` CLI subcommand::

    [{"op": "reorder",       "gate": "g3", "config": 2},
     {"op": "retemplate",    "gate": "g7", "template": "nor2"},
     {"op": "input-stats",   "net": "a", "probability": 0.3, "density": 2e5},
     {"op": "input-arrival", "net": "a", "arrival": 2.0e-10}]

``"config"`` indexes the gate template's deterministic
:meth:`~repro.gates.library.GateTemplate.configurations` enumeration
(-1 = the template default).  ``"input-arrival"`` is timing-side only:
replaying it needs an incremental timing cache (``repro eco --timing``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional, Sequence, Union

from ..circuit.netlist import Circuit, SetConfig, SetTemplate
from ..stochastic.signal import SignalStats
from .cache import StatsCache
from .timing import TimingCache

__all__ = [
    "InputStatsEdit",
    "InputArrivalEdit",
    "EcoEdit",
    "WhatIf",
    "resolve_edit",
    "resolve_edit_script",
    "script_edit_label",
]


@dataclass(frozen=True)
class InputStatsEdit:
    """Replace one primary input's (P, D) — a stimulus-side ECO."""

    net: str
    stats: SignalStats


@dataclass(frozen=True)
class InputArrivalEdit:
    """Replace one primary input's arrival time — a timing-side ECO.

    Only meaningful through a :class:`WhatIf` carrying a
    :class:`~repro.incremental.timing.TimingCache` (statistics do not
    depend on arrival times, so the stats cache never sees it).
    """

    net: str
    arrival: float


#: Everything :meth:`WhatIf.apply` and the eco CLI accept.
EcoEdit = Union[SetConfig, SetTemplate, InputStatsEdit, InputArrivalEdit]


class WhatIf:
    """Trial-apply edits against a cache; roll back unless committed.

    ::

        with WhatIf(cache) as trial:
            trial.apply(SetConfig("g3", config))
            if trial.delta_power() < 0.0:
                trial.commit()
        # not committed -> the circuit and cache are back to baseline

    Exception safety: a trial body that raises is **aborted** — the
    rollback runs even after :meth:`commit` was called, so no partial
    trial ever leaks into the circuit.

    Trials nest: an inner ``WhatIf`` on the same cache stacks on top of
    the outer one and must unwind in LIFO order (exiting the outer
    context while an inner trial is still open raises, before any
    out-of-order rollback can corrupt the circuit).  Committing an
    inner trial hands its undo log to the enclosing trial, so rolling
    the outer trial back still undoes the inner edits.

    Pass ``timing=`` (a :class:`~repro.incremental.timing.TimingCache`
    on the same circuit) to co-price delay: :meth:`delay` and
    :meth:`delta_delay` read it cone-sized, and rollback restores it
    for free — the timing cache listens to the same edit notifications
    the inverse edits emit, and recomputing a restored cone reproduces
    the baseline arrivals bit-for-bit (same kernel, same floats).
    Nesting and undo-log promotion need no extra machinery for the
    same reason; only :data:`InputArrivalEdit` goes through the
    timing cache directly (statistics never see arrival times).  An
    inner trial carrying ``timing=`` must share the enclosing trial's
    timing cache — committing it promotes the undo log outward, and a
    promoted ``InputArrivalEdit`` can only be rolled back through the
    cache that applied it (entering with a different one raises).
    """

    def __init__(self, cache: StatsCache, timing: Optional[TimingCache] = None):
        if timing is not None and timing.circuit is not cache.circuit:
            raise ValueError(
                "timing= must be a TimingCache on the cache's own circuit"
            )
        self.cache = cache
        self.timing = timing
        self._undo: List[EcoEdit] = []
        self._committed = False
        self._entered = False
        self.baseline_power = cache.total_power()
        self.baseline_delay = timing.delay() if timing is not None else None

    # ------------------------------------------------------------------
    def apply(self, edit: EcoEdit) -> None:
        """Apply one edit, recording its inverse for rollback."""
        if isinstance(edit, InputStatsEdit):
            old = self.cache.set_input_stats(edit.net, edit.stats)
            self._undo.append(InputStatsEdit(edit.net, old))
        elif isinstance(edit, InputArrivalEdit):
            if self.timing is None:
                raise TypeError(
                    "InputArrivalEdit needs a WhatIf constructed with timing="
                )
            old = self.timing.set_input_arrival(edit.net, edit.arrival)
            self._undo.append(InputArrivalEdit(edit.net, old))
        else:
            self._undo.append(self.cache.circuit.apply_edit(edit))

    def power(self) -> float:
        """Current total modelled power (incrementally recomputed)."""
        return self.cache.total_power()

    def delta_power(self) -> float:
        """Power change of the trial edits so far versus the baseline."""
        return self.cache.total_power() - self.baseline_power

    def delay(self) -> float:
        """Current circuit delay (incrementally retimed); needs ``timing=``."""
        if self.timing is None:
            raise TypeError("delay() needs a WhatIf constructed with timing=")
        return self.timing.delay()

    def delta_delay(self) -> float:
        """Delay change of the trial edits so far versus the baseline."""
        return self.delay() - self.baseline_delay

    def commit(self) -> None:
        """Keep the applied edits; exiting the block will not roll back."""
        self._committed = True

    def rollback(self) -> None:
        """Undo all applied edits now (most recent first)."""
        while self._undo:
            edit = self._undo.pop()
            if isinstance(edit, InputStatsEdit):
                self.cache.set_input_stats(edit.net, edit.stats)
            elif isinstance(edit, InputArrivalEdit):
                self.timing.set_input_arrival(edit.net, edit.arrival)
            else:
                self.cache.circuit.apply_edit(edit)

    # ------------------------------------------------------------------
    def __enter__(self) -> "WhatIf":
        stack = self.cache.trial_stack
        if (stack and self.timing is not None
                and stack[-1].timing is not self.timing):
            # Committing this trial would promote its undo log — with
            # any InputArrivalEdit inverses — to a trial that cannot
            # replay them through the right timing cache.
            raise RuntimeError(
                "a nested WhatIf carrying timing= must share the enclosing "
                "trial's timing cache"
            )
        self._entered = True
        stack.append(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        stack = self.cache.trial_stack
        if self._entered:
            if not stack or stack[-1] is not self:
                # Out-of-order unwinding: rolling back now would replay
                # inverses over an inner trial's live edits and corrupt
                # the circuit.  Refuse loudly instead.
                raise RuntimeError(
                    "nested WhatIf contexts must unwind in LIFO order "
                    "(an inner trial on this cache is still open)"
                )
            stack.pop()
            self._entered = False
        if exc_type is not None:
            # The trial body raised: abort, even after commit() — a
            # partially executed trial must never leak into the circuit.
            self.rollback()
        elif not self._committed:
            self.rollback()
        elif stack:
            # Inner commit under an open outer trial: "keep" is relative
            # to the enclosing trial, which inherits the undo log so its
            # own rollback still restores the true baseline.
            stack[-1]._undo.extend(self._undo)
            self._undo.clear()


# ----------------------------------------------------------------------
# JSON edit scripts (the `repro eco` CLI)
# ----------------------------------------------------------------------
def resolve_edit(circuit: Circuit, entry: Mapping) -> EcoEdit:
    """Turn one JSON script entry into an :data:`EcoEdit`."""
    op = entry.get("op")
    if op == "reorder":
        gate = circuit.gate(entry["gate"])
        index = int(entry["config"])
        if index == -1:
            return SetConfig(gate.name, None)
        configurations = gate.template.configurations()
        if not 0 <= index < len(configurations):
            raise ValueError(
                f"gate {gate.name} ({gate.template.name}): config index "
                f"{index} outside 0..{len(configurations) - 1}"
            )
        return SetConfig(gate.name, configurations[index])
    if op == "retemplate":
        gate = circuit.gate(entry["gate"])
        return SetTemplate(gate.name, entry["template"])
    if op == "input-stats":
        return InputStatsEdit(
            entry["net"],
            SignalStats(float(entry["probability"]), float(entry["density"])),
        )
    if op == "input-arrival":
        return InputArrivalEdit(entry["net"], float(entry["arrival"]))
    raise ValueError(
        f"unknown edit op {op!r}; use 'reorder', 'retemplate', "
        f"'input-stats' or 'input-arrival'"
    )


def resolve_edit_script(circuit: Circuit,
                        entries: Sequence[Mapping]) -> List[EcoEdit]:
    """Resolve a whole JSON script (a list of entries) against a circuit."""
    return [resolve_edit(circuit, entry) for entry in entries]


def script_edit_label(edit: EcoEdit) -> str:
    """Short human-readable form of an edit for reports and tables."""
    if isinstance(edit, SetConfig):
        suffix = "default" if edit.config is None else "reordered"
        return f"reorder {edit.gate} ({suffix})"
    if isinstance(edit, SetTemplate):
        return f"retemplate {edit.gate} -> {edit.template}"
    if isinstance(edit, InputStatsEdit):
        return (
            f"input-stats {edit.net} -> (P={edit.stats.probability:g}, "
            f"D={edit.stats.density:g})"
        )
    if isinstance(edit, InputArrivalEdit):
        return f"input-arrival {edit.net} -> {edit.arrival:g}"
    return repr(edit)
