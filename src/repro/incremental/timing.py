"""The dirty-cone timing cache.

:class:`TimingCache` maintains per-net arrival times — and, lazily,
required times, slacks and the critical path — of a circuit under ECO
edits, mirroring :class:`~repro.incremental.cache.StatsCache` on the
delay axis of the paper's (P, D) co-metric (Table 3 column D).

Invalidation is **wider** than the statistics rule (see README.md,
"Timing invalidation rules"): an edit on gate *g* timing-dirties *g*,
its transitive fanout, *and its fanin drivers* — a reorder or
retemplate changes *g*'s compiled form, hence its pin capacitances,
hence the load its drivers see, hence the Elmore delay (and output
arrival) of those drivers; their arrival changes then ripple through
*their* cones.  Re-propagation compensates with **early cut-off**: the
refresh stops descending a fanout cone as soon as a recomputed arrival
is bit-identical to the cached one (common — most reorders leave many
pin capacitances, and therefore most downstream arrivals, untouched).

Both the full initial sweep and the incremental re-propagation price
gates through the same kernel as the batch analyzer
(:func:`repro.timing.sta.gate_arrival` / :func:`~repro.timing.sta.net_load`),
so the cache is bit-identical to a from-scratch
:func:`~repro.timing.sta.analyze_timing` after any supported edit
sequence — the property ``tests/test_timing_equivalence.py`` locks.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..circuit.netlist import Circuit
from ..circuit.topology import FanoutIndex
from ..obs import trace as _trace
from ..obs.metrics import MetricsRegistry
from ..timing.sta import TimingReport, gate_arrival, net_load, timing_context

__all__ = ["TimingCache"]


class TimingCache:
    """Circuit-wide arrival times, re-propagated only where dirty.

    Subscribes to :meth:`Circuit.apply_edit` notifications exactly like
    :class:`~repro.incremental.cache.StatsCache`; pass ``index=`` to
    share an existing :class:`FanoutIndex` (the local edits never
    change connectivity, so one index can serve both caches; after a
    structural edit both re-read the circuit's freshly rebuilt memoised
    index, so they keep sharing).

    ``compiled`` routes the initial sweep and every refresh through
    the flat-array kernels of :mod:`repro.compiled` (``None`` defers
    to the ``REPRO_COMPILED`` environment flag); arrivals, early
    cut-off decisions and the :attr:`gates_retimed` counter are
    bit-identical either way.
    """

    def __init__(self, circuit: Circuit,
                 tech=None,
                 po_load: Optional[float] = None,
                 input_arrivals: Optional[Mapping[str, float]] = None,
                 index: Optional[FanoutIndex] = None,
                 compiled: Optional[bool] = None):
        if index is None:
            circuit.validate()
            index = circuit.fanout_index()
        self.circuit = circuit
        self.tech, self.po_load = timing_context(tech, po_load)
        self.index = index
        self._topo = circuit.topo_gates()
        self._topo_index = {g.name: i for i, g in enumerate(self._topo)}
        self._outputs = frozenset(circuit.outputs)
        self._input_arrivals: Dict[str, float] = {
            net: (float(input_arrivals[net]) if input_arrivals else 0.0)
            for net in circuit.inputs
        }
        from ..compiled.flags import use_compiled

        self._cc = None
        self._arr = None
        if use_compiled(compiled):
            from ..compiled import get_compiled

            self._cc = get_compiled(circuit)
        self._arrivals: Dict[str, float] = dict(self._input_arrivals)
        self._pred: Dict[str, Optional[str]] = {
            net: None for net in circuit.inputs
        }
        if self._cc is not None:
            # Flat-array full sweep; the persistent array backs every
            # later refresh, with the dict view kept in sync for reads.
            cc = self._cc
            self._arr, pred_net = cc.arrivals_full(
                self.tech, self.po_load, self._input_arrivals)
            for gid, name in enumerate(cc.gate_names):
                out = cc.num_inputs + gid
                self._arrivals[cc.nets[out]] = float(self._arr[out])
                self._pred[cc.nets[out]] = cc.nets[pred_net[gid]]
        else:
            for gate in self._topo:
                arrival, pred = gate_arrival(gate, self._arrivals, self.tech,
                                             self._load(gate.output))
                self._arrivals[gate.output] = arrival
                self._pred[gate.output] = pred
        #: Seed gates awaiting re-propagation (the refresh descends
        #: their cones itself, pruning with early cut-off, so the full
        #: dirty cone is never materialised eagerly).
        self._dirty: set = set()
        self._required: Optional[Dict[str, float]] = None
        self._required_clock: Optional[float] = None
        #: Per-cache work counters (:mod:`repro.obs.metrics`); the
        #: ``timing.gates_retimed`` counter backs the property below so
        #: artifact fields and metrics snapshots cannot drift.
        self.metrics = MetricsRegistry()
        self._retimed = self.metrics.counter("timing.gates_retimed")
        self._refreshes = self.metrics.counter("timing.refresh_count")
        circuit.add_edit_listener(self._on_edit)
        self._subscribed = True

    @property
    def gates_retimed(self) -> int:
        """Total gate arrivals recomputed by :meth:`refresh` calls (the
        benchmark's cone-size measure); the initial full sweep is not
        counted."""
        return self._retimed.value

    @property
    def refresh_count(self) -> int:
        return self._refreshes.value

    # ------------------------------------------------------------------
    # Invalidation
    # ------------------------------------------------------------------
    def _on_edit(self, gate_name: str, kind: str) -> None:
        if kind == "structure":
            self._on_structure(gate_name, self.circuit.structure_event)
            return
        self._dirty.add(gate_name)
        # Wider than the statistics rule: the edited gate's new
        # compiled form can change its pin capacitances — the load its
        # fanin drivers see — and load enters the Elmore delay, so the
        # drivers' own output arrivals may move too.
        for pred in self.circuit.fanin_drivers(gate_name):
            self._dirty.add(pred.name)

    def _on_structure(self, gate_name: str, event) -> None:
        """Handle a structural edit: rebuild structure, widen dirty seeds.

        Mirrors :meth:`StatsCache._on_structure`.  An added gate's
        output is seeded NaN so the early cut-off always treats its
        first recompute as changed (``x != nan`` for every ``x``); the
        NaN never escapes because the gate is in the dirty seeds of the
        very next refresh.  Drivers of the event's ``load_nets`` are
        seeded too — the external load they see changed, and load
        enters the Elmore delay.  In compiled mode the stale lowering
        is replaced and the persistent arrival array rebuilt from the
        (still exact) arrival dict.
        """
        self.index = self.circuit.fanout_index()
        self._topo = self.circuit.topo_gates()
        self._topo_index = {g.name: i for i, g in enumerate(self._topo)}
        if event.op == "remove":
            self._dirty.discard(gate_name)
            self._arrivals.pop(event.output, None)
            self._pred.pop(event.output, None)
        else:
            if event.op == "add":
                self._arrivals[event.output] = float("nan")
                self._pred[event.output] = None
            self._dirty.add(gate_name)
        for net in event.load_nets:
            pred = self.circuit.driver(net)
            if pred is not None:
                self._dirty.add(pred.name)
        if self._cc is not None:
            from ..compiled import get_compiled

            self._cc = get_compiled(self.circuit)
            arr = np.zeros(len(self._cc.nets))
            for i, net in enumerate(self._cc.nets):
                arr[i] = self._arrivals.get(net, np.nan)
            self._arr = arr
        self._required = None
        self._required_clock = None

    def mark_dirty(self, gate_name: str) -> None:
        """Seed the dirty set as if ``gate_name`` had just been edited.

        The batch move pricer (:mod:`repro.incremental.search`) scores
        candidates without applying circuit edits, so no edit
        notification fires; this reproduces the exact seeds a trial
        apply/rollback pair would leave — the gate plus its fanin
        drivers — keeping the refresh work and the
        :attr:`gates_retimed` counter bit-identical to the per-move
        :class:`~repro.incremental.eco.WhatIf` path.
        """
        if gate_name not in self._topo_index:
            raise KeyError(f"unknown gate {gate_name!r}")
        self._on_edit(gate_name, "mark")

    def set_input_arrival(self, net: str, arrival: float) -> float:
        """Edit one primary input's arrival time; returns the old value."""
        if net not in self._input_arrivals:
            raise KeyError(f"{net!r} is not a primary input")
        old = self._input_arrivals[net]
        arrival = float(arrival)
        if arrival == old:
            return old
        self._input_arrivals[net] = arrival
        self._arrivals[net] = arrival
        if self._arr is not None:
            self._arr[self._cc.net_id[net]] = arrival
        self._required = None  # the net may have no sinks to refresh through
        for gate, _pin in self.index.sinks(net):
            self._dirty.add(gate.name)
        return old

    def input_arrival(self, net: str) -> float:
        return self._input_arrivals[net]

    @property
    def input_arrivals(self) -> Mapping[str, float]:
        """Primary-input arrival times (treat as read-only)."""
        return self._input_arrivals

    @property
    def dirty_gates(self) -> frozenset:
        """Names of gates whose arrival *may* be re-propagated.

        The potential dirty cone (seeds plus transitive fanout); the
        actual refresh usually touches far fewer gates thanks to early
        cut-off.
        """
        return self.index.cone_from_gates(self._dirty)

    # ------------------------------------------------------------------
    # Re-propagation
    # ------------------------------------------------------------------
    def _load(self, net: str) -> float:
        return net_load(self.index.sinks(net), net in self._outputs,
                        self.tech, self.po_load)

    def refresh(self) -> Tuple[str, ...]:
        """Re-propagate dirty cones; returns the nets whose arrival moved.

        Gates pop off a min-heap in topological order, so every
        recompute sees up-to-date fanin arrivals.  A gate whose
        recomputed arrival is bit-identical to the cached one does not
        enqueue its sinks — the early cut-off that keeps a wide dirty
        cone from forcing a wide recompute — and is not reported
        either; the total recompute count (changed or not) accumulates
        in :attr:`gates_retimed`.
        """
        if not self._dirty:
            return ()
        if self._cc is not None:
            return self._refresh_compiled()
        order = self._topo_index
        tracer = _trace.ACTIVE
        span = (tracer.span("timing.refresh", seeds=len(self._dirty),
                            backend="object")
                if tracer is not None else _trace.NULL_SPAN)
        with span:
            heap = [order[name] for name in self._dirty]
            heapq.heapify(heap)
            queued = set(self._dirty)
            self._dirty.clear()
            recomputed = 0
            changed: List[str] = []
            while heap:
                gate = self._topo[heapq.heappop(heap)]
                arrival, pred = gate_arrival(gate, self._arrivals, self.tech,
                                             self._load(gate.output))
                recomputed += 1
                if arrival != self._arrivals[gate.output]:
                    self._arrivals[gate.output] = arrival
                    self._pred[gate.output] = pred
                    changed.append(gate.output)
                    for sink in self.index.gate_sinks(gate.name):
                        if sink.name not in queued:
                            queued.add(sink.name)
                            heapq.heappush(heap, order[sink.name])
                else:
                    # Arrival unchanged: downstream inputs are bit-identical,
                    # so downstream results are too — stop descending.  The
                    # latest-arriving pin can still have shifted (an exact
                    # tie), so the predecessor is updated regardless.
                    self._pred[gate.output] = pred
            if tracer is not None:
                # The early-cutoff health metric: recomputed - changed
                # gates are where descent stopped.
                span.note(recomputed=recomputed, changed=len(changed))
        self._retimed.inc(recomputed)
        self._refreshes.inc()
        self._required = None
        return tuple(changed)

    def _refresh_compiled(self) -> Tuple[str, ...]:
        """The refresh algorithm on flat arrays, batched level by level.

        Same dirty-set semantics and early cut-off as the heap walk —
        a gate is recomputed iff it was a seed or a predecessor's
        recomputed arrival changed bit-wise, and both walks settle
        predecessors before sinks — so the recomputed set, the counter
        and every arrival are identical; only the batching differs.
        """
        cc = self._cc
        arr = self._arr
        tracer = _trace.ACTIVE
        span = (tracer.span("timing.refresh", seeds=len(self._dirty),
                            backend="compiled")
                if tracer is not None else _trace.NULL_SPAN)
        with span:
            loads = cc.net_loads(self.tech, self.po_load)
            frontier: Dict[int, set] = {}
            queued = set()
            for name in self._dirty:
                gid = cc.gate_id[name]
                queued.add(gid)
                frontier.setdefault(int(cc.level[gid]), set()).add(gid)
            self._dirty.clear()
            recomputed = 0
            changed_gids: List[int] = []
            while frontier:
                level = min(frontier)
                ids = np.fromiter(frontier.pop(level), dtype=np.int64)
                gids, out_ids, arrivals, pred_nets = cc.retime_gates(
                    ids, arr, loads, self.tech)
                recomputed += len(gids)
                old = arr[out_ids]
                arr[out_ids] = arrivals
                moved = arrivals != old
                for k in range(len(gids)):
                    out_name = cc.nets[int(out_ids[k])]
                    # The latest-arriving pin can shift on an exact tie, so
                    # the predecessor updates even when the arrival did not.
                    self._pred[out_name] = cc.nets[int(pred_nets[k])]
                    if moved[k]:
                        self._arrivals[out_name] = float(arrivals[k])
                        changed_gids.append(int(gids[k]))
                        for sink in cc.gate_sinks(int(gids[k])):
                            sink = int(sink)
                            if sink not in queued:
                                queued.add(sink)
                                frontier.setdefault(
                                    int(cc.level[sink]), set()).add(sink)
            if tracer is not None:
                span.note(recomputed=recomputed, changed=len(changed_gids))
        self._retimed.inc(recomputed)
        self._refreshes.inc()
        self._required = None
        # Heap pops report changed nets in topological order; match it.
        changed_gids.sort(key=lambda gid: cc.topo_index[gid])
        return tuple(
            cc.nets[cc.num_inputs + gid] for gid in changed_gids
        )

    # ------------------------------------------------------------------
    # Reads (lazily refreshing)
    # ------------------------------------------------------------------
    def arrivals(self) -> Dict[str, float]:
        """The full, up-to-date arrival-time map (treat as read-only)."""
        self.refresh()
        return self._arrivals

    def arrival(self, net: str) -> float:
        self.refresh()
        return self._arrivals[net]

    def __getitem__(self, net: str) -> float:
        return self.arrival(net)

    def delay(self) -> float:
        """Longest input-to-output delay — :func:`circuit_delay`, incrementally."""
        self.refresh()
        if not self.circuit.outputs:
            return 0.0
        return max(self._arrivals[n] for n in self.circuit.outputs)

    def critical_path(self) -> Tuple[str, ...]:
        """Net names from a primary input to the latest primary output."""
        self.refresh()
        if not self.circuit.outputs:
            return ()
        worst = max(self.circuit.outputs, key=lambda n: self._arrivals[n])
        path: List[str] = []
        net: Optional[str] = worst
        while net is not None:
            path.append(net)
            net = self._pred[net]
        path.reverse()
        return tuple(path)

    def report(self) -> TimingReport:
        """A :class:`~repro.timing.sta.TimingReport` of the current state."""
        return TimingReport(dict(self.arrivals()), self.delay(),
                            self.critical_path())

    # ------------------------------------------------------------------
    # Required times and slacks (lazy backward pass)
    # ------------------------------------------------------------------
    def required_times(self, clock: Optional[float] = None) -> Dict[str, float]:
        """Required arrival time of every net for a target ``clock``.

        Defaults to the current circuit delay, making the critical path
        the zero-slack path.  Computed by one backward sweep when first
        asked for and cached until the next refresh actually retimes
        something (treat the returned map as read-only).  Nets feeding
        neither a gate nor a primary output have no deadline (``inf``).
        """
        self.refresh()
        if clock is None:
            clock = self.delay()
        if self._required is not None and self._required_clock == clock:
            return self._required
        from ..timing.elmore import gate_pin_delay

        required: Dict[str, float] = {
            net: (clock if net in self._outputs else float("inf"))
            for net in self._arrivals
        }
        for gate in reversed(self._topo):
            compiled = gate.compiled()
            config = gate.effective_config()
            load = self._load(gate.output)
            req_out = required[gate.output]
            for pin in gate.template.pins:
                net = gate.pin_nets[pin]
                t = req_out - gate_pin_delay(compiled, config, pin, self.tech,
                                             load)
                if t < required[net]:
                    required[net] = t
        self._required = required
        self._required_clock = clock
        return required

    def slack(self, net: str, clock: Optional[float] = None) -> float:
        """``required - arrival`` of one net (0.0 on the critical path)."""
        return self.required_times(clock)[net] - self._arrivals[net]

    def slacks(self, clock: Optional[float] = None) -> Dict[str, float]:
        required = self.required_times(clock)
        return {net: required[net] - self._arrivals[net] for net in required}

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Detach from the circuit's edit notifications."""
        if self._subscribed:
            self.circuit.remove_edit_listener(self._on_edit)
            self._subscribed = False

    def __enter__(self) -> "TimingCache":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"TimingCache({self.circuit.name!r}, "
            f"dirty_seeds={len(self._dirty)}, retimed={self.gates_retimed})"
        )
