"""Delta-driven ECO search: incremental local search over what-if trials.

The paper frames low-power transistor reordering as a cost-driven
search over local transformations; :func:`search_circuit` is that
search, run on top of the incremental substrate instead of full
recomputes.  Every candidate move is priced by trial-applying it to a
live :class:`~repro.incremental.cache.StatsCache` through
:class:`~repro.incremental.eco.WhatIf` — cone-sized re-propagation,
then rollback — so scoring a move costs the edited gate's fanout cone,
not the whole circuit (``benchmarks/bench_eco_search.py`` holds this
to a >= 10x floor against naive full-circuit rescoring).

In compiled mode (``compiled=`` / the ``REPRO_COMPILED`` flag) the
greedy pure-power sweep goes one step further: all same-gate
candidates of a pass are priced in one vectorised kernel invocation
(:class:`_BatchPricer`) instead of per-move trials — reorders touch
only the gate's own power row, retemplate cones resettle on scratch
copies of the compiled backend's arrays — with scores, accept
decisions and the move trace bit-identical to the WhatIf path
(``benchmarks/bench_compiled_sampler.py`` holds the pass-level
speedup to a >= 5x floor and ``tests/test_batch_pricing.py`` the
artifact equality).

Two strategies, both deterministic for a given ``seed``:

``"greedy"``  steepest descent to a fixed point: per gate, trial every
              candidate move (batched in one :class:`WhatIf` so
              same-gate candidates overwrite each other and the cone
              is re-propagated once per candidate instead of twice),
              accept the best improving one, and re-enqueue exactly
              the gates whose decision context the acceptance changed:
              the accepted gate's fanin drivers (their load changed)
              and, for template swaps, its fanout cone (their input
              statistics changed).
``"anneal"``  simulated annealing with a geometric temperature
              schedule.  The RNG comes from the same CRC-stable
              substream scheme as the samplers
              (:func:`repro.sim.bitsim.stream_rng`, seeded by
              ``(seed, crc32(label))``) — never a default-seeded
              ``random.Random`` — so the accepted-move trace is
              byte-stable across runs and processes.

Moves are gate-local: ``reorder`` (every other configuration of the
gate's template) and, opt-in, ``retemplate`` (same-pin-tuple library
cells; these change the logic function, so they stay off unless the
caller explicitly asks for a re-synthesis-style search).

Opt-in **structural** move families (``structural=``) run after the
main strategy, in canonical order: ``buffer`` inserts a buffer (a
``buf`` cell, or an inverter pair when the library has none) on the K
most-loaded multi-sink nets; ``dup`` duplicates the drivers of the K
most-loaded multi-sink nets and moves half the sink pins onto the
copy; ``sweep`` removes dead gates (no sinks, output not a primary
output) in one reverse-topological pass.  Each candidate is a short
sequence of structural edits (``AddGate``/``RemoveGate``/``RewireNet``)
priced through one rolled-back :class:`WhatIf` trial and greedily
accepted when improving; accepted moves record list-valued script
entries that replay through the same ``repro eco`` JSON vocabulary as
everything else.  Structural families need a backend that can maintain
statistics across structural edits (the analytic one; sampled backends
refuse).

Objectives are weighted, baseline-normalised power/delay scores.  All
delay reads go through a live
:class:`~repro.incremental.timing.TimingCache` sharing the stats
cache's fanout index: delay-bearing objectives price every candidate
move cone-locally (arrival re-propagation with early cut-off instead
of a full STA per candidate — ``benchmarks/bench_incremental_timing.py``
holds this to a >= 10x floor), and the pure power objective still only
reads delay per *accepted* move, now cone-sized too.
"""

from __future__ import annotations

import json
import math
import time
import zlib
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ..circuit.netlist import (
    AddGate,
    Circuit,
    RemoveGate,
    RewireNet,
    SetConfig,
    SetTemplate,
    lookup_template,
)
from ..compiled.flags import use_compiled
from ..core.power_model import GatePowerModel
from ..gates.capacitance import pin_terminal_counts
from ..obs import progress as _progress
from ..obs import trace as _trace
from ..obs.metrics import REGISTRY as _GLOBAL_METRICS
from ..robust import faults as _faults
from ..robust.checkpoint import (
    DEFAULT_CHECKPOINT_EVERY,
    CheckpointError,
    load_checkpoint,
    save_checkpoint,
)
from ..sim.bitsim import stream_rng
from ..stochastic.signal import SignalStats
from ..timing.sta import DEFAULT_PO_LOAD
from .cache import StatsCache
from .eco import WhatIf, script_edit_label
from .timing import TimingCache

__all__ = [
    "STRATEGIES",
    "SEARCH_OBJECTIVES",
    "STRUCTURAL_FAMILIES",
    "Objective",
    "make_objective",
    "Move",
    "AcceptedMove",
    "SearchResult",
    "swap_groups",
    "enumerate_moves",
    "search_circuit",
]

STRATEGIES = ("greedy", "anneal")
SEARCH_OBJECTIVES = ("power", "delay", "power-delay")
#: Opt-in structural move families, in the canonical order they run.
STRUCTURAL_FAMILIES = ("buffer", "dup", "sweep")

#: Structural moves accepted across all searches of the process
#: (:mod:`repro.obs.metrics` global registry; snapshotted into traces).
_MOVES_STRUCTURAL = _GLOBAL_METRICS.counter("search.moves_structural")

#: Checkpoints written / runs resumed across the process (robust layer).
_CHECKPOINTS_SAVED = _GLOBAL_METRICS.counter("robust.checkpoints")
_RESUMES = _GLOBAL_METRICS.counter("robust.resumes")

#: Accept only strictly improving greedy moves beyond this score margin
#: (scores are baseline-normalised, so this is a relative threshold);
#: keeps float noise from producing accept/undo churn.
_TOL = 1e-12


# ----------------------------------------------------------------------
# Objectives
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Objective:
    """Weighted power/delay cost, normalised by the baseline values.

    ``score = power_weight * P/P0 + delay_weight * D/D0`` — the
    baseline circuit scores exactly ``power_weight + delay_weight``,
    so deltas are comparable across circuits and units.
    """

    name: str
    power_weight: float = 1.0
    delay_weight: float = 0.0

    def __post_init__(self):
        if self.power_weight < 0.0 or self.delay_weight < 0.0:
            raise ValueError("objective weights must be non-negative")
        if self.power_weight == 0.0 and self.delay_weight == 0.0:
            raise ValueError("objective needs at least one non-zero weight")

    @property
    def needs_delay(self) -> bool:
        """Whether scoring a trial requires an STA run."""
        return self.delay_weight != 0.0

    def score(self, power: float, delay: float,
              power0: float, delay0: float) -> float:
        value = 0.0
        if self.power_weight:
            value += self.power_weight * (power / power0 if power0 else power)
        if self.delay_weight:
            value += self.delay_weight * (delay / delay0 if delay0 else delay)
        return value


def make_objective(objective: Union[str, Objective],
                   delay_weight: Optional[float] = None) -> Objective:
    """Resolve an objective name (or pass an :class:`Objective` through).

    ``"power"`` and ``"delay"`` are single-term; ``"power-delay"`` is
    the weighted product objective with ``delay_weight`` (default 0.5)
    against ``1 - delay_weight`` on power.
    """
    if isinstance(objective, Objective):
        if delay_weight is not None:
            raise TypeError("delay_weight conflicts with an Objective instance")
        return objective
    if objective == "power":
        if delay_weight is not None:
            raise ValueError("delay_weight requires the 'power-delay' objective")
        return Objective("power", 1.0, 0.0)
    if objective == "delay":
        if delay_weight is not None:
            raise ValueError("delay_weight requires the 'power-delay' objective")
        return Objective("delay", 0.0, 1.0)
    if objective == "power-delay":
        weight = 0.5 if delay_weight is None else float(delay_weight)
        if not 0.0 < weight < 1.0:
            raise ValueError("delay_weight must lie strictly between 0 and 1")
        return Objective("power-delay", 1.0 - weight, weight)
    raise ValueError(
        f"unknown objective {objective!r}; choose from {SEARCH_OBJECTIVES}"
    )


# ----------------------------------------------------------------------
# Move enumeration
# ----------------------------------------------------------------------
def _config_index(template, config, gate_name: str) -> int:
    """Position of ``config`` in the template's enumeration.

    A hand-built :class:`GateConfig` can legally configure a gate
    without appearing in :meth:`GateTemplate.configurations`; such a
    configuration has no script form, and the error says so instead of
    leaking a bare ``StopIteration``.
    """
    key = config.key()
    for index, candidate in enumerate(template.configurations()):
        if candidate.key() == key:
            return index
    raise ValueError(
        f"gate {gate_name}: accepted configuration is not in template "
        f"{template.name!r}'s enumeration and cannot be scripted"
    )


def _structural_entry(circuit: Circuit,
                      edit: Union[AddGate, RemoveGate, RewireNet]
                      ) -> Dict[str, object]:
    """One structural edit in the ``repro eco`` JSON vocabulary."""
    if isinstance(edit, AddGate):
        entry: Dict[str, object] = {
            "op": "add-gate",
            "gate": edit.gate,
            "template": edit.template,
            "pins": dict(edit.pin_nets),
            "output": edit.output,
        }
        if edit.config is not None:
            template = lookup_template(circuit.library, edit.template)
            entry["config"] = _config_index(template, edit.config, edit.gate)
        return entry
    if isinstance(edit, RemoveGate):
        return {"op": "remove-gate", "gate": edit.gate}
    if isinstance(edit, RewireNet):
        return {"op": "rewire", "gate": edit.gate, "pin": edit.pin,
                "net": edit.net}
    raise TypeError(f"not a structural edit: {edit!r}")


@dataclass(frozen=True)
class Move:
    """One candidate local transformation of one gate.

    Legacy moves (``reorder``/``retemplate``) carry a single edit; the
    structural families (``buffer``/``dup``/``sweep``) carry a tuple of
    structural edits applied as one unit — ``gate`` then names the
    structural anchor (the driver being shielded, the gate duplicated
    or removed) and ``label`` the human-readable trace form.
    """

    gate: str
    kind: str  # "reorder" | "retemplate" | a STRUCTURAL_FAMILIES member
    edit: Union[SetConfig, SetTemplate, Tuple[object, ...]]
    label: Optional[str] = None

    @property
    def structural(self) -> bool:
        return isinstance(self.edit, tuple)

    @property
    def edits(self) -> Tuple[object, ...]:
        """The move's edit sequence (a 1-tuple for legacy moves)."""
        return self.edit if isinstance(self.edit, tuple) else (self.edit,)

    def script_entry(self, circuit: Circuit
                     ) -> Union[Dict[str, object], List[Dict[str, object]]]:
        """The ``repro eco`` JSON vocabulary form of this move.

        Legacy single-edit moves return one entry dict; structural
        moves return the list of entries their edit sequence replays
        as (flattened into scripts by :meth:`SearchResult.eco_script`).
        """
        if isinstance(self.edit, tuple):
            return [_structural_entry(circuit, edit) for edit in self.edit]
        if isinstance(self.edit, SetConfig):
            if self.edit.config is None:
                index = -1
            else:
                template = circuit.gate(self.gate).template
                index = _config_index(template, self.edit.config, self.gate)
            return {"op": "reorder", "gate": self.gate, "config": index}
        entry = {"op": "retemplate", "gate": self.gate,
                 "template": self.edit.template}
        if self.edit.config is not None:
            template = lookup_template(circuit.library, self.edit.template)
            entry["config"] = _config_index(template, self.edit.config,
                                            self.gate)
        return entry


def swap_groups(circuit: Circuit) -> Dict[Tuple[str, ...], List[str]]:
    """Same-pin-tuple template groups of the circuit's library.

    Positional rebinding keeps any same-arity swap structurally valid;
    restricting to identical pin tuples keeps the candidate set the
    realistic one (the grouping the edit-equivalence property tests
    use).  Only groups with at least two members are returned.
    """
    groups: Dict[Tuple[str, ...], List[str]] = {}
    for template in circuit.library:
        groups.setdefault(template.pins, []).append(template.name)
    return {pins: names for pins, names in groups.items() if len(names) > 1}


def enumerate_moves(circuit: Circuit, gate_name: str,
                    retemplate: bool = False,
                    groups: Optional[Mapping[Tuple[str, ...], Sequence[str]]] = None,
                    ) -> List[Move]:
    """Candidate moves for one gate, in deterministic order.

    Reorder moves (every configuration other than the current one)
    come first; retemplate moves (same-pin-tuple cells, only with
    ``retemplate=True``) follow.  The split matters to the batched
    trial loop: all reorder candidates share the gate's current
    template, so they may overwrite each other inside one
    :class:`WhatIf`, but never after a template swap.
    """
    gate = circuit.gate(gate_name)
    current = gate.effective_config().key()
    moves = [
        Move(gate_name, "reorder", SetConfig(gate_name, config))
        for config in gate.template.configurations()
        if config.key() != current
    ]
    if retemplate:
        if groups is None:
            groups = swap_groups(circuit)
        for name in groups.get(gate.template.pins, ()):
            if name != gate.template.name:
                moves.append(
                    Move(gate_name, "retemplate", SetTemplate(gate_name, name))
                )
    return moves


# ----------------------------------------------------------------------
# Results
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AcceptedMove:
    """One committed move of the search trace."""

    index: int
    """Acceptance order (0-based)."""

    trial: int
    """Candidate evaluations performed when this move was accepted."""

    gate: str
    kind: str
    label: str
    entry: Union[Dict[str, object], List[Dict[str, object]]]
    """The move in the ``repro eco`` JSON vocabulary (replayable); a
    structural move carries its whole edit sequence as a list."""

    delta_power: float
    delta_delay: float
    power_after: float
    delay_after: float
    cone: int
    """Gates re-propagated to commit this move (dirty-cone work)."""

    temperature: float
    """Annealing temperature at acceptance (0.0 under greedy descent)."""

    retimed: int = 0
    """Gate arrivals recomputed for this move's delay reading (the
    incremental-timing mirror of ``cone``; covers everything retimed
    since the previous accepted move's reading)."""


@dataclass
class SearchResult:
    """The searched circuit plus the full bookkeeping of how it got there."""

    circuit: Circuit
    accepted: List[AcceptedMove]
    net_stats: Dict[str, SignalStats]
    power_before: float
    power_after: float
    delay_before: float
    delay_after: float
    trials: int
    """Candidate moves evaluated (trial-applied and scored)."""

    rounds: int
    gates_repropagated: int
    """Total gate stat re-propagations the cache performed for the search."""

    strategy: str
    objective: Objective
    seed: int
    backend: str
    budget_exhausted: bool = False
    elapsed_s: float = 0.0
    gates_retimed: int = 0
    """Total gate arrival recomputations the timing cache performed for
    the search (delay-bearing objectives price every trial through it;
    a naive searcher would pay a full STA — ``trials * gates`` arrival
    computations — instead)."""

    restarts: Optional[List[Dict[str, object]]] = None
    """Per-restart summaries of a portfolio run (``None`` for a single
    search).  Pure functions of ``(circuit, input_stats, seed)`` — no
    wall-clock fields — so the artifact stays byte-identical across
    ``jobs`` settings."""

    restart_index: Optional[int] = None
    """Which restart the headline results (trace, power, delay) came
    from: the best objective score, ties broken by restart index."""

    jobs: int = 1
    """Worker processes the portfolio ran on (1 = inline).  A run
    descriptor like ``elapsed_s``, not a result: stripped from golden
    artifact comparisons by :func:`repro.bench.runner.strip_timing`."""

    partial: bool = False
    """The search was interrupted (SIGTERM/Ctrl-C) or lost restarts it
    could not recover; the result is the best state reached, not the
    full run.  Partial artifacts carry ``"partial": true`` — complete
    runs omit the key entirely, so their bytes are unchanged."""

    failures: Optional[List[Dict[str, object]]] = None
    """Portfolio restarts that did not complete (after supervision
    retries), as ``{"index", "status", "error"}`` rows; ``None`` when
    everything ran."""

    interrupted: bool = False
    """The run stopped on SIGTERM/Ctrl-C specifically (a subset of
    ``partial``); the CLI exits 130 for these.  Not serialised —
    ``partial`` is the artifact-level signal."""

    @property
    def reduction(self) -> float:
        if self.power_before <= 0.0:
            return 0.0
        return 1.0 - self.power_after / self.power_before

    def eco_script(self) -> List[Dict[str, object]]:
        """The accepted moves as a replayable ``repro eco`` JSON script.

        Structural moves carry list-valued entries (one edit sequence);
        they flatten here, so the script replays edit by edit in the
        exact order the search committed them.
        """
        script: List[Dict[str, object]] = []
        for move in self.accepted:
            if isinstance(move.entry, list):
                script.extend(dict(entry) for entry in move.entry)
            else:
                script.append(dict(move.entry))
        return script

    def to_artifact(self, meta: Optional[Mapping[str, object]] = None
                    ) -> Dict[str, object]:
        """Canonical JSON artifact (``repro bench`` schema conventions).

        Deterministic for a fixed seed: every field other than
        ``elapsed_s`` (stripped by
        :func:`repro.bench.runner.strip_timing`) is a pure function of
        the inputs, so repeated runs are byte-identical after
        :func:`repro.bench.runner.dumps_artifact`.
        """
        from ..bench.runner import SCHEMA_VERSION

        search: Dict[str, object] = {
            "circuit": self.circuit.name,
            "gates": len(self.circuit),
            "strategy": self.strategy,
            "objective": {
                "name": self.objective.name,
                "power_weight": self.objective.power_weight,
                "delay_weight": self.objective.delay_weight,
            },
            "seed": self.seed,
            "backend": self.backend,
        }
        if meta:
            search.update(meta)
        artifact: Dict[str, object] = {
            "schema": SCHEMA_VERSION,
            "search": search,
            "baseline": {"power": self.power_before, "delay": self.delay_before},
            "final": {
                "power": self.power_after,
                "delay": self.delay_after,
                "reduction": self.reduction,
            },
            "trials": self.trials,
            "rounds": self.rounds,
            "accepted_count": len(self.accepted),
            "gates_repropagated": self.gates_repropagated,
            "gates_retimed": self.gates_retimed,
            "budget_exhausted": self.budget_exhausted,
            "elapsed_s": self.elapsed_s,
            "moves": [
                {
                    "index": move.index,
                    "trial": move.trial,
                    "gate": move.gate,
                    "kind": move.kind,
                    "label": move.label,
                    "edit": move.entry,
                    "delta_power": move.delta_power,
                    "delta_delay": move.delta_delay,
                    "power_after": move.power_after,
                    "delay_after": move.delay_after,
                    "cone": move.cone,
                    "retimed": move.retimed,
                    "temperature": move.temperature,
                }
                for move in self.accepted
            ],
        }
        if self.restarts is not None:
            artifact["portfolio"] = {
                "count": len(self.restarts),
                "winner": self.restart_index,
                "jobs": self.jobs,
                "restarts": [dict(entry) for entry in self.restarts],
            }
            if self.failures:
                artifact["portfolio"]["failed"] = [
                    dict(entry) for entry in self.failures
                ]
        if self.partial:
            artifact["partial"] = True
        return artifact


# ----------------------------------------------------------------------
# Batched candidate pricing (compiled mode)
# ----------------------------------------------------------------------
class _BatchPricer:
    """Vectorised same-gate candidate pricing through the compiled kernels.

    A pure-power greedy pass does not need a WhatIf trial per
    candidate: a ``reorder`` never changes the gate's logic function —
    net statistics, pin terminal counts and hence every net load are
    untouched, so only the gate's own power row moves — and a
    ``retemplate`` cone can be resettled on scratch copies of the
    compiled analytic backend's (P, D) arrays without ever editing the
    circuit.  Candidate totals rebuild the exact left fold
    :meth:`StatsCache.total_power` runs: the baseline per-gate totals
    with the repriced rows substituted, folded in topological order via
    ``np.cumsum`` (a strictly sequential partial sum, and ``0.0 + x``
    is exact), so scores, accept decisions and the move trace are
    bit-identical to the per-move WhatIf path.  Only the
    re-propagation work — ``gates_repropagated`` — shrinks.

    Bookkeeping parity with the rolled-back trials is explicit: every
    scored gate seeds the timing cache's dirty set through
    :meth:`TimingCache.mark_dirty` (a trial apply would have notified
    it, and rollback leaves the seeds in place), so ``retimed`` counts
    and accept-time delay readings match; pending rollback cones are
    flushed exactly where opening the WhatIf would have flushed them,
    so accept-time ``cone`` counts match too.

    :meth:`score` returns ``None`` when it cannot price a batch this
    way — retemplate candidates on a backend without live (P, D)
    arrays (the sampled backends' lane histories cannot be trial-run
    from here) — and the caller falls back to the WhatIf loop.
    """

    def __init__(self, state: "_Search"):
        self.state = state
        self.cache = state.cache
        self.kernel = self.cache.power_kernel()
        self.cc = self.kernel.cc
        self._templates = {t.name: t for t in state.circuit.library}
        #: Gate names in topological order — the exact iteration order
        #: of :meth:`StatsCache.total_power`'s summation.
        self._names = sorted(self.cache.topo_index,
                             key=self.cache.topo_index.__getitem__)
        #: Candidate-template statistics classes, keyed by template
        #: name (the compiled circuit's own key space) and built
        #: lazily without touching the circuit's class registry.
        self._stats_classes: Dict[str, object] = {}
        self._totals: Optional[np.ndarray] = None

    def invalidate(self) -> None:
        """Drop the cached baseline totals (an accept changed rows)."""
        self._totals = None

    def _baseline_totals(self) -> np.ndarray:
        totals = self._totals
        if totals is None:
            power = self.cache._power
            totals = np.fromiter(
                (power[name].total for name in self._names),
                dtype=float, count=len(self._names),
            )
            self._totals = totals
        return totals

    def _fold(self, replacements: List[Dict[int, float]]) -> np.ndarray:
        """Candidate totals: baseline rows with replacements, refolded."""
        baseline = self._baseline_totals()
        rows = np.tile(baseline, (len(replacements), 1))
        for k, repl in enumerate(replacements):
            for pos, value in repl.items():
                rows[k, pos] = value
        return np.cumsum(rows, axis=1)[:, -1]

    def score(self, moves: Sequence["Move"]
              ) -> Optional[List[Tuple[float, float, float]]]:
        """Price one same-gate batch; ``None`` defers to the WhatIf loop."""
        state = self.state
        # Flush pending work exactly where opening the WhatIf would
        # have (leftover rollback cones from annealing trials), so the
        # accept-time cone sizes match the per-move path.
        self.cache._refresh_power()
        if moves[0].kind == "reorder":
            totals = self._reorder_totals(moves)
        else:
            totals = self._retemplate_totals(moves)
            if totals is None:
                return None
        state.timing.mark_dirty(moves[0].gate)
        state.trials += len(moves)
        delay = state.delay
        scored = []
        for total in totals:
            power = float(total)
            scored.append((
                state.objective.score(power, delay, state.power0,
                                      state.delay0),
                power, delay,
            ))
        return scored

    def _reorder_totals(self, moves: Sequence["Move"]) -> np.ndarray:
        cache = self.cache
        cc = self.cc
        kernel = self.kernel
        gate = self.state.circuit.gate(moves[0].gate)
        template = gate.template
        gid = cc.gate_id[gate.name]
        cc._sync_codes()
        load = cc.net_loads(kernel.model.tech, cache.po_load)[cc.out_net[gid]]
        loads = np.asarray([load])
        p_in, d_in = kernel._gather([gid], len(template.pins), cache._stats)
        pos = cache.topo_index[gate.name]
        replacements = []
        for move in moves:
            config = move.edit.config
            if config is None:
                config = template.default_config()
            cls = kernel.class_for_gate(
                template.compile_config(config),
                (template.name, config.key()),
            )
            *_, totals = cls.evaluate(kernel.model, p_in, d_in, loads)
            replacements.append({pos: float(totals[0])})
        return self._fold(replacements)

    def _retemplate_totals(self, moves: Sequence["Move"]
                           ) -> Optional[np.ndarray]:
        from ..compiled.backend import CompiledAnalyticBackend
        from ..compiled.circuit import _StatsClass

        cache = self.cache
        backend = cache.backend
        if not isinstance(backend, CompiledAnalyticBackend):
            return None
        cc = self.cc
        kernel = self.kernel
        model = kernel.model
        tech = model.tech
        circuit = self.state.circuit
        gate_name = moves[0].gate
        gate = circuit.gate(gate_name)
        gid = cc.gate_id[gate_name]
        cc._sync_codes()
        base_loads = cc.net_loads(tech, cache.po_load)
        topo = cache.topo_index
        cone = cache.index.cone_from_gates([gate_name])
        rest = sorted((name for name in cone if name != gate_name),
                      key=topo.__getitem__)
        rest_ids = np.fromiter((cc.gate_id[n] for n in rest),
                               dtype=np.int64, count=len(rest))
        preds = [g.name for g in circuit.fanin_drivers(gate_name)]
        fanin = cc._fanin_matrix(np.asarray([gid], dtype=np.int64),
                                 len(gate.template.pins))
        out = int(cc.out_net[gid])
        slot_lo = int(cc.fanin_ptr[gid])
        slot_hi = int(cc.fanin_ptr[gid + 1])
        # Ascending-slot occurrence lists of the gate's fanin nets —
        # the np.add.at accumulation order of net_loads.
        net_slots = {
            net: [int(s) for s in np.flatnonzero(cc.fanin_net == net)]
            for net in sorted({int(n) for n in cc.fanin_net[slot_lo:slot_hi]})
        }
        replacements = []
        for move in moves:
            new_template = self._templates[move.edit.template]
            config = move.edit.config
            if config is None:
                config = new_template.default_config()
            compiled = new_template.compile_config(config)
            # Candidate statistics: the gate's new output first (it is
            # strictly the lowest level of its cone), then the rest of
            # the cone level-batched on scratch copies — the exact
            # group sequence a trial resettle of the cone runs.
            prob = backend._prob.copy()
            dens = backend._dens.copy()
            stats_cls = self._stats_classes.get(new_template.name)
            if stats_cls is None:
                stats_cls = _StatsClass(compiled.output_tt)
                self._stats_classes[new_template.name] = stats_cls
            p_out, d_out = cc._stats_group(stats_cls, fanin, prob, dens)
            prob[out] = p_out[0]
            dens[out] = d_out[0]
            cc.resettle_stats(rest_ids, prob, dens)
            # Candidate loads: only the gate's own pins change terminal
            # counts, so only its fanin nets need their load refolded.
            counts = pin_terminal_counts(compiled)
            cand_counts = [counts[pin] for pin in new_template.pins]
            cand_loads: Dict[int, float] = {}
            for net, slots in net_slots.items():
                value = 0.0
                for s in slots:
                    if slot_lo <= s < slot_hi:
                        count = cand_counts[s - slot_lo]
                    else:
                        count = int(cc.slot_count[s])
                    value = value + count * tech.c_gate
                if cc.is_output[net]:
                    value = value + cache.po_load
                cand_loads[net] = value

            def total_of(rid: int, cls) -> float:
                matrix = cc._fanin_matrix(np.asarray([rid], dtype=np.int64),
                                          cls.arity)
                net = int(cc.out_net[rid])
                load = cand_loads.get(net)
                if load is None:
                    load = base_loads[net]
                *_, totals = cls.evaluate(
                    model, prob[matrix], dens[matrix],
                    np.asarray([load], dtype=float),
                )
                return float(totals[0])

            # Repriced rows: the gate itself (new class), its cone
            # (new input statistics) and its fanin drivers (new loads)
            # — exactly the trial's power-dirty set.
            repl = {
                topo[gate_name]: total_of(
                    gid,
                    kernel.class_for_gate(
                        compiled, (new_template.name, config.key())),
                )
            }
            for name, rid in zip(rest, rest_ids):
                repl[topo[name]] = total_of(
                    int(rid),
                    kernel.class_for_code(int(cc.timing_code[rid])),
                )
            for name in preds:
                rid = cc.gate_id[name]
                repl[topo[name]] = total_of(
                    rid, kernel.class_for_code(int(cc.timing_code[rid]))
                )
            replacements.append(repl)
        return self._fold(replacements)


# ----------------------------------------------------------------------
# Checkpoint/resume (repro.robust)
# ----------------------------------------------------------------------
def _search_fingerprint(circuit: Circuit,
                        input_stats: Mapping[str, SignalStats],
                        params: Mapping[str, object]) -> int:
    """CRC of everything a checkpoint must agree with to be resumable.

    Covers the circuit (via :func:`~repro.incremental.portfolio.circuit_spec`
    — structure, templates, configurations, gate order), the input
    statistics and the search parameters, so a checkpoint from a
    different circuit, stimulus or parameterisation is rejected up
    front instead of resuming into silent divergence.  ``jobs`` and
    ``compiled`` are deliberately excluded: both are guaranteed not to
    change results, so resuming across them is legal.
    """
    from .portfolio import circuit_spec

    body = {
        "spec": circuit_spec(circuit),
        "input_stats": [
            (net, input_stats[net].probability, input_stats[net].density)
            for net in circuit.inputs
        ],
        "params": dict(params),
    }
    return zlib.crc32(
        json.dumps(body, sort_keys=True, default=str).encode("utf-8")
    )


class _Checkpointer:
    """Periodic search-state snapshots, taken only at accept boundaries.

    :meth:`maybe_save` is called immediately after
    :meth:`_Search.accept` returns — the one point where both caches
    are guaranteed fully flushed (``accept`` ends with a
    ``total_power()`` + ``delay()`` read, which settles every pending
    dirty cone, rejected-trial leftovers included) — so a snapshot
    never needs to capture dirty-set state and a resumed run replays
    onto byte-identical cache contents.  Counter fields are stored
    search-relative (offsets supplied by the caller), which is what
    makes the resumed artifact's ``gates_repropagated``/``gates_retimed``
    equal the uninterrupted run's.
    """

    def __init__(self, path: str, every: int, state: "_Search",
                 timing: TimingCache, fingerprint: int,
                 repropagated_before: int, retimed_before: int):
        self.path = path
        self.every = max(1, int(every))
        self.state = state
        self.timing = timing
        self.fingerprint = fingerprint
        self.repropagated_before = repropagated_before
        self.retimed_before = retimed_before
        #: Rounds contributed by phases that already completed (the
        #: annealing step count once polish starts).
        self.rounds_prior = 0
        self._last_count = len(state.accepted)

    def payload(self, phase: str,
                phase_state: Dict[str, object]) -> Dict[str, object]:
        state = self.state
        return {
            "kind": "search",
            "fingerprint": self.fingerprint,
            "phase": phase,
            "phase_state": phase_state,
            "rounds_prior": self.rounds_prior,
            "accepted": [asdict(move) for move in state.accepted],
            "trials": state.trials,
            "fresh": state._fresh,
            "power": state.power,
            "delay": state.delay,
            "power0": state.power0,
            "delay0": state.delay0,
            "budget_exhausted": state.budget_exhausted,
            "gates_repropagated": (state.cache.gates_repropagated
                                   - self.repropagated_before),
            "gates_retimed": (self.timing.gates_retimed
                              - self.retimed_before),
        }

    def maybe_save(self, phase: str, phase_state_fn) -> None:
        """Snapshot if ``every`` accepts landed since the last snapshot."""
        if len(self.state.accepted) - self._last_count < self.every:
            return
        self.save(phase, phase_state_fn())

    def save(self, phase: str, phase_state: Dict[str, object]) -> None:
        tracer = _trace.ACTIVE
        span = (tracer.span("robust.checkpoint.save", phase=phase,
                            accepted=len(self.state.accepted))
                if tracer is not None else _trace.NULL_SPAN)
        with span:
            save_checkpoint(self.path, self.payload(phase, phase_state))
        _CHECKPOINTS_SAVED.inc()
        self._last_count = len(self.state.accepted)


def _rng_state(rng: np.random.Generator) -> Dict[str, object]:
    """The generator's bit-generator state as JSON-safe plain data."""
    return rng.bit_generator.state


def _restore_rng(rng: np.random.Generator, state: Mapping[str, object]) -> None:
    """Restore a :func:`_rng_state` snapshot (exact: PCG64 state is
    integer-valued, and JSON round-trips Python ints losslessly)."""
    rng.bit_generator.state = dict(state)


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------
class _Search:
    """Shared trial/accept machinery of both strategies."""

    def __init__(self, cache: StatsCache, timing: TimingCache,
                 objective: Objective,
                 retemplate: bool, max_trials: Optional[int],
                 max_moves: Optional[int], batch_pricing: bool = False):
        self.cache = cache
        self.timing = timing
        self.circuit = cache.circuit
        self.objective = objective
        self.retemplate = retemplate
        self.groups = swap_groups(self.circuit) if retemplate else {}
        self.max_trials = max_trials
        self.max_moves = max_moves
        self.trials = 0
        #: Monotonic suffix counter for structural-edit gate names;
        #: deterministic (never reset, rejected candidates consume
        #: values too), so move traces are byte-stable.
        self._fresh = 0
        self.accepted: List[AcceptedMove] = []
        self.budget_exhausted = False
        #: Set when a phase caught SIGTERM/Ctrl-C: the caller returns a
        #: best-so-far result flagged ``partial`` instead of raising.
        self.interrupted = False
        self.power = cache.total_power()
        self.delay = timing.delay()
        self.power0 = self.power
        self.delay0 = self.delay
        self.score = objective.score(self.power, self.delay,
                                     self.power0, self.delay0)
        # Batched candidate pricing replaces per-move trials only when
        # no candidate needs a delay reading: a delay-bearing objective
        # must retime every trial state, which requires the edit to be
        # applied for real.
        self._pricer: Optional[_BatchPricer] = None
        if batch_pricing and not objective.needs_delay:
            self._pricer = _BatchPricer(self)

    # -- budget -------------------------------------------------------
    def out_of_budget(self) -> bool:
        if self.max_trials is not None and self.trials >= self.max_trials:
            self.budget_exhausted = True
        if self.max_moves is not None and len(self.accepted) >= self.max_moves:
            self.budget_exhausted = True
        return self.budget_exhausted

    # -- scoring ------------------------------------------------------
    def trial_delay(self) -> float:
        """Delay of the current (trial) circuit state; retimed only if scored.

        Cone-priced: the live :class:`TimingCache` re-propagates only
        the trial edit's timing-dirty cone (with early cut-off), not a
        full STA per candidate.
        """
        if not self.objective.needs_delay:
            return self.delay
        return self.timing.delay()

    def score_batch(self, moves: Sequence[Move]) -> List[Tuple[float, float, float]]:
        """Trial every move of one gate in a single rolled-back WhatIf.

        All moves target the same gate, so each apply overwrites the
        previous candidate and the circuit state always equals
        "baseline plus exactly this candidate" — one cone
        re-propagation per candidate instead of an apply/rollback pair.
        Returns ``(score, power, delay)`` per move.

        In compiled mode with a pure-power objective the whole batch
        is priced in one vectorised kernel pass instead
        (:class:`_BatchPricer`; bit-identical results, no trial
        applies), falling back to the WhatIf loop for the batches the
        pricer declines.
        """
        tracer = _trace.ACTIVE
        span = (tracer.span("search.score_batch", gate=moves[0].gate,
                            kind=moves[0].kind, moves=len(moves))
                if tracer is not None else _trace.NULL_SPAN)
        with span:
            if self._pricer is not None and self._pricer.cc.stale:
                # A structural trial or accept closed the compiled
                # lowering the pricer captured; rebuild against the
                # fresh one before pricing anything through it.
                self._pricer = _BatchPricer(self)
            if self._pricer is not None:
                scored = self._pricer.score(moves)
                if scored is not None:
                    if tracer is not None:
                        span.note(route="batch")
                    return scored
            if tracer is not None:
                span.note(route="whatif")
            scored = []
            with WhatIf(self.cache) as trial:
                for move in moves:
                    trial.apply(move.edit)
                    power = trial.power()
                    delay = self.trial_delay()
                    self.trials += 1
                    scored.append(
                        (self.objective.score(power, delay, self.power0,
                                              self.delay0),
                         power, delay)
                    )
        return scored

    def score_structural(self, move: Move) -> Tuple[float, float, float]:
        """Price one multi-edit structural move in a rolled-back WhatIf.

        The whole edit sequence applies inside a single trial — the
        move is one unit, never partially visible — and the rollback
        unwinds it edit by edit in reverse.  Returns
        ``(score, power, delay)``.
        """
        tracer = _trace.ACTIVE
        span = (tracer.span("search.score_batch", gate=move.gate,
                            kind=move.kind, moves=1)
                if tracer is not None else _trace.NULL_SPAN)
        with span:
            if tracer is not None:
                span.note(route="whatif")
            with WhatIf(self.cache) as trial:
                for edit in move.edits:
                    trial.apply(edit)
                power = trial.power()
                delay = self.trial_delay()
                self.trials += 1
            score = self.objective.score(power, delay, self.power0,
                                         self.delay0)
        return score, power, delay

    # -- acceptance ---------------------------------------------------
    def accept(self, move: Move, temperature: float = 0.0) -> None:
        """Commit one move for real and record the trace entry."""
        entry = move.script_entry(self.circuit)
        before = self.cache.gates_repropagated
        retimed_before = self.timing.gates_retimed
        for edit in move.edits:
            self.circuit.apply_edit(edit)
        if move.structural:
            _MOVES_STRUCTURAL.inc()
        power_after = self.cache.total_power()
        cone = self.cache.gates_repropagated - before
        delay_after = self.timing.delay()
        retimed = self.timing.gates_retimed - retimed_before
        self.accepted.append(AcceptedMove(
            index=len(self.accepted),
            trial=self.trials,
            gate=move.gate,
            kind=move.kind,
            label=(move.label if move.label is not None
                   else script_edit_label(move.edits[0])),
            entry=entry,
            delta_power=power_after - self.power,
            delta_delay=delay_after - self.delay,
            power_after=power_after,
            delay_after=delay_after,
            cone=cone,
            retimed=retimed,
            temperature=temperature,
        ))
        tracer = _trace.ACTIVE
        if tracer is not None:
            tracer.instant(
                "search.accept", gate=move.gate, kind=move.kind,
                trial=self.trials, delta_power=power_after - self.power,
                delta_delay=delay_after - self.delay, cone=cone,
                retimed=retimed, temperature=temperature,
            )
        self.power = power_after
        self.delay = delay_after
        self.score = self.objective.score(power_after, delay_after,
                                          self.power0, self.delay0)
        if self._pricer is not None:
            self._pricer.invalidate()

    def touched_gates(self, move: Move) -> List[str]:
        """Gates whose decision context an accepted ``move`` changed.

        The accepted gate's fanin drivers always re-enter the worklist
        (the gate's pin capacitances — their load — changed); template
        swaps additionally re-enqueue the accepted gate itself (a new
        configuration space) and its fanout cone (their input
        statistics changed).
        """
        touched = [g.name for g in self.circuit.fanin_drivers(move.gate)]
        if move.kind == "retemplate":
            touched.extend(self.cache.index.cone_from_gates([move.gate]))
        return touched

    def movable(self, gate_name: str) -> bool:
        gate = self.circuit.gate(gate_name)
        if gate.template.num_configurations() > 1:
            return True
        return bool(self.retemplate and self.groups.get(gate.template.pins))

    def fresh_gate_name(self, stem: str) -> str:
        """A gate name (with a free ``_n`` output net) unused anywhere."""
        circuit = self.circuit
        while True:
            self._fresh += 1
            name = f"{stem}{self._fresh}"
            net = f"{name}_n"
            if (name not in circuit and net not in circuit.inputs
                    and circuit.driver(net) is None):
                return name


def _greedy(state: _Search, max_rounds: Optional[int],
            checkpointer: Optional[_Checkpointer] = None,
            phase: str = "greedy",
            resume: Optional[Mapping[str, object]] = None) -> int:
    """Steepest descent to a fixed point; returns rounds run.

    ``resume`` restarts the descent mid-round from a checkpoint's phase
    state — the remaining queue (already in this round's order) plus
    the accumulated next-round worklist — without re-counting the
    current round.  Checkpoints are taken only right after an accept
    (the flushed safe point); SIGTERM/Ctrl-C sets ``state.interrupted``
    and returns the rounds finished so far instead of raising.
    """
    topo_index = state.cache.topo_index
    if resume is not None:
        rounds = int(resume["rounds"])
        queue = list(resume["queue"])
        worklist = set(resume["worklist"])
    else:
        rounds = 0
        queue = []
        worklist = {name for name in topo_index if state.movable(name)}
    try:
        while queue or (worklist and not state.out_of_budget()):
            if not queue:
                if max_rounds is not None and rounds >= max_rounds:
                    state.budget_exhausted = True
                    break
                rounds += 1
                queue = sorted(worklist, key=topo_index.__getitem__)
                worklist = set()
            queue_size = len(queue)
            tracer = _trace.ACTIVE
            span = (tracer.span("search.round", round=rounds, queue=queue_size)
                    if tracer is not None else _trace.NULL_SPAN)
            with span:
                accepted_before = len(state.accepted)
                while queue:
                    if state.out_of_budget():
                        queue = []
                        break
                    _faults.fire("search.step", match=len(state.accepted))
                    name = queue.pop(0)
                    moves = enumerate_moves(state.circuit, name,
                                            state.retemplate, state.groups)
                    best: Optional[Tuple[float, Move]] = None
                    # Reorder candidates share the gate's template and
                    # batch in one WhatIf; retemplate candidates batch
                    # in a second one (a reorder of the old template
                    # cannot legally follow a swap inside the same
                    # trial).
                    for kind in ("reorder", "retemplate"):
                        batch = [m for m in moves if m.kind == kind]
                        if not batch:
                            continue
                        for move, (score, _, _) in zip(
                                batch, state.score_batch(batch)):
                            delta = score - state.score
                            if delta < -_TOL and (best is None
                                                  or score < best[0]):
                                best = (score, move)
                    if best is not None:
                        state.accept(best[1])
                        worklist.update(
                            g for g in state.touched_gates(best[1])
                            if state.movable(g)
                        )
                        if checkpointer is not None:
                            checkpointer.maybe_save(phase, lambda: {
                                "rounds": rounds,
                                "queue": list(queue),
                                "worklist": sorted(worklist),
                            })
                if tracer is not None:
                    span.note(accepted=len(state.accepted) - accepted_before)
            sink = _progress.ACTIVE
            if sink is not None:
                sink.emit("search.round", round=rounds, queue=queue_size,
                          accepted=len(state.accepted), trials=state.trials,
                          score=state.score)
    except KeyboardInterrupt:
        state.interrupted = True
    return rounds


def _anneal(state: _Search, seed: int, initial_temp: float, cooling: float,
            moves_per_temp: int, anneal_trials: Optional[int],
            checkpointer: Optional[_Checkpointer] = None,
            resume: Optional[Mapping[str, object]] = None) -> int:
    """Metropolis annealing over single random moves; returns trials run.

    ``resume`` restores a checkpoint's phase state: the movable-gate
    list and budget as captured at anneal start (recomputing them from
    the replayed circuit could diverge — an accepted retemplate can
    change a gate's configuration count), the step counter, and the
    exact PCG64 RNG position, so the continued schedule draws the same
    stream the uninterrupted run would.
    """
    topo_index = state.cache.topo_index
    if resume is not None:
        movable = list(resume["movable"])
        if not movable:
            return int(resume["steps"])
        rng = stream_rng(seed, f"anneal:{state.circuit.name}")
        _restore_rng(rng, resume["rng"])
        budget = int(resume["budget"])
        steps = int(resume["steps"])
    else:
        movable = sorted(
            (name for name in topo_index if state.movable(name)),
            key=topo_index.__getitem__,
        )
        if not movable:
            return 0
        rng = stream_rng(seed, f"anneal:{state.circuit.name}")
        budget = (anneal_trials if anneal_trials is not None
                  else 32 * len(movable))
        steps = 0
    try:
        while steps < budget and not state.out_of_budget():
            _faults.fire("search.step", match=len(state.accepted))
            gate_name = movable[int(rng.integers(len(movable)))]
            moves = enumerate_moves(state.circuit, gate_name, state.retemplate,
                                    state.groups)
            temperature = initial_temp * cooling ** (steps // moves_per_temp)
            steps += 1
            if not moves:
                continue  # unreachable for movable gates; spends budget anyway
            move = moves[int(rng.integers(len(moves)))]
            tracer = _trace.ACTIVE
            span = (tracer.span("search.trial", gate=gate_name, kind=move.kind,
                                step=steps)
                    if tracer is not None else _trace.NULL_SPAN)
            with span:
                with WhatIf(state.cache) as trial:
                    trial.apply(move.edit)
                    power = trial.power()
                    delay = state.trial_delay()
                    state.trials += 1
                    score = state.objective.score(power, delay, state.power0,
                                                  state.delay0)
                    delta = score - state.score
                    if delta <= 0.0 or (
                        temperature > 0.0
                        and rng.random() < math.exp(-delta / temperature)
                    ):
                        accept = True
                    else:
                        accept = False
                if tracer is not None:
                    span.note(accept=accept, delta_score=delta,
                              temperature=temperature)
            # Rolled back either way; committing inside the trial would skip
            # the trace bookkeeping, so accepted moves re-apply for real.
            if accept:
                state.accept(move, temperature)
                if checkpointer is not None:
                    checkpointer.maybe_save("anneal", lambda: {
                        "movable": list(movable),
                        "budget": budget,
                        "steps": steps,
                        "rng": _rng_state(rng),
                    })
            sink = _progress.ACTIVE
            if sink is not None:
                sink.emit("search.anneal", step=steps, budget=budget,
                          accepted=len(state.accepted),
                          temperature=temperature, score=state.score)
    except KeyboardInterrupt:
        state.interrupted = True
    return steps


# ----------------------------------------------------------------------
# Structural move families
# ----------------------------------------------------------------------
def _ranked_drivers(state: _Search, k: int) -> List[str]:
    """Drivers of the K most externally loaded multi-sink nets.

    Ranked once against the state at call time — external load
    descending, gate creation order breaking ties — so the candidate
    order is deterministic and independent of hash randomisation.
    """
    ranked = sorted(
        (-state.cache._output_load(gate.output), position, gate.name)
        for position, gate in enumerate(state.circuit.gates)
        if len(state.cache.index.sinks(gate.output)) >= 2
    )
    return [name for _, _, name in ranked[:k]]


def _buffer_moves(state: _Search, k: int):
    """Buffer-insertion candidates for the K most-loaded nets.

    Each move adds a ``buf`` cell — or, when the library has no buffer,
    a logically transparent inverter pair — fed by the net and moves
    every sink pin onto the buffered copy, shielding the driver from
    the fanout load.  Moves materialise lazily against the
    then-current circuit, so earlier accepts are honoured.
    """
    library_names = {t.name for t in state.circuit.library}
    if "buf" in library_names:
        chain = ("buf",)
    elif "inv" in library_names:
        chain = ("inv", "inv")
    else:
        return
    for driver in _ranked_drivers(state, k):
        circuit = state.circuit
        if driver not in circuit:
            continue
        net = circuit.gate(driver).output
        sinks = state.cache.index.sinks(net)
        if len(sinks) < 2:
            continue
        edits: List[object] = []
        source = net
        for template_name in chain:
            template = circuit.library[template_name]
            name = state.fresh_gate_name(f"{driver}__buf")
            output = f"{name}_n"
            edits.append(
                AddGate(name, template_name, ((template.pins[0], source),),
                        output)
            )
            source = output
        for sink, pin in sinks:
            edits.append(RewireNet(sink.name, pin, source))
        yield Move(driver, "buffer", tuple(edits),
                   label=f"buffer {net} ({'+'.join(chain)}, "
                         f"{len(sinks)} pins)")


def _dup_moves(state: _Search, k: int):
    """Fanout-splitting duplication candidates for the K most-loaded nets.

    Each move clones the driver (same template, bindings and
    configuration) onto a fresh output net and moves the upper half of
    the sink pins onto the copy, halving the load either gate drives.
    """
    for name in _ranked_drivers(state, k):
        circuit = state.circuit
        if name not in circuit:
            continue
        gate = circuit.gate(name)
        sinks = state.cache.index.sinks(gate.output)
        if len(sinks) < 2:
            continue
        duplicate = state.fresh_gate_name(f"{name}__dup")
        new_net = f"{duplicate}_n"
        template = gate.template
        edits: List[object] = [AddGate(
            duplicate, template.name,
            tuple((pin, gate.pin_nets[pin]) for pin in template.pins),
            new_net, gate.config,
        )]
        moved = sinks[len(sinks) // 2:]
        edits.extend(RewireNet(sink.name, pin, new_net)
                     for sink, pin in moved)
        yield Move(name, "dup", tuple(edits),
                   label=f"dup {name} -> {duplicate} "
                         f"({len(moved)}/{len(sinks)} pins)")


def _sweep_moves(state: _Search):
    """Dead gates (no sinks, output not a PO), reverse-topologically.

    Reverse order makes one pass complete: removing a dead gate can
    only strand gates upstream of it, and those are visited later.
    """
    circuit = state.circuit
    outputs = frozenset(circuit.outputs)
    order = sorted(state.cache.topo_index,
                   key=state.cache.topo_index.__getitem__, reverse=True)
    for name in order:
        if name not in circuit:
            continue
        gate = circuit.gate(name)
        if gate.output in outputs:
            continue
        if state.cache.index.sinks(gate.output):
            continue
        yield Move(name, "sweep", (RemoveGate(name),),
                   label=f"sweep {name}")


def _structural(state: _Search, families: Sequence[str], nets_k: int) -> int:
    """Run the opt-in structural families; returns family passes run.

    Families run in the canonical :data:`STRUCTURAL_FAMILIES` order
    regardless of how the caller listed them.  Every candidate is
    priced by one rolled-back WhatIf trial of its whole edit sequence
    and greedily accepted when strictly improving — no randomness, so
    the trace stays byte-stable for a fixed input.
    """
    requested = frozenset(families)
    passes = 0
    tracer = _trace.ACTIVE
    span = (tracer.span(
                "search.structural", nets=nets_k,
                families=",".join(f for f in STRUCTURAL_FAMILIES
                                  if f in requested))
            if tracer is not None else _trace.NULL_SPAN)
    with span:
        accepted_before = len(state.accepted)
        try:
            for family in STRUCTURAL_FAMILIES:
                if family not in requested or state.out_of_budget():
                    continue
                passes += 1
                if family == "buffer":
                    moves = _buffer_moves(state, nets_k)
                elif family == "dup":
                    moves = _dup_moves(state, nets_k)
                else:
                    moves = _sweep_moves(state)
                for move in moves:
                    if state.out_of_budget():
                        break
                    score, _, _ = state.score_structural(move)
                    if score < state.score - _TOL:
                        state.accept(move)
        except KeyboardInterrupt:
            state.interrupted = True
        if tracer is not None:
            span.note(accepted=len(state.accepted) - accepted_before)
    return passes


def _portfolio(circuit: Circuit, input_stats: Mapping[str, SignalStats],
               objective: Objective, *, seed: int, restarts: int, jobs: int,
               backend, model, po_load, retemplate, max_trials, max_moves,
               max_rounds, initial_temp, cooling, moves_per_temp,
               anneal_trials, polish, structural, structural_nets,
               compiled, backend_kwargs,
               checkpoint_path: Optional[str] = None,
               resume_path: Optional[str] = None,
               deadline_s: Optional[float] = None,
               worker_retries: int = 2,
               fingerprint_params: Optional[Mapping[str, object]] = None,
               ) -> SearchResult:
    """Fan out CRC-seeded annealing restarts and merge them deterministically.

    Every field of the merged result is a pure function of the restart
    outcomes — winner by (score, index), work counters summed in
    restart order — so the artifact is byte-identical for any ``jobs``.
    The winner's accepted-move script replays onto a fresh copy to
    produce the returned circuit.

    Restarts are checkpointed at restart granularity: each completed
    outcome is appended to ``checkpoint_path`` (atomic, checksummed),
    and ``resume_path`` pre-fills those outcomes so only the missing
    restarts run.  Outcomes are pure functions of their payloads and
    floats round-trip JSON exactly, so a resumed merge is byte-identical
    to an uninterrupted one.  Crashed or hung workers are retried by
    the supervisor (``worker_retries``, per-attempt ``deadline_s``);
    restarts still missing at the end are reported in
    ``result.failures`` and flag the result ``partial`` instead of
    raising — the anytime path.
    """
    from .eco import resolve_edit
    from .portfolio import run_restarts

    start = time.perf_counter()
    params = {
        "objective": objective,
        "backend": backend,
        "model": model,
        "po_load": po_load,
        "retemplate": retemplate,
        "max_trials": max_trials,
        "max_moves": max_moves,
        "max_rounds": max_rounds,
        "initial_temp": initial_temp,
        "cooling": cooling,
        "moves_per_temp": moves_per_temp,
        "anneal_trials": anneal_trials,
        "polish": polish,
        "structural": structural,
        "structural_nets": structural_nets,
        "compiled": compiled,
        **backend_kwargs,
    }

    fingerprint = None
    if checkpoint_path is not None or resume_path is not None:
        fingerprint = _search_fingerprint(circuit, input_stats,
                                          fingerprint_params or {})
    cached: Dict[int, Dict[str, object]] = {}
    if resume_path is not None:
        payload = load_checkpoint(resume_path, expect_kind="portfolio")
        if payload.get("fingerprint") != fingerprint:
            raise CheckpointError(
                f"{resume_path}: checkpoint belongs to a different "
                f"portfolio search (circuit, stimulus or parameters differ)"
            )
        if payload.get("restarts") != restarts:
            raise CheckpointError(
                f"{resume_path}: checkpoint ran {payload.get('restarts')} "
                f"restarts, this search asks for {restarts}"
            )
        cached = {int(index): outcome
                  for index, outcome in payload["outcomes"].items()}
        _RESUMES.inc()
        tracer = _trace.ACTIVE
        if tracer is not None:
            tracer.instant("robust.resume", kind="portfolio",
                           cached=len(cached), restarts=restarts)
        sink = _progress.ACTIVE
        if sink is not None:
            sink.emit("robust.resume", force=True, kind="portfolio",
                      cached=len(cached), restarts=restarts)

    on_outcome = None
    if checkpoint_path is not None:
        def on_outcome(outcomes_so_far: Dict[int, Dict[str, object]]) -> None:
            tracer = _trace.ACTIVE
            span = (tracer.span("robust.checkpoint.save", kind="portfolio",
                                done=len(outcomes_so_far))
                    if tracer is not None else _trace.NULL_SPAN)
            with span:
                save_checkpoint(checkpoint_path, {
                    "kind": "portfolio",
                    "fingerprint": fingerprint,
                    "restarts": restarts,
                    "outcomes": {
                        str(index): outcome
                        for index, outcome in sorted(outcomes_so_far.items())
                    },
                })
            _CHECKPOINTS_SAVED.inc()

    run = run_restarts(circuit, input_stats, seed, restarts, jobs, params,
                       cached=cached, on_outcome=on_outcome,
                       deadline_s=deadline_s, retries=worker_retries)
    outcomes = [entry for entry in run.outcomes if entry is not None]
    if not outcomes:
        detail = "; ".join(
            f"restart {entry['index']}: {entry['error']}"
            for entry in run.failures
        ) or "interrupted before any restart finished"
        raise RuntimeError(f"portfolio search: no restarts completed ({detail})")
    partial = run.interrupted or bool(run.failures)
    best = min(outcomes, key=lambda entry: (entry["score"], entry["index"]))
    tracer = _trace.ACTIVE
    if tracer is not None:
        # Workers write their own portfolio.anneal spans to per-pid
        # shards; the parent still records one instant per restart
        # outcome plus the merge decision, so a summarize of just the
        # main file tells the portfolio story too.  Per-restart wall
        # time rides along in the outcome dicts and never reaches the
        # artifact (summaries select explicit keys below).
        for entry in outcomes:
            tracer.instant(
                "portfolio.restart", index=entry["index"],
                seed=entry["seed"], score=entry["score"],
                trials=entry["trials"], accepted=entry["accepted_count"],
                elapsed_s=entry.get("elapsed_s", 0.0),
            )
        tracer.instant("portfolio.merge", restarts=len(outcomes), jobs=jobs,
                       winner=best["index"], score=best["score"])

    work = circuit.copy()
    accepted = [AcceptedMove(**dict(move)) for move in best["moves"]]
    for move in accepted:
        entries = (move.entry if isinstance(move.entry, list)
                   else [move.entry])
        for entry in entries:
            work.apply_edit(resolve_edit(work, entry))
    summaries = [
        {
            key: entry[key]
            for key in (
                "index", "seed", "score", "power_after", "delay_after",
                "trials", "rounds", "accepted_count", "gates_repropagated",
                "gates_retimed", "budget_exhausted",
            )
        }
        for entry in outcomes
    ]
    return SearchResult(
        circuit=work,
        accepted=accepted,
        net_stats={
            net: SignalStats(probability, density)
            for net, probability, density in best["net_stats"]
        },
        power_before=best["power_before"],
        power_after=best["power_after"],
        delay_before=best["delay_before"],
        delay_after=best["delay_after"],
        trials=sum(entry["trials"] for entry in outcomes),
        rounds=best["rounds"],
        gates_repropagated=sum(
            entry["gates_repropagated"] for entry in outcomes),
        strategy="anneal",
        objective=objective,
        seed=seed,
        backend=best["backend"],
        budget_exhausted=any(entry["budget_exhausted"] for entry in outcomes),
        elapsed_s=time.perf_counter() - start,
        gates_retimed=sum(entry["gates_retimed"] for entry in outcomes),
        restarts=summaries,
        restart_index=best["index"],
        jobs=jobs,
        partial=partial,
        failures=(
            [{"index": entry["index"], "status": entry["status"],
              "error": entry["error"]} for entry in run.failures]
            if run.failures else None
        ),
        interrupted=run.interrupted,
    )


def search_circuit(
    circuit: Optional[Circuit] = None,
    input_stats: Optional[Mapping[str, SignalStats]] = None,
    *,
    cache: Optional[StatsCache] = None,
    strategy: str = "greedy",
    objective: Union[str, Objective] = "power",
    delay_weight: Optional[float] = None,
    backend="analytic",
    model: Optional[GatePowerModel] = None,
    po_load: float = DEFAULT_PO_LOAD,
    seed: int = 0,
    retemplate: bool = False,
    max_trials: Optional[int] = None,
    max_moves: Optional[int] = None,
    max_rounds: Optional[int] = None,
    initial_temp: float = 0.02,
    cooling: float = 0.9,
    moves_per_temp: int = 8,
    anneal_trials: Optional[int] = None,
    polish: bool = False,
    structural: Optional[Sequence[str]] = None,
    structural_nets: int = 4,
    restarts: Optional[int] = None,
    jobs: int = 1,
    compiled: Optional[bool] = None,
    checkpoint_path: Optional[str] = None,
    checkpoint_every: Optional[int] = None,
    resume_path: Optional[str] = None,
    deadline_s: Optional[float] = None,
    worker_retries: int = 2,
    **backend_kwargs,
) -> SearchResult:
    """Run the delta-driven local search and return the searched circuit.

    Either pass ``circuit`` + ``input_stats`` (a private copy is
    searched; the input circuit is never mutated) or a live ``cache``
    (its circuit is searched **in place** and the cache is left open —
    the caller owns it; ``backend``/``model``/``po_load`` and backend
    kwargs must then be left at their defaults).

    ``max_trials`` caps candidate evaluations, ``max_moves`` caps
    accepted moves, ``max_rounds`` caps greedy sweeps; hitting any one
    sets ``budget_exhausted`` on the result.  ``anneal_trials`` sets
    the annealing schedule length (default 32 x movable gates) without
    consuming the global caps; ``polish=True`` runs a greedy descent
    after annealing (still within the same budgets).

    ``structural=`` opts into the structural move families (any subset
    of :data:`STRUCTURAL_FAMILIES`: ``"buffer"``, ``"dup"``,
    ``"sweep"``), run after the main strategy in canonical order and
    within the same budgets; ``structural_nets`` sets the top-K net
    count the buffer and dup families consider.  Structural moves edit
    connectivity, so they need a backend that can maintain statistics
    across structural edits — the analytic one; asking for them on a
    sampled backend raises up front.

    ``restarts=N`` switches to **portfolio annealing**: N independent
    restarts seeded from CRC substreams of ``seed``
    (:func:`repro.incremental.portfolio.restart_seed`), fanned out over
    ``jobs`` worker processes (each on its own circuit copy and
    caches) and merged deterministically — best objective score, ties
    broken by restart index.  ``jobs=N`` alone implies
    ``restarts=DEFAULT_RESTARTS`` (a fixed count, never derived from
    ``jobs``).  The merged result carries the winner's trace plus
    per-restart summaries, and its artifact is byte-identical for any
    ``jobs`` value.  Portfolio mode needs ``strategy="anneal"`` and an
    owned circuit (not a live ``cache=``).

    ``compiled`` routes the statistics and timing hot loops through the
    flat-array kernels of :mod:`repro.compiled` (``None`` defers to the
    ``REPRO_COMPILED`` environment flag) and additionally prices each
    greedy pure-power candidate batch in one vectorised kernel pass
    instead of per-move trials; results — the move trace included —
    are bit-identical either way.

    Determinism: for a fixed ``(circuit, input_stats, seed)`` and
    parameters the accepted-move trace — and hence
    :meth:`SearchResult.to_artifact` minus ``elapsed_s``/``jobs`` — is
    byte-stable across runs and processes (greedy uses no randomness
    at all; annealing draws from a CRC-stable substream).

    **Fault tolerance** (:mod:`repro.robust`): ``checkpoint_path``
    snapshots the search state atomically every ``checkpoint_every``
    accepted moves (default
    :data:`~repro.robust.checkpoint.DEFAULT_CHECKPOINT_EVERY`), taken
    only at accept boundaries where both caches are fully flushed;
    ``resume_path`` restores such a snapshot — replaying the accepted
    trace onto a fresh copy and continuing mid-phase — with the hard
    invariant that the resumed run's artifact is **byte-identical** to
    an uninterrupted one.  Checkpoints cover the greedy/anneal/polish
    phases; the structural post-pass is not checkpointed (a kill there
    resumes from the last pre-structural snapshot and redoes it).
    Portfolio runs checkpoint at restart granularity instead, retry
    crashed/hung workers (``worker_retries`` attempts beyond the first,
    per-attempt ``deadline_s`` wall-time budget) and merge whatever
    completed into a ``partial`` result rather than raising.  SIGTERM
    or Ctrl-C mid-search returns the best-so-far result flagged
    ``partial=True`` instead of raising.  Checkpoint/resume need an
    owned circuit (not a live ``cache=``).
    """
    if strategy not in STRATEGIES:
        raise ValueError(f"unknown strategy {strategy!r}; choose from {STRATEGIES}")
    resolved = make_objective(objective, delay_weight)
    families: Tuple[str, ...] = tuple(structural) if structural else ()
    unknown_families = [f for f in families if f not in STRUCTURAL_FAMILIES]
    if unknown_families:
        raise ValueError(
            f"unknown structural move families {unknown_families}; "
            f"choose from {STRUCTURAL_FAMILIES}"
        )
    if structural_nets < 1:
        raise ValueError("structural_nets must be at least 1")

    from .portfolio import DEFAULT_RESTARTS

    if restarts is None and jobs != 1:
        restarts = DEFAULT_RESTARTS
    if checkpoint_every is not None and checkpoint_every < 1:
        raise ValueError("checkpoint_every must be at least 1")
    if deadline_s is not None and restarts is None:
        raise ValueError("deadline_s budgets portfolio restart attempts; "
                         "it needs restarts=/jobs= (portfolio mode)")
    if (checkpoint_path is not None or resume_path is not None) \
            and cache is not None:
        raise TypeError("checkpoint/resume need an owned circuit "
                        "(circuit/input_stats), not a live cache=")
    # Everything a checkpoint must agree with to be resumable.  ``jobs``
    # and ``compiled`` are excluded on purpose: both are guaranteed not
    # to change results, so resuming across them is legal.
    fingerprint_params = {
        "strategy": strategy,
        "objective": [resolved.name, resolved.power_weight,
                      resolved.delay_weight],
        "seed": seed,
        "retemplate": retemplate,
        "max_trials": max_trials,
        "max_moves": max_moves,
        "max_rounds": max_rounds,
        "initial_temp": initial_temp,
        "cooling": cooling,
        "moves_per_temp": moves_per_temp,
        "anneal_trials": anneal_trials,
        "polish": polish,
        "structural": list(families),
        "structural_nets": structural_nets,
        "backend": (backend if isinstance(backend, str)
                    else getattr(backend, "name", str(backend))),
        "po_load": po_load,
        "restarts": restarts,
        "backend_kwargs": dict(sorted(backend_kwargs.items())),
    }
    if restarts is not None:
        if strategy != "anneal":
            raise ValueError("portfolio restarts need strategy='anneal' "
                             "(greedy descent is deterministic — every "
                             "restart would repeat the same search)")
        if cache is not None:
            raise TypeError("portfolio restarts need circuit/input_stats, "
                            "not a live cache=")
        if circuit is None or input_stats is None:
            raise TypeError("search_circuit needs circuit and input_stats "
                            "(or a live cache=)")
        if restarts < 1:
            raise ValueError("restarts must be at least 1")
        if jobs < 1:
            raise ValueError("jobs must be at least 1")
        return _portfolio(
            circuit, input_stats, resolved, seed=seed, restarts=restarts,
            jobs=jobs, backend=backend, model=model, po_load=po_load,
            retemplate=retemplate, max_trials=max_trials,
            max_moves=max_moves, max_rounds=max_rounds,
            initial_temp=initial_temp, cooling=cooling,
            moves_per_temp=moves_per_temp, anneal_trials=anneal_trials,
            polish=polish, structural=structural or None,
            structural_nets=structural_nets, compiled=compiled,
            backend_kwargs=backend_kwargs,
            checkpoint_path=checkpoint_path, resume_path=resume_path,
            deadline_s=deadline_s, worker_retries=worker_retries,
            fingerprint_params=fingerprint_params,
        )

    owns_cache = cache is None
    fingerprint = None
    resume_payload = None
    resume_accepted: List[AcceptedMove] = []
    if owns_cache:
        if circuit is None or input_stats is None:
            raise TypeError("search_circuit needs circuit and input_stats "
                            "(or a live cache=)")
        if checkpoint_path is not None or resume_path is not None:
            fingerprint = _search_fingerprint(circuit, input_stats,
                                              fingerprint_params)
        work = circuit.copy()
        if resume_path is not None:
            resume_payload = load_checkpoint(resume_path, expect_kind="search")
            if resume_payload.get("fingerprint") != fingerprint:
                raise CheckpointError(
                    f"{resume_path}: checkpoint belongs to a different "
                    f"search (circuit, stimulus or parameters differ)"
                )
            # Replay the checkpointed trace onto the fresh copy: the
            # incremental == from-scratch identity guarantees the
            # rebuilt caches match the snapshot's flushed state
            # bit-for-bit.
            from .eco import resolve_edit

            tracer = _trace.ACTIVE
            span = (tracer.span("robust.resume.replay",
                                accepted=len(resume_payload["accepted"]),
                                phase=resume_payload["phase"])
                    if tracer is not None else _trace.NULL_SPAN)
            with span:
                for move_data in resume_payload["accepted"]:
                    move = AcceptedMove(**move_data)
                    resume_accepted.append(move)
                    entries = (move.entry if isinstance(move.entry, list)
                               else [move.entry])
                    for entry in entries:
                        work.apply_edit(resolve_edit(work, entry))
            _RESUMES.inc()
            sink = _progress.ACTIVE
            if sink is not None:
                sink.emit("robust.resume", force=True, kind="search",
                          phase=resume_payload["phase"],
                          accepted=len(resume_accepted),
                          trials=resume_payload["trials"])
        if backend == "sampled":
            # One seed drives the whole search: the annealing RNG and
            # the backend's per-input sample substreams.
            backend_kwargs.setdefault("seed", seed)
        cache = StatsCache(work, input_stats, backend=backend, model=model,
                           po_load=po_load, compiled=compiled,
                           **backend_kwargs)
    else:
        if circuit is not None or input_stats is not None:
            raise TypeError("pass either circuit/input_stats or cache=, not both")
        if (model is not None or backend != "analytic" or backend_kwargs
                or po_load != DEFAULT_PO_LOAD or compiled is not None):
            raise TypeError(
                "backend/model/po_load/compiled arguments conflict with a "
                "live cache="
            )

    if families and not getattr(cache.backend, "supports_structure", False):
        if owns_cache:
            cache.close()
        raise ValueError(
            f"structural move families need a backend that can maintain "
            f"statistics across structural edits; the "
            f"{cache.backend.name!r} backend cannot (use the analytic "
            f"backend)"
        )

    start = time.perf_counter()
    # The search's live timing side: shares the stats cache's fanout
    # index and prices every delay read cone-locally (full STA per
    # candidate was the pre-TimingCache behaviour).
    timing = TimingCache(cache.circuit, tech=cache.model.tech,
                         po_load=cache.po_load, index=cache.index,
                         compiled=compiled)
    try:
        state = _Search(cache, timing, resolved, retemplate,
                        max_trials, max_moves,
                        batch_pricing=use_compiled(compiled))
        if resume_payload is not None:
            # The replayed caches carry the snapshot's values; restore
            # the search bookkeeping the caches don't hold — the trace,
            # the counters, and the *original* baseline (the replayed
            # circuit's own power/delay are mid-search values).
            state.accepted = resume_accepted
            state.trials = int(resume_payload["trials"])
            state._fresh = int(resume_payload["fresh"])
            state.power0 = resume_payload["power0"]
            state.delay0 = resume_payload["delay0"]
            state.power = resume_payload["power"]
            state.delay = resume_payload["delay"]
            state.score = resolved.score(state.power, state.delay,
                                         state.power0, state.delay0)
            state.budget_exhausted = bool(resume_payload["budget_exhausted"])
        # Counter offsets.  Fresh runs keep the historical semantics:
        # stat re-propagations exclude the cache's initial propagation,
        # arrival counts include the first full STA.  A resumed run
        # backdates the offsets against the snapshot's search-relative
        # counts, so the final values equal an uninterrupted run's.
        if resume_payload is not None:
            repropagated_before = (cache.gates_repropagated
                                   - int(resume_payload["gates_repropagated"]))
            retimed_before = (timing.gates_retimed
                              - int(resume_payload["gates_retimed"]))
        else:
            repropagated_before = cache.gates_repropagated
            retimed_before = 0
        checkpointer = None
        if checkpoint_path is not None:
            checkpointer = _Checkpointer(
                checkpoint_path,
                (checkpoint_every if checkpoint_every is not None
                 else DEFAULT_CHECKPOINT_EVERY),
                state, timing, fingerprint,
                repropagated_before, retimed_before,
            )
        resume_phase = (resume_payload["phase"]
                        if resume_payload is not None else None)
        phase_state = (resume_payload["phase_state"]
                       if resume_payload is not None else None)
        rounds_prior = (int(resume_payload.get("rounds_prior", 0))
                        if resume_payload is not None else 0)
        if checkpointer is not None:
            checkpointer.rounds_prior = rounds_prior
        rounds = 0
        tracer = _trace.ACTIVE
        span = (tracer.span("search", circuit=cache.circuit.name,
                            gates=len(cache.circuit), strategy=strategy,
                            objective=resolved.name,
                            backend=cache.backend.name, seed=seed)
                if tracer is not None else _trace.NULL_SPAN)
        with span:
            if strategy == "greedy":
                rounds = _greedy(
                    state, max_rounds, checkpointer=checkpointer,
                    phase="greedy",
                    resume=phase_state if resume_phase == "greedy" else None)
            elif resume_phase == "polish":
                # Annealing completed before the snapshot; only the
                # polish descent continues.
                rounds = rounds_prior
                rounds += _greedy(state, max_rounds,
                                  checkpointer=checkpointer, phase="polish",
                                  resume=phase_state)
            else:
                rounds = _anneal(
                    state, seed, initial_temp, cooling, moves_per_temp,
                    anneal_trials, checkpointer=checkpointer,
                    resume=phase_state if resume_phase == "anneal" else None)
                if polish and not state.out_of_budget() \
                        and not state.interrupted:
                    if checkpointer is not None:
                        checkpointer.rounds_prior = rounds
                    rounds += _greedy(state, max_rounds,
                                      checkpointer=checkpointer,
                                      phase="polish")
            # The structural post-pass is not checkpointed: its moves
            # mint fresh gate names and edit connectivity, and it runs
            # last — a kill here resumes from the final pre-structural
            # snapshot and redoes the pass.
            if families and not state.out_of_budget() \
                    and not state.interrupted:
                rounds += _structural(state, families, structural_nets)
            if tracer is not None:
                span.note(trials=state.trials, rounds=rounds,
                          accepted=len(state.accepted))
        if tracer is not None:
            tracer.metrics({
                **cache.metrics.snapshot(),
                **timing.metrics.snapshot(),
                **_GLOBAL_METRICS.snapshot(),
            })
        power_after = cache.total_power()
        delay_after = timing.delay()
        result = SearchResult(
            circuit=cache.circuit,
            accepted=state.accepted,
            net_stats=dict(cache.stats()),
            power_before=state.power0,
            power_after=power_after,
            delay_before=state.delay0,
            delay_after=delay_after,
            trials=state.trials,
            rounds=rounds,
            gates_repropagated=cache.gates_repropagated - repropagated_before,
            gates_retimed=timing.gates_retimed - retimed_before,
            strategy=strategy,
            objective=resolved,
            seed=seed,
            backend=cache.backend.name,
            budget_exhausted=state.budget_exhausted,
            elapsed_s=time.perf_counter() - start,
            partial=state.interrupted,
            interrupted=state.interrupted,
        )
    finally:
        timing.close()
        if owns_cache:
            cache.close()
    return result
