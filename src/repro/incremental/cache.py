"""The dirty-cone statistics cache.

:class:`StatsCache` maintains the full net-to-(P, D) map of a circuit
under ECO edits.  Invalidation rules (see README.md):

* ``SetConfig`` / ``SetTemplate`` on gate *g* — through
  :meth:`Circuit.apply_edit` or the convenience wrappers — dirties
  exactly *g* plus its transitive fanout gates;
* :meth:`set_input_stats` on input net *x* dirties exactly the gates in
  *x*'s transitive fanout;
* the structural edits (``AddGate``/``RemoveGate``/``RewireNet``)
  rebuild the fanout index and topological order, then dirty the
  edited gate's new cone (add/rewire) — a removed gate's entries are
  purged instead — plus, power-only, the drivers of every net whose
  external load changed (the event's ``load_nets``);
* nothing else dirties anything.

:meth:`refresh` re-propagates the dirty set in topological order via
the configured backend and is called lazily by every read accessor.
Gate power reports are cached too, with a slightly wider dirty set:
an edited gate's *fanin drivers* also go power-dirty, because a new
compiled form can change pin capacitances and hence the load those
drivers see.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Tuple

import warnings

from ..circuit.netlist import Circuit, CircuitError, StructureEvent
from ..core.optimizer import CircuitPowerReport
from ..core.power_model import GatePowerModel, GatePowerReport
from ..gates.capacitance import net_load
from ..obs import trace as _trace
from ..obs.metrics import REGISTRY as _GLOBAL_METRICS
from ..obs.metrics import MetricsRegistry
from ..robust import faults as _faults
from ..stochastic.signal import SignalStats
from ..timing.sta import DEFAULT_PO_LOAD, timing_context
from .backends import make_backend

__all__ = ["StatsCache"]

#: Compiled-kernel failures absorbed by the object-path fallback
#: (process-wide — the graceful-degradation signal CI watches).
_FALLBACKS = _GLOBAL_METRICS.counter("robust.fallback")


class StatsCache:
    """Circuit-wide (P, D) and power, re-propagated only where dirty.

    ``compiled`` routes the statistics backend through the flat-array
    kernels of :mod:`repro.compiled` (analytic and sampled both have
    compiled twins) **and** the power refresh through the class-batched
    :class:`~repro.compiled.power.CompiledPowerKernel`; ``None`` defers
    to the ``REPRO_COMPILED`` environment flag, and every cached float
    is bit-identical either way.
    """

    def __init__(self, circuit: Circuit,
                 input_stats: Mapping[str, SignalStats],
                 backend="analytic",
                 model: Optional[GatePowerModel] = None,
                 po_load: float = DEFAULT_PO_LOAD,
                 compiled: Optional[bool] = None,
                 **backend_kwargs):
        circuit.validate()
        missing = [n for n in circuit.inputs if n not in input_stats]
        if missing:
            raise KeyError(f"missing input statistics for {missing}")
        self.circuit = circuit
        self.backend = make_backend(backend, compiled=compiled,
                                    **backend_kwargs)
        from ..compiled.flags import use_compiled

        #: Route the power refresh through the compiled kernel under
        #: the same flag that routes the statistics backend.
        self._compiled_power = use_compiled(compiled)
        self._power_kernel_obj = None
        self.model = model if model is not None else GatePowerModel()
        _, self.po_load = timing_context(self.model.tech, po_load)
        # Memoised on the circuit: a second cache (or a search run)
        # reuses the same index and topological order instead of
        # redoing the O(V+E) construction.
        self.index = circuit.fanout_index()
        self._topo_index = {
            g.name: i for i, g in enumerate(circuit.topo_gates())
        }
        self._outputs = frozenset(circuit.outputs)
        self._input_stats: Dict[str, SignalStats] = {
            n: input_stats[n] for n in circuit.inputs
        }
        self._stats: Dict[str, SignalStats] = dict(
            self.backend.full(circuit, self._input_stats)
        )
        self._dirty: set = set()
        self._changed_inputs: set = set()
        self._power: Dict[str, GatePowerReport] = {}
        self._power_dirty: set = {g.name for g in circuit.gates}
        #: Per-cache work counters (:mod:`repro.obs.metrics`): the one
        #: place :attr:`gates_repropagated` and friends live, so the
        #: artifact fields, the CLI reports and any metrics snapshot
        #: all read the same numbers.
        self.metrics = MetricsRegistry()
        self._repropagated = self.metrics.counter("stats.gates_repropagated")
        self._refreshes = self.metrics.counter("stats.refresh_count")
        self._structural = self.metrics.counter("eco.structural")
        #: Open :class:`~repro.incremental.eco.WhatIf` trials on this
        #: cache, innermost last; WhatIf uses it to enforce LIFO
        #: unwinding and to hand committed inner undo logs outward.
        self.trial_stack: list = []
        circuit.add_edit_listener(self._on_edit)
        self._subscribed = True

    @property
    def gates_repropagated(self) -> int:
        """Total gates re-propagated by :meth:`refresh` calls (the
        benchmark's cone-size measure); the initial full propagation is
        not counted.  Backed by the ``stats.gates_repropagated``
        counter in :attr:`metrics`."""
        return self._repropagated.value

    @property
    def refresh_count(self) -> int:
        return self._refreshes.value

    @property
    def topo_index(self) -> Mapping[str, int]:
        """Gate name -> topological position (treat as read-only).

        The local edits never change connectivity, so this map stays
        valid across them; a structural edit replaces it (re-read the
        property — the old mapping object is discarded, not patched).
        The search engine sorts its worklists with it instead of
        re-levelising the circuit.
        """
        return self._topo_index

    # ------------------------------------------------------------------
    # Invalidation
    # ------------------------------------------------------------------
    def _on_edit(self, gate_name: str, kind: str) -> None:
        if kind == "structure":
            self._on_structure(gate_name, self.circuit.structure_event)
            return
        cone = self.index.cone_from_gates([gate_name])
        self._dirty |= cone
        self._power_dirty |= cone
        # The edited gate's compiled form changed, so its pin
        # capacitances — the load its fanin drivers see — may have too.
        for pred in self.circuit.fanin_drivers(gate_name):
            self._power_dirty.add(pred.name)

    def _on_structure(self, gate_name: str, event: StructureEvent) -> None:
        """Handle a structural edit: rebuild structure, widen dirty sets.

        The connectivity-derived state (fanout index, topological
        order) is re-read from the circuit's (freshly invalidated)
        memo.  Statistics for an added or rewired gate's cone go dirty;
        a removed gate's cached entries are purged instead.  Drivers of
        every net in ``event.load_nets`` go power-dirty only — their
        own (P, D) are untouched, but the external load they see
        changed.
        """
        if not getattr(self.backend, "supports_structure", False):
            raise CircuitError(
                f"the {self.backend.name!r} backend cannot maintain "
                f"statistics across structural edits "
                f"(add-gate/remove-gate/rewire); use the analytic backend"
            )
        self.index = self.circuit.fanout_index()
        self._topo_index = {
            g.name: i for i, g in enumerate(self.circuit.topo_gates())
        }
        self._structural.inc()
        tracer = _trace.ACTIVE
        if tracer is not None:
            tracer.instant("eco.structural", op=event.op, gate=gate_name)
        if event.op == "remove":
            self._dirty.discard(gate_name)
            self._power_dirty.discard(gate_name)
            self._stats.pop(event.output, None)
            self._power.pop(gate_name, None)
        else:
            cone = self.index.cone_from_gates([gate_name])
            self._dirty |= cone
            self._power_dirty |= cone
        for net in event.load_nets:
            pred = self.circuit.driver(net)
            if pred is not None:
                self._power_dirty.add(pred.name)

    def set_input_stats(self, net: str, stats: SignalStats) -> SignalStats:
        """Edit one primary input's statistics; returns the old value."""
        if net not in self._input_stats:
            raise KeyError(f"{net!r} is not a primary input")
        old = self._input_stats[net]
        if stats == old:
            return old
        self._input_stats[net] = stats
        self._changed_inputs.add(net)
        cone = self.index.cone_from_nets([net])
        self._dirty |= cone
        self._power_dirty |= cone
        return old

    def input_stats(self, net: str) -> SignalStats:
        return self._input_stats[net]

    @property
    def dirty_gates(self) -> frozenset:
        """Names of gates awaiting re-propagation (for tests/inspection)."""
        return frozenset(self._dirty)

    # ------------------------------------------------------------------
    # Reads (lazily refreshing)
    # ------------------------------------------------------------------
    def refresh(self) -> Tuple[str, ...]:
        """Re-propagate the dirty set; returns the recomputed nets."""
        if not self._dirty and not self._changed_inputs:
            return ()
        order = self._topo_index
        dirty_gates = [
            self.circuit.gate(name)
            for name in sorted(self._dirty, key=order.__getitem__)
        ]
        tracer = _trace.ACTIVE
        span = (tracer.span("stats.refresh", gates=len(dirty_gates),
                            backend=self.backend.name)
                if tracer is not None else _trace.NULL_SPAN)
        with span:
            updates = self.backend.update(
                self.circuit, dirty_gates, self._input_stats,
                frozenset(self._changed_inputs), self._stats,
            )
        self._stats.update(updates)
        self._repropagated.inc(len(dirty_gates))
        self._refreshes.inc()
        self._dirty.clear()
        self._changed_inputs.clear()
        return tuple(updates)

    def stats(self) -> Dict[str, SignalStats]:
        """The full, up-to-date net-statistics map (treat as read-only)."""
        self.refresh()
        return self._stats

    def __getitem__(self, net: str) -> SignalStats:
        self.refresh()
        return self._stats[net]

    # ------------------------------------------------------------------
    # Power
    # ------------------------------------------------------------------
    def _output_load(self, net: str) -> float:
        return net_load(self.index.sinks(net), net in self._outputs,
                        self.model.tech, self.po_load)

    def power_kernel(self):
        """The memoised :class:`CompiledPowerKernel` (compiled mode only)."""
        from ..compiled.circuit import get_compiled
        from ..compiled.power import CompiledPowerKernel

        cc = get_compiled(self.circuit)
        kernel = self._power_kernel_obj
        if kernel is None or kernel.cc is not cc:
            kernel = CompiledPowerKernel(cc, self.model)
            self._power_kernel_obj = kernel
        return kernel

    def _refresh_power(self) -> None:
        self.refresh()
        if not self._power_dirty:
            return
        # Sorted iteration: string-set order varies with per-process
        # hash randomisation, and a run-varying float summation order
        # would make repeated runs differ in the last ulp.
        names = sorted(self._power_dirty, key=self._topo_index.__getitem__)
        tracer = _trace.ACTIVE
        span = (tracer.span("stats.power_refresh", gates=len(names),
                            route="kernel" if self._compiled_power
                            else "object")
                if tracer is not None else _trace.NULL_SPAN)
        with span:
            if self._compiled_power:
                try:
                    _faults.fire("kernel.power")
                    reports = self.power_kernel().reports(
                        names, self._stats, self.po_load)
                except Exception as error:
                    # Graceful degradation: the compiled kernel produces
                    # bit-identical floats to the object path, so a
                    # kernel failure costs speed, never correctness.
                    # Latch the fallback once per cache and keep going —
                    # unless strict mode (REPRO_ROBUST_STRICT) demands
                    # the failure surface (CI's kernel-health setting).
                    if _faults.strict_mode():
                        raise
                    self._compiled_power = False
                    self._power_kernel_obj = None
                    _FALLBACKS.inc()
                    if tracer is not None:
                        span.note(route="fallback")
                    warnings.warn(
                        "compiled power kernel failed "
                        f"({type(error).__name__}: {error}); falling back "
                        "to the object-model path for this cache",
                        RuntimeWarning,
                        stacklevel=3,
                    )
                else:
                    self._power.update(reports)
            if not self._compiled_power:
                for name in names:
                    gate = self.circuit.gate(name)
                    pin_stats = {
                        pin: self._stats[gate.pin_nets[pin]]
                        for pin in gate.template.pins
                    }
                    self._power[name] = self.model.gate_power(
                        gate.compiled(), pin_stats,
                        self._output_load(gate.output)
                    )
        self._power_dirty.clear()

    def total_power(self) -> float:
        """Total modelled power, recomputing only power-dirty gates."""
        self._refresh_power()
        return sum(self._power[name].total for name in self._topo_index)

    def power(self) -> CircuitPowerReport:
        """A full :class:`CircuitPowerReport`, incrementally maintained."""
        self._refresh_power()
        total = sum(self._power[name].total for name in self._topo_index)
        return CircuitPowerReport(total, dict(self._power), dict(self._stats))

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Detach from the circuit's edit notifications."""
        if self._subscribed:
            self.circuit.remove_edit_listener(self._on_edit)
            self._subscribed = False

    def __enter__(self) -> "StatsCache":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"StatsCache({self.circuit.name!r}, backend={self.backend.name!r}, "
            f"dirty={len(self._dirty)})"
        )
