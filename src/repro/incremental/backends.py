"""Pluggable (P, D) backends for the incremental engine.

A backend owns the arithmetic of signal-statistics propagation; the
:class:`~repro.incremental.cache.StatsCache` owns the dirty-set
bookkeeping and calls the backend through two methods:

``full(circuit, input_stats)``
    Propagate everything from scratch and return the complete
    net-to-:class:`SignalStats` map.  Called once, at cache
    construction.  A backend may keep internal state (the sampled
    backend stores every net's packed word history here).

``update(circuit, dirty_gates, input_stats, changed_inputs, net_stats)``
    Re-propagate exactly ``dirty_gates`` — already sorted in
    topological order — plus the ``changed_inputs``, reading clean
    fanin values from ``net_stats`` (the cache's current map, which the
    backend must not mutate).  Returns the new statistics for the
    recomputed nets only.

The contract that makes the whole subsystem trustworthy: after any
supported edit sequence, ``full`` on the edited circuit and the
accumulated ``update`` results must be **bit-identical** (exact float
equality, not approximate).  Both backends here achieve it the same
way — the incremental path runs the very same per-gate arithmetic, in
the same order, on the same operands as the from-scratch path.
"""

from __future__ import annotations

from collections import ChainMap
from typing import Dict, FrozenSet, Mapping, Optional, Sequence

import numpy as np

from ..circuit.netlist import Circuit, GateInstance
from ..sim.bitsim import (
    DEFAULT_LANES,
    BitParallelSimulator,
    markov_stream_words,
    report_from_history,
    stream_rng,
)
from ..stochastic.density import local_gate_stats, local_stats
from ..stochastic.signal import SignalStats

__all__ = ["StatsBackend", "AnalyticBackend", "SampledBackend", "make_backend"]


class StatsBackend:
    """Abstract backend; see the module docstring for the contract."""

    name = "abstract"
    #: Whether ``update`` stays correct across structural edits
    #: (add/remove/rewire).  Stateless backends recompute dirty gates
    #: from the circuit's current connectivity, so they qualify;
    #: stateful ones (the sampled backends keep per-net lane histories
    #: keyed to the old structure) must refuse, and
    #: :class:`~repro.incremental.cache.StatsCache` raises a clear
    #: error before any state can go stale.
    supports_structure = False

    def full(self, circuit: Circuit,
             input_stats: Mapping[str, SignalStats]) -> Dict[str, SignalStats]:
        raise NotImplementedError

    def update(self, circuit: Circuit,
               dirty_gates: Sequence[GateInstance],
               input_stats: Mapping[str, SignalStats],
               changed_inputs: FrozenSet[str],
               net_stats: Mapping[str, SignalStats]) -> Dict[str, SignalStats]:
        raise NotImplementedError


class AnalyticBackend(StatsBackend):
    """Gate-local analytic density propagation (the paper's engine).

    Stateless: each gate's output (P, D) is a pure function of its
    fanin nets' statistics (:func:`repro.stochastic.density.local_gate_stats`),
    so re-running it on a dirty cone in topological order reproduces a
    from-scratch :func:`~repro.stochastic.density.local_stats` sweep
    exactly.
    """

    name = "analytic"
    supports_structure = True

    def full(self, circuit, input_stats):
        return local_stats(circuit, input_stats)

    def update(self, circuit, dirty_gates, input_stats, changed_inputs, net_stats):
        updates: Dict[str, SignalStats] = {
            net: input_stats[net] for net in changed_inputs
        }
        view = ChainMap(updates, net_stats)
        for gate in dirty_gates:
            updates[gate.output] = local_gate_stats(gate, view)
        return updates


class SampledBackend(StatsBackend):
    """Bit-parallel Monte Carlo measurement with lane-history re-settling.

    ``full`` draws every input's Markov-chain word stream from its own
    RNG substream (:func:`repro.sim.bitsim.stream_rng`), settles the
    whole circuit once, and keeps the per-net, per-step word history.
    ``update`` then re-settles only the dirty gates' streams against
    the stored history (:meth:`BitParallelSimulator.resettle`) —
    cone-sized work per edit — and re-counts only the updated nets.

    Two consequences of the per-input substreams:

    * editing one input's :class:`SignalStats` regenerates only that
      input's stream, so the dirty set stays the input's fanout cone;
    * the estimates differ from :func:`repro.sim.bitsim.sampled_stats`
      (which interleaves all inputs on one shared stream) by RNG
      stream only — same estimator, same distribution.

    The step size ``dt`` is resolved once, at ``full`` time (half the
    shortest mean input dwell when not given), and then **frozen** —
    a statistics edit that re-derived ``dt`` would perturb every
    stream and dirty the whole circuit.  Pass an explicit ``dt`` when
    what-if edits may shorten dwell times below the initial ones.
    """

    name = "sampled"

    def __init__(self, lanes: int = DEFAULT_LANES, steps: int = 64,
                 dt: Optional[float] = None, seed: int = 0):
        if steps < 1:
            raise ValueError("need at least one time step")
        self.lanes = lanes
        self.steps = steps
        self.seed = seed
        self.dt = dt
        self._simulator: Optional[BitParallelSimulator] = None
        self._history: Optional[Dict[str, list]] = None
        #: Materialised input substreams, keyed by ``(net, P, D)`` and
        #: kept for the lifetime of the run (``seed``/``lanes``/``steps``
        #: are fixed per backend, and ``dt`` is frozen at ``full`` time).
        #: An input-stats edit used to rebuild ``stream_rng`` and redraw
        #: the whole stream on every update — including the rollback leg
        #: of every :class:`~repro.incremental.eco.WhatIf` trial, which
        #: always restores statistics the run has already drawn words
        #: for.  The cached word lists are never mutated (``resettle``
        #: only rebinds gate-output entries), so sharing them is safe.
        self._stream_cache: Dict[tuple, list] = {}

    def _resolve_dt(self, circuit, input_stats) -> float:
        if self.dt is not None:
            if self.dt <= 0.0:
                raise ValueError("dt must be positive")
            return self.dt
        shortest = np.inf
        for net in circuit.inputs:
            stats = input_stats[net]
            shortest = min(shortest, stats.mean_high_dwell, stats.mean_low_dwell)
        return 0.5 * shortest if np.isfinite(shortest) else 1.0

    def _input_stream(self, net: str, stats) -> list:
        """The net's packed word stream, drawn once per distinct (P, D).

        Regenerating a substream is deterministic — ``stream_rng`` is
        rebuilt from ``(seed, net)`` every time — so caching the words
        changes nothing bit-wise; it only stops the inner trial loops
        from redrawing streams the run has already seen.
        """
        key = (net, stats.probability, stats.density)
        words = self._stream_cache.get(key)
        if words is None:
            words = markov_stream_words(
                stats, self.lanes, self.steps, self.dt,
                stream_rng(self.seed, net),
            )
            self._stream_cache[key] = words
        return words

    def full(self, circuit, input_stats):
        self.dt = self._resolve_dt(circuit, input_stats)
        self._stream_cache.clear()  # dt may have changed; old words are stale
        self._simulator = BitParallelSimulator(circuit, self.lanes)
        streams = {
            net: self._input_stream(net, input_stats[net])
            for net in circuit.inputs
        }
        self._history = self._simulator.settle_streams(streams)
        report = report_from_history(self._history, self.lanes, self.dt)
        return report.stats_map()

    def update(self, circuit, dirty_gates, input_stats, changed_inputs, net_stats):
        if self._history is None:
            raise RuntimeError("update() before full()")
        for net in changed_inputs:
            self._history[net] = self._input_stream(net, input_stats[net])
        self._simulator.resettle(self._history, dirty_gates)
        updated = set(changed_inputs)
        updated.update(g.output for g in dirty_gates)
        report = report_from_history(
            {net: self._history[net] for net in updated}, self.lanes, self.dt
        )
        return {net: report.measured_stats(net) for net in updated}


def make_backend(backend, compiled: Optional[bool] = None,
                 **kwargs) -> StatsBackend:
    """Resolve a backend name (or pass through an instance).

    ``"analytic"``/``"local"`` select :class:`AnalyticBackend` — or its
    flat-array twin :class:`repro.compiled.backend.CompiledAnalyticBackend`
    when ``compiled`` resolves true (``None`` defers to the
    ``REPRO_COMPILED`` environment flag; results are bit-identical
    either way).  ``"sampled"`` selects :class:`SampledBackend`
    (forwarding ``lanes``/``steps``/``dt``/``seed``) — or its
    uint64-block twin
    :class:`repro.compiled.sampled.CompiledSampledBackend` under the
    same routing, again bit-identical.
    """
    if isinstance(backend, StatsBackend):
        if kwargs:
            raise TypeError(
                f"backend arguments {sorted(kwargs)} conflict with an instance"
            )
        if compiled:
            raise TypeError("compiled= conflicts with a backend instance")
        return backend
    if backend in ("analytic", "local"):
        if kwargs:
            raise TypeError(
                f"the analytic backend takes no arguments: {sorted(kwargs)}"
            )
        from ..compiled.flags import use_compiled

        if use_compiled(compiled):
            from ..compiled.backend import CompiledAnalyticBackend

            return CompiledAnalyticBackend()
        return AnalyticBackend()
    if backend == "sampled":
        from ..compiled.flags import use_compiled

        if use_compiled(compiled):
            from ..compiled.sampled import CompiledSampledBackend

            return CompiledSampledBackend(**kwargs)
        return SampledBackend(**kwargs)
    raise ValueError(
        f"unknown backend {backend!r}; use 'analytic', 'sampled' or an instance"
    )
