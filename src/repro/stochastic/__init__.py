"""Stochastic signal modelling: (P, D) pairs, waveforms, propagation engines."""

from .signal import SignalStats, markov_waveform, measure_waveform

__all__ = ["SignalStats", "markov_waveform", "measure_waveform"]
