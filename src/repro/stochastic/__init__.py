"""Stochastic signal modelling: (P, D) pairs, waveforms, propagation engines."""

from .density import exact_stats, local_stats, propagate_stats
from .probability import exact_probabilities, local_probabilities
from .signal import SignalStats, markov_waveform, measure_waveform

__all__ = [
    "SignalStats",
    "markov_waveform",
    "measure_waveform",
    "propagate_stats",
    "local_stats",
    "exact_stats",
    "local_probabilities",
    "exact_probabilities",
]
