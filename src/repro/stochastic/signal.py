"""Stochastic signal model: 0-1 stationary Markov processes.

The paper characterises every logic signal by two numbers (its
Definitions 3.3 and 3.4):

* the **equilibrium probability** ``P(x)`` — the stationary probability
  that the signal is logic 1, and
* the **transition density** ``D(x)`` — the average number of signal
  transitions (both directions) per time unit.

:class:`SignalStats` carries the pair.  :func:`markov_waveform` draws a
sample path of the corresponding two-state continuous-time Markov
process: exponential dwell times with means chosen so that the process
has exactly the requested stationary probability and transition density
(mean high dwell ``2P/D``, mean low dwell ``2(1-P)/D``; interarrival
times between consecutive transitions then average ``1/D`` as in the
paper's experiments).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

__all__ = ["SignalStats", "markov_waveform", "measure_waveform", "Waveform"]

#: A sample path: initial value plus sorted transition times.
Waveform = Tuple[int, Tuple[float, ...]]


@dataclass(frozen=True)
class SignalStats:
    """Equilibrium probability and transition density of a logic signal.

    ``density`` is in transitions per second for free-running signals
    (the paper's Scenario A) or transitions per cycle for latched ones
    (Scenario B); the power model is agnostic as long as the time unit
    is used consistently.
    """

    probability: float
    density: float

    def __post_init__(self):
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability {self.probability} outside [0, 1]")
        if self.density < 0.0:
            raise ValueError(f"density {self.density} must be non-negative")
        if self.density > 0.0 and self.probability in (0.0, 1.0):
            raise ValueError("a switching signal cannot have probability exactly 0 or 1")

    @property
    def mean_high_dwell(self) -> float:
        """Mean time spent at logic 1 between transitions (``2P/D``)."""
        if self.density == 0.0:
            return math.inf
        return 2.0 * self.probability / self.density

    @property
    def mean_low_dwell(self) -> float:
        """Mean time spent at logic 0 between transitions (``2(1-P)/D``)."""
        if self.density == 0.0:
            return math.inf
        return 2.0 * (1.0 - self.probability) / self.density

    @staticmethod
    def constant(value: bool) -> "SignalStats":
        """A signal stuck at 0 or 1."""
        return SignalStats(1.0 if value else 0.0, 0.0)


def markov_waveform(
    stats: SignalStats,
    duration: float,
    rng: np.random.Generator,
) -> Waveform:
    """Sample a waveform of ``stats`` over ``[0, duration)``.

    Returns ``(initial_value, transition_times)``; the signal toggles at
    each listed time.  The initial value is drawn from the stationary
    distribution, so concatenated statistics are unbiased.
    """
    if duration <= 0.0:
        raise ValueError("duration must be positive")
    initial = int(rng.random() < stats.probability)
    if stats.density == 0.0:
        return initial, ()
    times: List[float] = []
    t = 0.0
    value = initial
    # The first dwell of a stationary alternating renewal process is
    # length-biased; for exponential dwells the residual time is again
    # exponential with the same mean, so plain sampling is exact.
    mean_dwell = (stats.mean_high_dwell, stats.mean_low_dwell)
    while True:
        t += rng.exponential(mean_dwell[1 - value] if value == 0 else mean_dwell[0])
        if t >= duration:
            break
        times.append(t)
        value ^= 1
    return initial, tuple(times)


def measure_waveform(waveform: Waveform, duration: float) -> SignalStats:
    """Empirical (P, D) of a sampled waveform over ``[0, duration)``."""
    initial, times = waveform
    if duration <= 0.0:
        raise ValueError("duration must be positive")
    high_time = 0.0
    t_prev = 0.0
    value = initial
    for t in times:
        if value:
            high_time += t - t_prev
        t_prev = t
        value ^= 1
    if value:
        high_time += duration - t_prev
    probability = min(1.0, max(0.0, high_time / duration))
    density = len(times) / duration
    if density > 0.0:
        probability = min(1.0 - 1e-12, max(1e-12, probability))
    return SignalStats(probability, density)


def merge_measurements(measurements: Sequence[SignalStats]) -> SignalStats:
    """Average (P, D) across equally weighted measurement windows."""
    if not measurements:
        raise ValueError("no measurements to merge")
    p = sum(m.probability for m in measurements) / len(measurements)
    d = sum(m.density for m in measurements) / len(measurements)
    if d > 0.0:
        p = min(1.0 - 1e-12, max(1e-12, p))
    return SignalStats(p, d)
