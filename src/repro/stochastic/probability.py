"""Signal-probability computation for mapped circuits.

Two engines, mirroring the paper's references:

* :func:`local_probabilities` — one topological sweep assuming spatial
  independence of gate fanins (the Parker–McCluskey-style treatment the
  paper's OBTAIN_PROBABILITIES uses); exact on fanout-free circuits,
  approximate under reconvergence.
* :func:`exact_probabilities` — global ROBDDs over the primary inputs;
  exact everywhere, exponential in the worst case, intended for small
  circuits and for quantifying the local engine's error (ablation A3).
"""

from __future__ import annotations

from typing import Dict, Mapping, Tuple

from ..boolean.bdd import BDD, Func
from ..circuit.netlist import Circuit
from ..circuit.topology import topological_gates

__all__ = ["local_probabilities", "exact_probabilities", "build_global_bdds"]


def local_probabilities(circuit: Circuit,
                        input_probs: Mapping[str, float]) -> Dict[str, float]:
    """Propagate equilibrium probabilities gate by gate (independence assumed)."""
    probs: Dict[str, float] = {}
    for net in circuit.inputs:
        p = float(input_probs[net])
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"probability of {net!r} outside [0, 1]")
        probs[net] = p
    for gate in topological_gates(circuit):
        compiled = gate.compiled()
        pin_probs = {
            pin: probs[gate.pin_nets[pin]] for pin in gate.template.pins
        }
        probs[gate.output] = compiled.output_tt.probability(pin_probs)
    return probs


def build_global_bdds(circuit: Circuit) -> Tuple[BDD, Dict[str, Func]]:
    """Global BDD of every net as a function of the primary inputs."""
    bdd = BDD(circuit.inputs)
    funcs: Dict[str, Func] = {net: bdd.var(net) for net in circuit.inputs}
    for gate in topological_gates(circuit):
        compiled = gate.compiled()
        pins = gate.template.pins
        # Shannon-expand the gate truth table over the fanin functions.
        tt = compiled.output_tt
        result = bdd.false
        for minterm in tt.minterms():
            term = bdd.true
            for j, pin in enumerate(pins):
                f = funcs[gate.pin_nets[pin]]
                term = term & (f if (minterm >> j) & 1 else ~f)
                if term.is_false():
                    break
            result = result | term
        funcs[gate.output] = result
    return bdd, funcs


def exact_probabilities(circuit: Circuit,
                        input_probs: Mapping[str, float]) -> Dict[str, float]:
    """Exact net probabilities via global BDDs (independent primary inputs)."""
    _, funcs = build_global_bdds(circuit)
    return {net: f.probability(input_probs) for net, f in funcs.items()}
