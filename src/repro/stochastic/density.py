"""Transition-density propagation (Najm, DAC'91) for mapped circuits.

``D(y) = Σ_i P(∂y/∂x_i) · D(x_i)`` — the transition density of a gate
output is the sum over inputs of the input density weighted by the
probability of the Boolean difference.  Two engines:

* :func:`propagate_stats` with ``method="local"`` — gate-local Boolean
  differences with fanin-independence, one topological sweep; this is
  what the paper's optimisation loop (CALCULATE_DENS) uses.
* ``method="exact"`` — Boolean differences of the *global* functions
  with respect to the primary inputs, computed on ROBDDs; handles
  reconvergent correlation of the probabilities exactly.
* ``method="sampled"`` — bit-parallel Monte Carlo measurement
  (:func:`repro.sim.bitsim.sampled_stats`); unbiased under
  reconvergence at sampling-noise accuracy, and the only engine whose
  cost does not grow with BDD size.

All return a full net-to-:class:`SignalStats` map; see
``src/repro/sim/README.md`` for the accuracy/cost trade-offs.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from ..circuit.netlist import Circuit
from ..circuit.topology import topological_gates
from .probability import build_global_bdds
from .signal import SignalStats

__all__ = ["propagate_stats", "local_stats", "local_gate_stats", "exact_stats"]

_EPS = 1e-12


def _clamp(probability: float, density: float) -> SignalStats:
    probability = min(1.0, max(0.0, probability))
    if density > 0.0:
        probability = min(1.0 - _EPS, max(_EPS, probability))
    return SignalStats(probability, density)


def local_gate_stats(gate, net_stats: Mapping[str, SignalStats]) -> SignalStats:
    """Output (P, D) of one gate from its fanin nets' statistics.

    The gate-local kernel of :func:`local_stats`, exposed so the
    incremental engine (:mod:`repro.incremental`) re-propagates a dirty
    cone with bit-identical arithmetic to a from-scratch sweep.
    """
    compiled = gate.compiled()
    pins = gate.template.pins
    pin_probs = {pin: net_stats[gate.pin_nets[pin]].probability for pin in pins}
    probability = compiled.output_tt.probability(pin_probs)
    density = 0.0
    for pin in pins:
        d_in = net_stats[gate.pin_nets[pin]].density
        if d_in:
            diff = compiled.output_tt.boolean_difference(pin)
            density += diff.probability(pin_probs) * d_in
    return _clamp(probability, density)


def local_stats(circuit: Circuit,
                input_stats: Mapping[str, SignalStats]) -> Dict[str, SignalStats]:
    """One topological sweep with gate-local Boolean differences."""
    stats: Dict[str, SignalStats] = {}
    for net in circuit.inputs:
        stats[net] = input_stats[net]
    for gate in circuit.topo_gates():
        stats[gate.output] = local_gate_stats(gate, stats)
    return stats


def exact_stats(circuit: Circuit,
                input_stats: Mapping[str, SignalStats]) -> Dict[str, SignalStats]:
    """Global-BDD probabilities and primary-input-level Boolean differences."""
    _, funcs = build_global_bdds(circuit)
    input_probs = {net: input_stats[net].probability for net in circuit.inputs}
    stats: Dict[str, SignalStats] = {net: input_stats[net] for net in circuit.inputs}
    for net, func in funcs.items():
        if net in stats:
            continue
        probability = func.probability(input_probs)
        density = 0.0
        for pi in func.support():
            d_in = input_stats[pi].density
            if d_in:
                density += func.boolean_difference(pi).probability(input_probs) * d_in
        stats[net] = _clamp(probability, density)
    return stats


def propagate_stats(circuit: Circuit,
                    input_stats: Mapping[str, SignalStats],
                    method: str = "local",
                    compiled: Optional[bool] = None,
                    **sampling_kwargs) -> Dict[str, SignalStats]:
    """Dispatch to :func:`local_stats`, :func:`exact_stats` or sampling.

    ``method="sampled"`` forwards ``sampling_kwargs`` (``lanes``,
    ``steps``, ``dt``, ``seed``) to
    :func:`repro.sim.bitsim.sampled_stats`; the analytic engines accept
    no extra arguments.  ``compiled`` routes the ``"local"`` sweep
    through the flat-array kernel of :mod:`repro.compiled` and the
    ``"sampled"`` run through its uint64-block twin
    (:func:`repro.compiled.sampled.compiled_sampled_stats`); ``None``
    defers to the ``REPRO_COMPILED`` environment flag, and results are
    bit-identical either way.
    """
    missing = [n for n in circuit.inputs if n not in input_stats]
    if missing:
        raise KeyError(f"missing input statistics for {missing}")
    if method == "sampled":
        from ..compiled.flags import use_compiled

        if use_compiled(compiled):
            from ..compiled.sampled import compiled_sampled_stats

            return compiled_sampled_stats(circuit, input_stats,
                                          **sampling_kwargs)
        from ..sim.bitsim import sampled_stats

        return sampled_stats(circuit, input_stats, **sampling_kwargs)
    if sampling_kwargs:
        raise TypeError(
            f"method {method!r} takes no sampling arguments: {sorted(sampling_kwargs)}"
        )
    if method == "local":
        from ..compiled.flags import use_compiled

        if use_compiled(compiled):
            from ..compiled import get_compiled

            return get_compiled(circuit).local_stats(input_stats)
        return local_stats(circuit, input_stats)
    if method == "exact":
        return exact_stats(circuit, input_stats)
    raise ValueError(
        f"unknown method {method!r}; use 'local', 'exact' or 'sampled'"
    )
