"""Compiled flat-circuit kernels: the netlist as structure-of-arrays.

``repro.compiled`` lowers a mapped :class:`~repro.circuit.netlist.Circuit`
once into integer-indexed numpy arrays and evaluates the hot loops —
analytic (P, D) propagation, net loads, arrival times, and their
dirty-cone incremental forms — on index ranges instead of Python
object traversals, with **bit-identical** results to the object-graph
path (the equivalence contract ``tests/test_compiled.py`` locks).

Consumers opt in per call with ``compiled=True`` or globally with the
``REPRO_COMPILED`` environment flag; see ``README.md`` in this
directory for the lowering, the SoA layout, and the contract.

The sampled twin (:mod:`repro.compiled.sampled`: uint64-blocked lane
streams), the power kernel (:mod:`repro.compiled.power`: class-batched
gate power) and the analytic backend (:mod:`repro.compiled.backend`)
import :mod:`repro.incremental` and therefore stay out of this
package-level namespace — import them by module.
"""

from .circuit import CompiledCircuit, get_compiled
from .flags import ENV_VAR, compiled_default, use_compiled

__all__ = [
    "CompiledCircuit",
    "get_compiled",
    "ENV_VAR",
    "compiled_default",
    "use_compiled",
]
