"""Flat structure-of-arrays lowering of a mapped circuit, plus kernels.

A :class:`CompiledCircuit` lowers a :class:`~repro.circuit.netlist.Circuit`
**once** into integer-indexed arrays — net/gate id maps, CSR-style
fanin and fanout index arrays, per-gate template/configuration codes,
pin-capacitance and load tables — and evaluates the hot loops of the
reproduction on index ranges instead of object traversals:

* from-scratch analytic (P, D) propagation (:meth:`stats_arrays` /
  :meth:`local_stats`) and dirty-cone resettling (:meth:`resettle_stats`);
* ``net_load`` summation for every net at once (:meth:`net_loads`);
* arrival-time propagation, full (:meth:`arrivals_full`,
  :meth:`analyze_timing`) and per-level re-timing (:meth:`retime_gates`)
  for the incremental :class:`~repro.incremental.timing.TimingCache`.

**The equivalence contract.**  Every kernel reproduces the object-graph
arithmetic *operation for operation*: per-minterm weight products and
masked sums follow :meth:`repro.boolean.truthtable.TruthTable.probability`,
clamping follows ``repro.stochastic.density._clamp``, load summation
follows :func:`repro.gates.capacitance.net_load` in the same
gate-creation-then-template-pin sink order, and per-pin Elmore delays
use the load-affine terms of
:func:`repro.timing.elmore.stack_delay_terms` accumulated in
:func:`~repro.timing.elmore.stack_delay`'s order.  numpy reduces the
innermost contiguous axis with the same pairwise algorithm regardless
of leading dimensions, so batching gates does not change a single bit
— the property ``tests/test_compiled.py`` locks with hypothesis edit
sequences.

Work is batched by **(logic level, class)**: within a level no gate
depends on another, and gates sharing a class (same template function
for statistics; same template *and* configuration for timing) share
truth-table selections and delay terms, so one vectorised evaluation
covers the whole group.

Lowering is memoised per circuit (:func:`get_compiled`): the supported
ECO edits never change connectivity, so the structure arrays stay
valid for the circuit's lifetime, and an edit listener keeps the
per-gate class codes current.  Structural mutation invalidates the
memo (see :meth:`Circuit._invalidate_structure`).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..boolean.truthtable import TruthTable, _minterm_matrix
from ..circuit.netlist import Circuit, CircuitError, GateInstance
from ..gates.capacitance import TechParams, pin_terminal_counts
from ..gates.network import OUT
from ..obs.metrics import REGISTRY as _METRICS
from ..stochastic.density import _EPS as _STATS_EPS
from ..stochastic.signal import SignalStats
from ..timing.elmore import LN2, gate_pin_delay_terms
from ..timing.sta import TimingReport, build_timing_report

__all__ = ["CompiledCircuit", "get_compiled"]


def _tt_selection(tt: TruthTable) -> np.ndarray:
    """Ascending minterm indices where ``tt`` is 1.

    The exact unpacking :meth:`TruthTable.probability` performs before
    its masked sum, so ``weights[:, selection].sum(axis=1)`` adds the
    same floats in the same order as ``weights[mask].sum()``.
    """
    n = tt.nvars
    nbytes = (1 << n) // 8 if n >= 3 else 1
    packed = np.frombuffer(tt.bits.to_bytes(nbytes, "little"), dtype=np.uint8)
    mask = np.unpackbits(packed, bitorder="little")[: 1 << n].astype(bool)
    return np.flatnonzero(mask)


def _pairwise_block(block: np.ndarray, start: int, count: int) -> np.ndarray:
    """numpy's 1-D pairwise summation, lifted to columns of ``block``.

    Mirrors the C ``pairwise_sum`` algorithm (sequential below 8
    elements; eight interleaved partial sums combined as
    ``((r0+r1)+(r2+r3))+((r4+r5)+(r6+r7))`` up to the 128 blocksize;
    recursive halving above), with each scalar replaced by a column —
    so every row's result is the double a 1-D ``.sum()`` of that row
    would produce.  ``tests/test_compiled.py`` asserts the match for
    every length a gate truth table can select.
    """
    if count < 8:
        result = block[:, start].copy()
        for i in range(1, count):
            result += block[:, start + i]
        return result
    if count <= 128:
        partial = [block[:, start + j].copy() for j in range(8)]
        i = 8
        while i < count - (count % 8):
            for j in range(8):
                partial[j] += block[:, start + i + j]
            i += 8
        result = (
            (partial[0] + partial[1]) + (partial[2] + partial[3])
        ) + ((partial[4] + partial[5]) + (partial[6] + partial[7]))
        while i < count:
            result += block[:, start + i]
            i += 1
        return result
    half = (count // 2) - ((count // 2) % 8)
    return (_pairwise_block(block, start, half)
            + _pairwise_block(block, start + half, count - half))


def _rowwise_selected_sum(weights: np.ndarray,
                          selection: np.ndarray) -> np.ndarray:
    """Per-row ``weights[row, selection].sum()`` in 1-D summation order.

    ``sum(axis=1)`` reduces multi-row arrays in a different associativity
    than a 1-D ``.sum()`` once rows reach eight elements, which would
    break bit-identity with :meth:`TruthTable.probability`; this takes
    the 1-D pairwise route explicitly.
    """
    if len(selection) == 0:
        return np.zeros(len(weights))
    picked = weights[:, selection]
    return _pairwise_block(picked, 0, picked.shape[1])


#: Process-global kernel metrics (:mod:`repro.obs.metrics`): invocation
#: counts and batch-size distributions of the flat-array kernels.
#: Module-level handles — one registry lookup at import time, then a
#: slotted ``+=`` per kernel call.
_STATS_GROUP_CALLS = _METRICS.counter("compiled.stats_group.calls")
_STATS_GROUP_SIZES = _METRICS.histogram("compiled.stats_group.batch_size")
_RETIME_CALLS = _METRICS.counter("compiled.retime.calls")
_RETIME_SIZES = _METRICS.histogram("compiled.retime.batch_size")
_LOADS_CALLS = _METRICS.counter("compiled.net_loads.calls")
_LOADS_REBUILDS = _METRICS.counter("compiled.net_loads.rebuilds")


class _StatsClass:
    """Per-template data of the (P, D) kernel (function, not ordering)."""

    __slots__ = ("arity", "mat", "const_p", "out_sel", "pin_diffs", "tt_bits")

    def __init__(self, output_tt: TruthTable):
        self.arity = output_tt.nvars
        #: Dense truth-table bits — the sampled kernel keys its word
        #: evaluators (bitsim._compile_word_function) on (arity, bits).
        self.tt_bits = output_tt.bits
        self.mat = _minterm_matrix(self.arity) if self.arity else None
        if self.arity == 0 or output_tt.is_constant():
            self.const_p: Optional[float] = 1.0 if output_tt.bits else 0.0
            self.out_sel: Optional[np.ndarray] = None
        else:
            self.const_p = None
            self.out_sel = _tt_selection(output_tt)
        #: Per pin: ``(selection, None)`` for essential dependence or
        #: ``(None, constant_probability)`` when the Boolean difference
        #: is constant (TruthTable.probability's early-out).
        self.pin_diffs: List[tuple] = []
        for pin in output_tt.vars:
            diff = output_tt.boolean_difference(pin)
            if self.arity == 0 or diff.is_constant():
                self.pin_diffs.append((None, 1.0 if diff.bits else 0.0))
            else:
                self.pin_diffs.append((_tt_selection(diff), None))


class _TimingClass:
    """Per-(template, configuration) data of the arrival kernel."""

    __slots__ = ("arity", "out_terminals", "_compiled", "_config",
                 "_delay_cache")

    def __init__(self, gate: GateInstance):
        compiled = gate.compiled()
        self.arity = len(compiled.inputs)
        self.out_terminals = compiled.terminal_counts[OUT]
        self._compiled = compiled
        self._config = gate.effective_config()
        self._delay_cache: Dict[TechParams, tuple] = {}

    def delay_data(self, tech: TechParams) -> tuple:
        """``(base_cap, per-pin (fall_R, fall_terms, rise_R, rise_terms))``.

        ``base_cap`` is the load-independent part of the output
        capacitance, computed with :func:`gate_pin_delay`'s operation
        order so ``base_cap + load`` lands on the identical double.
        """
        data = self._delay_cache.get(tech)
        if data is None:
            base_cap = self.out_terminals * tech.c_diff + tech.c_wire
            pins = []
            for pin in self._compiled.inputs:
                (fall_r, fall_terms), (rise_r, rise_terms) = \
                    gate_pin_delay_terms(self._compiled, self._config, pin,
                                         tech)
                pins.append((fall_r, fall_terms, rise_r, rise_terms))
            data = (base_cap, tuple(pins))
            self._delay_cache[tech] = data
        return data


class CompiledCircuit:
    """The flat form of one circuit; see the module docstring."""

    def __init__(self, circuit: Circuit):
        self.circuit = circuit
        gates = circuit.gates  # creation order defines gate ids
        num_gates = len(gates)
        self.num_inputs = len(circuit.inputs)
        #: Net names: primary inputs then gate outputs, in creation
        #: order — gate ``g``'s output net id is ``num_inputs + g``.
        self.nets: Tuple[str, ...] = circuit.nets()
        self.net_id: Dict[str, int] = {n: i for i, n in enumerate(self.nets)}
        self.gate_names: Tuple[str, ...] = tuple(g.name for g in gates)
        self.gate_id: Dict[str, int] = {
            name: i for i, name in enumerate(self.gate_names)
        }
        self.out_net = self.num_inputs + np.arange(num_gates, dtype=np.int64)
        self.is_output = np.zeros(len(self.nets), dtype=bool)
        for net in circuit.outputs:
            self.is_output[self.net_id[net]] = True

        # CSR fanin: gate g's pins (template order) occupy slots
        # fanin_ptr[g]:fanin_ptr[g+1].  Slot order is therefore the
        # gate-creation-then-template-pin order net_load sums in.
        ptr = [0]
        fanin: List[int] = []
        for gate in gates:
            fanin.extend(self.net_id[net] for net in gate.fanin_nets)
            ptr.append(len(fanin))
        self.fanin_ptr = np.asarray(ptr, dtype=np.int64)
        self.fanin_net = np.asarray(fanin, dtype=np.int64)

        topo_names = [g.name for g in circuit.topo_gates()]
        self.topo_index = np.zeros(num_gates, dtype=np.int64)
        for position, name in enumerate(topo_names):
            self.topo_index[self.gate_id[name]] = position
        levels_by_name = circuit.gate_levels()
        self.level = np.asarray(
            [levels_by_name[g.name] for g in gates], dtype=np.int64
        )
        order = np.argsort(self.level, kind="stable")
        boundaries = np.flatnonzero(np.diff(self.level[order])) + 1
        #: Gate ids grouped by ascending logic level.
        self._levels: List[np.ndarray] = (
            np.split(order, boundaries) if num_gates else []
        )

        # Deduplicated gate->sink-gate adjacency (CSR), for dirty-cone
        # descent; mirrors FanoutIndex.gate_sinks.
        index = circuit.fanout_index()
        gs_ptr = [0]
        gs_val: List[int] = []
        for name in self.gate_names:
            gs_val.extend(self.gate_id[s.name] for s in index.gate_sinks(name))
            gs_ptr.append(len(gs_val))
        self._gs_ptr = np.asarray(gs_ptr, dtype=np.int64)
        self._gs_val = np.asarray(gs_val, dtype=np.int64)

        # Class tables.  Statistics classes key on the template alone
        # (output functions are ordering-independent); timing classes
        # key on (template, configuration).
        self._stats_classes: List[_StatsClass] = []
        self._stats_keys: Dict[str, int] = {}
        self._timing_classes: List[_TimingClass] = []
        self._timing_keys: Dict[tuple, int] = {}
        self.stats_code = np.zeros(num_gates, dtype=np.int64)
        self.timing_code = np.zeros(num_gates, dtype=np.int64)
        self.slot_count = np.zeros(len(self.fanin_net), dtype=np.int64)
        self._stats_plan: Optional[list] = None
        #: Bumped whenever a template swap changes pin capacitances.
        self._cap_version = 0
        self._slot_caps_cache: Dict[TechParams, tuple] = {}
        self._loads_cache: Dict[tuple, tuple] = {}
        #: Last (template, config) object seen per gate — identity
        #: checks let the batch entry points resynchronise codes for
        #: gates mutated outside the edit API (see :meth:`_sync_codes`).
        self._seen_template: List[object] = [None] * num_gates
        self._seen_config: List[object] = [None] * num_gates
        for gid, gate in enumerate(gates):
            self._apply_gate_codes(gid, gate)

        circuit.add_edit_listener(self._on_edit)
        self._subscribed = True
        #: Set by :meth:`close` (structural mutation or explicit
        #: cleanup): the arrays no longer describe the circuit and the
        #: batch entry points refuse service instead of silently
        #: serving stale SoA data.
        self.stale = False

    # ------------------------------------------------------------------
    # Class-code maintenance
    # ------------------------------------------------------------------
    def _stats_code_for(self, gate: GateInstance) -> int:
        key = gate.template.name
        code = self._stats_keys.get(key)
        if code is None:
            code = len(self._stats_classes)
            self._stats_classes.append(_StatsClass(gate.compiled().output_tt))
            self._stats_keys[key] = code
        return code

    def _timing_code_for(self, gate: GateInstance) -> int:
        key = (gate.template.name, gate.effective_config().key())
        code = self._timing_keys.get(key)
        if code is None:
            code = len(self._timing_classes)
            self._timing_classes.append(_TimingClass(gate))
            self._timing_keys[key] = code
        return code

    def _set_slot_counts(self, gid: int, gate: GateInstance) -> None:
        counts = pin_terminal_counts(gate.compiled())
        start = self.fanin_ptr[gid]
        for j, pin in enumerate(gate.template.pins):
            self.slot_count[start + j] = counts[pin]

    def _apply_gate_codes(self, gid: int, gate: GateInstance) -> None:
        """(Re)derive one gate's class codes from its current state."""
        if gate.template is not self._seen_template[gid]:
            self.stats_code[gid] = self._stats_code_for(gate)
            self._set_slot_counts(gid, gate)
            self._cap_version += 1
            self._stats_plan = None
            self._seen_template[gid] = gate.template
        self.timing_code[gid] = self._timing_code_for(gate)
        self._seen_config[gid] = gate.config

    def _on_edit(self, gate_name: str, kind: str) -> None:
        if kind == "structure":
            # Connectivity changed: gate/net ids, CSR arrays and level
            # groups are all invalid.  The memoised instance is closed
            # by Circuit._invalidate_structure before listeners fire,
            # so this only triggers for directly-constructed instances
            # — mark them stale too instead of patching codes into
            # arrays that no longer match the circuit.
            self.close()
            return
        gid = self.gate_id.get(gate_name)
        if gid is None:  # pragma: no cover - structure memo is invalidated
            return       # before new gates can be edited
        self._apply_gate_codes(gid, self.circuit.gate(gate_name))

    def _sync_codes(self) -> None:
        """Pick up mutations made outside the edit API.

        The incremental caches require edits to flow through
        :meth:`Circuit.apply_edit` (their own invalidation depends on
        it), but the batch entry points promise from-scratch semantics
        — a caller may have assigned ``gate.config`` directly.  Object
        identity of (template, config) is checked per gate, so a clean
        pass costs one comparison per gate.
        """
        self._check_fresh()
        for gid, gate in enumerate(self.circuit.gates):
            if (gate.template is self._seen_template[gid]
                    and gate.config is self._seen_config[gid]):
                continue
            self._apply_gate_codes(gid, gate)

    def close(self) -> None:
        """Detach from the circuit's edit notifications (idempotent).

        A closed instance is :attr:`stale`: it can no longer track
        edits, so its batch entry points raise instead of serving
        arrays that may not match the circuit.  Re-acquire a fresh
        lowering through :func:`get_compiled`.
        """
        self.stale = True
        if self._subscribed:
            self.circuit.remove_edit_listener(self._on_edit)
            self._subscribed = False

    def _check_fresh(self) -> None:
        if self.stale:
            raise CircuitError(
                f"stale CompiledCircuit for {self.circuit.name!r}: the "
                f"circuit was structurally edited (or this lowering was "
                f"closed); re-acquire it with get_compiled(circuit)"
            )

    # ------------------------------------------------------------------
    # Shared gather helpers
    # ------------------------------------------------------------------
    def _fanin_matrix(self, gate_ids: np.ndarray, arity: int) -> np.ndarray:
        """Fanin net ids of same-arity gates as a dense (G, arity) matrix."""
        starts = self.fanin_ptr[gate_ids]
        return self.fanin_net[starts[:, None] + np.arange(arity)]

    def gate_sinks(self, gid: int) -> np.ndarray:
        """Deduplicated sink gate ids of one gate's output."""
        return self._gs_val[self._gs_ptr[gid]:self._gs_ptr[gid + 1]]

    # ------------------------------------------------------------------
    # (P, D) kernels
    # ------------------------------------------------------------------
    def _stats_group(self, cls: _StatsClass, fanin: np.ndarray,
                     prob: np.ndarray, dens: np.ndarray):
        """(P, D) of one same-class gate batch from its fanin columns."""
        p_in = prob[fanin]
        d_in = dens[fanin]
        count = len(fanin)
        _STATS_GROUP_CALLS.inc()
        _STATS_GROUP_SIZES.observe(count)
        if cls.const_p is None:
            # TruthTable.probability: per-minterm weight products, then
            # the masked sum over the function's minterms.
            weights = np.prod(
                np.where(cls.mat[None, :, :] == 1,
                         p_in[:, None, :], 1.0 - p_in[:, None, :]),
                axis=2,
            )
            p_out = np.minimum(1.0, np.maximum(
                0.0, _rowwise_selected_sum(weights, cls.out_sel)))
        else:
            weights = None
            p_out = np.full(count, cls.const_p)
        d_out = np.zeros(count)
        for j, (selection, const) in enumerate(cls.pin_diffs):
            d_col = d_in[:, j]
            if selection is None:
                p_diff = const
            else:
                if weights is None:  # pragma: no cover - constant outputs
                    weights = np.prod(  # have constant differences
                        np.where(cls.mat[None, :, :] == 1,
                                 p_in[:, None, :], 1.0 - p_in[:, None, :]),
                        axis=2,
                    )
                p_diff = np.minimum(1.0, np.maximum(
                    0.0, _rowwise_selected_sum(weights, selection)))
            # local_gate_stats skips pins with zero density; adding the
            # product there would be a no-op, but np.where keeps the
            # accumulation literally identical.
            d_out = np.where(d_col != 0.0, d_out + p_diff * d_col, d_out)
        # _clamp: [0, 1] always, the epsilon band only for live signals.
        p_out = np.minimum(1.0, np.maximum(0.0, p_out))
        p_out = np.where(
            d_out > 0.0,
            np.minimum(1.0 - _STATS_EPS, np.maximum(_STATS_EPS, p_out)),
            p_out,
        )
        return p_out, d_out

    def _stats_full_plan(self) -> list:
        plan = self._stats_plan
        if plan is None:
            plan = []
            for ids in self._levels:
                codes = self.stats_code[ids]
                for code in np.unique(codes):
                    sub = ids[codes == code]
                    cls = self._stats_classes[code]
                    plan.append((cls, sub, self._fanin_matrix(sub, cls.arity)))
            self._stats_plan = plan
        return plan

    def stats_arrays(self, input_stats: Mapping[str, SignalStats]):
        """From-scratch (P, D) of every net as ``(prob, dens)`` arrays."""
        self._sync_codes()
        prob = np.zeros(len(self.nets))
        dens = np.zeros(len(self.nets))
        for i, net in enumerate(self.circuit.inputs):
            stats = input_stats[net]
            prob[i] = stats.probability
            dens[i] = stats.density
        for cls, ids, fanin in self._stats_full_plan():
            p_out, d_out = self._stats_group(cls, fanin, prob, dens)
            out = self.out_net[ids]
            prob[out] = p_out
            dens[out] = d_out
        return prob, dens

    def local_stats(
        self, input_stats: Mapping[str, SignalStats]
    ) -> Dict[str, SignalStats]:
        """Drop-in for :func:`repro.stochastic.density.local_stats`."""
        prob, dens = self.stats_arrays(input_stats)
        stats: Dict[str, SignalStats] = {
            net: input_stats[net] for net in self.circuit.inputs
        }
        for gid, name in enumerate(self.gate_names):
            out = self.num_inputs + gid
            stats[self.nets[out]] = SignalStats(float(prob[out]),
                                                float(dens[out]))
        return stats

    def resettle_stats(self, gate_ids: np.ndarray, prob: np.ndarray,
                       dens: np.ndarray) -> None:
        """Recompute the given gates' outputs in place (dirty-cone update).

        ``gate_ids`` may arrive in any order; evaluation is batched by
        ascending logic level, so every gate reads settled fanins —
        exactly the values the object-graph backend's topological walk
        would read, hence bit-identical updates.
        """
        self._check_fresh()
        if not len(gate_ids):
            return
        levels = self.level[gate_ids]
        order = np.argsort(levels, kind="stable")
        sorted_ids = gate_ids[order]
        boundaries = np.flatnonzero(np.diff(levels[order])) + 1
        for chunk in np.split(sorted_ids, boundaries):
            codes = self.stats_code[chunk]
            for code in np.unique(codes):
                sub = chunk[codes == code]
                cls = self._stats_classes[code]
                fanin = self._fanin_matrix(sub, cls.arity)
                p_out, d_out = self._stats_group(cls, fanin, prob, dens)
                out = self.out_net[sub]
                prob[out] = p_out
                dens[out] = d_out

    # ------------------------------------------------------------------
    # Load and arrival kernels
    # ------------------------------------------------------------------
    def _slot_caps(self, tech: TechParams) -> np.ndarray:
        cached = self._slot_caps_cache.get(tech)
        if cached is not None and cached[0] == self._cap_version:
            return cached[1]
        caps = self.slot_count * tech.c_gate
        self._slot_caps_cache[tech] = (self._cap_version, caps)
        return caps

    def net_loads(self, tech: TechParams, po_load: float) -> np.ndarray:
        """External capacitance of every net at once (treat as read-only).

        ``np.add.at`` accumulates the per-slot pin capacitances in slot
        order — the gate-creation-then-template-pin order
        :func:`~repro.gates.capacitance.net_load` sums in — and the
        primary-output load lands last, so every entry is bit-identical
        to the object-graph summation for that net.
        """
        self._check_fresh()
        key = (tech, float(po_load))
        _LOADS_CALLS.inc()
        cached = self._loads_cache.get(key)
        if cached is not None and cached[0] == self._cap_version:
            return cached[1]
        _LOADS_REBUILDS.inc()
        loads = np.zeros(len(self.nets))
        np.add.at(loads, self.fanin_net, self._slot_caps(tech))
        loads[self.is_output] += po_load
        self._loads_cache[key] = (self._cap_version, loads)
        return loads

    def _arrival_group(self, cls: _TimingClass, fanin: np.ndarray,
                       arr: np.ndarray, loads: np.ndarray,
                       out_ids: np.ndarray, tech: TechParams):
        """Arrival + latest-pin of one same-class batch (strict-> ties)."""
        base_cap, pins = cls.delay_data(tech)
        output_cap = base_cap + loads[out_ids]
        best: Optional[np.ndarray] = None
        best_pin: Optional[np.ndarray] = None
        for j, (fall_r, fall_terms, rise_r, rise_terms) in enumerate(pins):
            tau = output_cap * fall_r
            for term in fall_terms:
                tau = tau + term
            fall = LN2 * tau
            tau = output_cap * rise_r
            for term in rise_terms:
                tau = tau + term
            rise = LN2 * tau
            candidate = arr[fanin[:, j]] + np.maximum(fall, rise)
            if best is None:
                best = candidate
                best_pin = np.zeros(len(candidate), dtype=np.int64)
            else:
                better = candidate > best
                best = np.where(better, candidate, best)
                best_pin = np.where(better, j, best_pin)
        return best, best_pin

    def retime_gates(self, gate_ids: np.ndarray, arr: np.ndarray,
                     loads: np.ndarray, tech: TechParams):
        """Recompute arrivals of one same-level batch.

        Returns ``(gids, out_net_ids, arrivals, pred_net_ids)`` with
        rows concatenated over the internal class grouping (order
        within the level is immaterial — no intra-level dependencies).
        """
        self._check_fresh()
        parts_g, parts_o, parts_a, parts_p = [], [], [], []
        _RETIME_CALLS.inc()
        _RETIME_SIZES.observe(len(gate_ids))
        codes = self.timing_code[gate_ids]
        for code in np.unique(codes):
            sub = gate_ids[codes == code]
            cls = self._timing_classes[code]
            fanin = self._fanin_matrix(sub, cls.arity)
            out_ids = self.out_net[sub]
            best, best_pin = self._arrival_group(cls, fanin, arr, loads,
                                                 out_ids, tech)
            parts_g.append(sub)
            parts_o.append(out_ids)
            parts_a.append(best)
            parts_p.append(fanin[np.arange(len(sub)), best_pin])
        return (np.concatenate(parts_g), np.concatenate(parts_o),
                np.concatenate(parts_a), np.concatenate(parts_p))

    def arrivals_full(self, tech: TechParams, po_load: float,
                      input_arrivals: Optional[Mapping[str, float]] = None):
        """From-scratch arrival sweep: ``(arrivals, pred_net)`` arrays.

        ``pred_net[gid]`` is the net id of the gate's latest-arriving
        fanin (first pin on exact ties, like
        :func:`~repro.timing.sta.gate_arrival`).
        """
        self._sync_codes()
        arr = np.zeros(len(self.nets))
        if input_arrivals is not None:
            for i, net in enumerate(self.circuit.inputs):
                arr[i] = float(input_arrivals[net])
        pred_net = np.full(len(self.gate_names), -1, dtype=np.int64)
        loads = self.net_loads(tech, po_load)
        for ids in self._levels:
            gids, out_ids, arrivals, preds = self.retime_gates(
                ids, arr, loads, tech)
            arr[out_ids] = arrivals
            pred_net[gids] = preds
        return arr, pred_net

    def analyze_timing(self, tech: TechParams, po_load: float,
                       input_arrivals: Optional[Mapping[str, float]] = None
                       ) -> TimingReport:
        """Drop-in for :func:`repro.timing.sta.analyze_timing`."""
        arr, pred_net = self.arrivals_full(tech, po_load, input_arrivals)
        arrivals = {net: float(arr[i]) for i, net in enumerate(self.nets)}
        predecessor: Dict[str, Optional[str]] = {
            net: None for net in self.circuit.inputs
        }
        for gid, name in enumerate(self.gate_names):
            predecessor[self.nets[self.num_inputs + gid]] = \
                self.nets[pred_net[gid]]
        return build_timing_report(arrivals, predecessor,
                                   self.circuit.outputs)

    def __repr__(self) -> str:
        return (
            f"CompiledCircuit({self.circuit.name!r}, "
            f"gates={len(self.gate_names)}, nets={len(self.nets)}, "
            f"levels={len(self._levels)})"
        )


def get_compiled(circuit: Circuit) -> CompiledCircuit:
    """The circuit's memoised :class:`CompiledCircuit` (lowered on first use).

    Stored alongside the circuit's other memoised structure, so the
    lowering survives ECO edits (an edit listener keeps class codes
    current) and is dropped — with its listener detached — on
    structural mutation.
    """
    compiled = circuit._structure.get("compiled")
    if compiled is None or compiled.stale:
        compiled = CompiledCircuit(circuit)
        circuit._structure["compiled"] = compiled
    return compiled
