"""The compiled-kernel feature flag.

Every entry point that can route through the flat-circuit kernels —
``propagate_stats(method="local")``, ``analyze_timing``,
``StatsCache``/``TimingCache``, ``search_circuit`` — takes a
``compiled`` argument with three states:

* ``True`` / ``False`` — explicit opt-in / opt-out for this call;
* ``None`` (the default) — defer to the ``REPRO_COMPILED``
  environment variable, so a whole run (or CI job) flips engines
  without touching call sites.

The contract either way: compiled and object-graph results are
**bit-identical** (``tests/test_compiled.py`` locks it), so the flag
is purely a performance switch.
"""

from __future__ import annotations

import os
from typing import Optional

__all__ = ["ENV_VAR", "compiled_default", "use_compiled"]

ENV_VAR = "REPRO_COMPILED"

_TRUE = frozenset(("1", "true", "yes", "on"))
_FALSE = frozenset(("", "0", "false", "no", "off"))


def _parse(value: str) -> bool:
    """One boolean spelling -> bool; raises on anything unrecognised."""
    lowered = value.strip().lower()
    if lowered in _TRUE:
        return True
    if lowered in _FALSE:
        return False
    raise ValueError(
        f"{ENV_VAR}={value!r} is not a boolean; use one of "
        f"{sorted(_TRUE)} / {sorted(_FALSE)}"
    )


def compiled_default() -> bool:
    """The ambient default: the ``REPRO_COMPILED`` environment flag."""
    value = os.environ.get(ENV_VAR)
    if value is None:
        return False
    return _parse(value)


def use_compiled(explicit: Optional[bool] = None) -> bool:
    """Resolve one call's ``compiled`` argument against the ambient flag.

    Strings parse through the same spellings as the environment flag —
    a caller forwarding ``compiled="0"`` (say, straight from its own
    environment or argv) means *off*, and ``bool("0")`` silently meant
    *on* before this guard.
    """
    if explicit is None:
        return compiled_default()
    if isinstance(explicit, str):
        return _parse(explicit)
    return bool(explicit)
