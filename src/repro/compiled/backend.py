"""The flat-array analytic (P, D) backend for :class:`StatsCache`.

Same contract as :class:`repro.incremental.backends.AnalyticBackend`
— ``full`` then incremental ``update`` calls must accumulate to the
bit-identical statistics a from-scratch run would produce — but the
arithmetic runs on the circuit's :class:`~repro.compiled.circuit.CompiledCircuit`
arrays instead of walking gate objects.  The backend keeps the live
``(prob, dens)`` arrays across updates; every mutation of the cache's
statistics flows through :meth:`update`, so the arrays never drift
from the cache's map.

Selected by ``StatsCache(..., compiled=True)`` or the
``REPRO_COMPILED`` environment flag (see :mod:`repro.compiled.flags`);
``name`` stays ``"analytic"`` so artifacts and reports are unaffected
by which engine produced the numbers — they are the same numbers.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..incremental.backends import AnalyticBackend
from ..stochastic.signal import SignalStats
from .circuit import CompiledCircuit, get_compiled

__all__ = ["CompiledAnalyticBackend"]


class CompiledAnalyticBackend(AnalyticBackend):
    """Analytic propagation on flat arrays; bit-identical to the object path.

    A subclass — not a sibling — of :class:`AnalyticBackend`: it
    computes the same function with the same name, so code (and tests)
    asking "is this the analytic backend?" should keep saying yes
    whichever engine the flag picked.
    """

    name = "analytic"
    compiled = True

    def __init__(self):
        self._cc: Optional[CompiledCircuit] = None
        self._prob: Optional[np.ndarray] = None
        self._dens: Optional[np.ndarray] = None

    def full(self, circuit, input_stats):
        self._cc = get_compiled(circuit)
        self._prob, self._dens = self._cc.stats_arrays(input_stats)
        stats: Dict[str, SignalStats] = {
            net: input_stats[net] for net in circuit.inputs
        }
        for gid, name in enumerate(self._cc.gate_names):
            out = self._cc.num_inputs + gid
            stats[self._cc.nets[out]] = SignalStats(
                float(self._prob[out]), float(self._dens[out])
            )
        return stats

    def _rebuild(self, circuit, input_stats, net_stats) -> CompiledCircuit:
        """Re-lower after a structural edit, seeding from ``net_stats``.

        The previous lowering went stale (gate/net ids changed), but the
        cache's statistics map is still exact for every surviving net:
        the floats it holds were read out of these very arrays, so
        writing them back is lossless.  Nets new to the circuit start at
        zero — they belong to the dirty cone of this update and are
        resettled (in level order, before any sink reads them) below.
        """
        cc = self._cc = get_compiled(circuit)
        prob = np.zeros(len(cc.nets))
        dens = np.zeros(len(cc.nets))
        for i, net in enumerate(cc.nets):
            stats = net_stats.get(net)
            if stats is None and net in input_stats:
                stats = input_stats[net]
            if stats is not None:
                prob[i] = stats.probability
                dens[i] = stats.density
        self._prob, self._dens = prob, dens
        return cc

    def update(self, circuit, dirty_gates, input_stats, changed_inputs,
               net_stats):
        cc = self._cc
        if cc is None:
            raise RuntimeError("update() before full()")
        if cc.stale:
            cc = self._rebuild(circuit, input_stats, net_stats)
        updates: Dict[str, SignalStats] = {}
        for net in changed_inputs:
            stats = input_stats[net]
            updates[net] = stats
            net_index = cc.net_id[net]
            self._prob[net_index] = stats.probability
            self._dens[net_index] = stats.density
        gate_ids = np.fromiter(
            (cc.gate_id[g.name] for g in dirty_gates),
            dtype=np.int64, count=len(dirty_gates),
        )
        cc.resettle_stats(gate_ids, self._prob, self._dens)
        for gate in dirty_gates:
            out = cc.net_id[gate.output]
            updates[gate.output] = SignalStats(
                float(self._prob[out]), float(self._dens[out])
            )
        return updates
