"""Vectorized bit-parallel sampling on uint64 lane blocks.

The sampled estimator of :mod:`repro.sim.bitsim` packs ``W`` Monte
Carlo lanes into one Python big int per (net, step) and settles gates
one at a time in pure Python.  This module re-lays those streams into
a ``(steps, lanes/64)`` uint64-blocked numpy layout — bit ``k`` of a
stream is bit ``k % 64`` of little-endian word ``k // 64``, the exact
byte layout of ``int.to_bytes(..., "little")`` — and evaluates each
(level, class) gate batch of a :class:`~repro.compiled.circuit.CompiledCircuit`
with elementwise ``np.bitwise_*`` reductions.

**Bit-identity.**  The Shannon word evaluators of
:func:`repro.sim.bitsim._compile_word_function` use only ``&``, ``|``,
``~`` and the lane mask, so the very same memoised closures run here
on uint64 ndarrays (the operators are elementwise and exact); the
Markov input streams are drawn from the identical
:func:`~repro.sim.bitsim.stream_rng` substreams with the identical
``rng.random(lanes)`` call sequence, then packed with the same
little-endian ``np.packbits`` convention as
``repro.sim.bitsim._word_from_bools``.  Ones/toggle counts are
therefore integer-equal to the big-int path, and the derived
:class:`~repro.sim.bitsim.BitSimReport` statistics are float-equal.

Entry points:

* :class:`SampledKernel` — the raw ``(nets, steps, blocks)`` history
  with full settling and dirty-cone resettling;
* :class:`CompiledSampledBackend` — the :class:`StatsCache` backend
  (``make_backend("sampled", compiled=True)``), a drop-in for
  :class:`~repro.incremental.backends.SampledBackend`;
* :func:`compiled_sampled_stats` — the
  ``propagate_stats(method="sampled", compiled=True)`` engine,
  bit-identical to :func:`repro.sim.bitsim.sampled_stats`.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional

import numpy as np

from ..circuit.netlist import Circuit
from ..sim.bitsim import (
    DEFAULT_LANES,
    BitSimReport,
    _compile_word_function,
    _resolve_rng,
    stream_rng,
)
from ..obs.metrics import REGISTRY as _METRICS
from ..stochastic.signal import SignalStats
from .circuit import CompiledCircuit, get_compiled

__all__ = [
    "blocks_for_lanes",
    "lane_mask_blocks",
    "pack_lane_bools",
    "blocks_from_int",
    "int_from_blocks",
    "markov_stream_blocks",
    "SampledKernel",
    "CompiledSampledBackend",
    "compiled_sampled_stats",
]

#: Process-global kernel metrics: sampled-settle invocation counts and
#: batch-size distribution (twins of the analytic kernels' metrics in
#: :mod:`repro.compiled.circuit`).
_SETTLE_CALLS = _METRICS.counter("compiled.settle_group.calls")
_SETTLE_SIZES = _METRICS.histogram("compiled.settle_group.batch_size")


#: uint64 words per stream step for a given lane count.
def blocks_for_lanes(lanes: int) -> int:
    return (lanes + 63) // 64


def lane_mask_blocks(lanes: int) -> np.ndarray:
    """The ``(1 << lanes) - 1`` lane mask as a ``(blocks,)`` uint64 row."""
    blocks = blocks_for_lanes(lanes)
    mask = np.full(blocks, np.uint64(0xFFFFFFFFFFFFFFFF), dtype=np.uint64)
    tail = lanes % 64
    if tail:
        mask[-1] = np.uint64((1 << tail) - 1)
    return mask


def pack_lane_bools(values: np.ndarray, blocks: int) -> np.ndarray:
    """Pack a boolean lane vector into ``(blocks,)`` uint64 words.

    Element ``k`` lands on bit ``k % 64`` of word ``k // 64`` — the
    little-endian convention of ``bitsim._word_from_bools``, so
    ``int_from_blocks(pack_lane_bools(v, b)) == _word_from_bools(v)``.
    """
    packed = np.packbits(values.astype(np.uint8), bitorder="little")
    buffer = np.zeros(blocks * 8, dtype=np.uint8)
    buffer[: len(packed)] = packed
    return buffer.view(np.dtype("<u8"))


def blocks_from_int(word: int, blocks: int) -> np.ndarray:
    """One big-int packed word as a ``(blocks,)`` uint64 row."""
    data = word.to_bytes(blocks * 8, "little")
    return np.frombuffer(data, dtype=np.dtype("<u8")).copy()


def int_from_blocks(row: np.ndarray) -> int:
    """The big-int form of a ``(blocks,)`` uint64 row."""
    return int.from_bytes(
        np.ascontiguousarray(row, dtype=np.dtype("<u8")).tobytes(), "little"
    )


def _bernoulli_blocks(rng: np.random.Generator, p: float, lanes: int,
                      blocks: int) -> np.ndarray:
    # The identical rng.random(lanes) draw bitsim._bernoulli_word makes.
    return pack_lane_bools(rng.random(lanes) < p, blocks)


def markov_stream_blocks(stats: SignalStats, lanes: int, steps: int,
                         dt: float, rng: np.random.Generator) -> np.ndarray:
    """``(steps, blocks)`` uint64 form of one input's Markov chain.

    Draws the identical random sequence as
    :func:`repro.sim.bitsim.markov_stream_words` — stationary initial
    word, then per-step fall/rise flips — so
    ``int_from_blocks(result[k]) == markov_stream_words(...)[k]`` for
    every step, given the same ``rng`` state.
    """
    high, low = stats.mean_high_dwell, stats.mean_low_dwell
    if np.isfinite(high) and dt > min(high, low):
        raise ValueError(
            f"dt={dt:g} too coarse: per-step toggle probability exceeds 1 "
            f"(mean dwells are {high:g}/{low:g})"
        )
    blocks = blocks_for_lanes(lanes)
    mask = lane_mask_blocks(lanes)
    word = _bernoulli_blocks(rng, stats.probability, lanes, blocks)
    out = np.empty((steps, blocks), dtype=np.uint64)
    out[0] = word
    for k in range(1, steps):
        if np.isfinite(high):
            fall = _bernoulli_blocks(rng, dt / high, lanes, blocks)
            rise = _bernoulli_blocks(rng, dt / low, lanes, blocks)
            word = word ^ ((word & fall) | (~word & mask & rise))
        out[k] = word
    return out


class SampledKernel:
    """The vectorized word-stream state of one compiled circuit.

    ``hist[net_id]`` is the net's ``(steps, blocks)`` packed stream —
    the array twin of :meth:`BitParallelSimulator.settle_streams`'s
    per-net big-int lists.  Gate evaluation is batched by the compiled
    circuit's (level, stats-class) plan: every gate of a class shares
    one Shannon word evaluator, which runs elementwise on the whole
    ``(gates, steps, blocks)`` fanin stack at once.
    """

    def __init__(self, cc: CompiledCircuit, lanes: int, steps: int):
        if lanes < 1:
            raise ValueError("need at least one sample lane")
        if steps < 1:
            raise ValueError("need at least one time step")
        self.cc = cc
        self.lanes = lanes
        self.steps = steps
        self.blocks = blocks_for_lanes(lanes)
        self.mask = lane_mask_blocks(lanes)
        self.hist = np.zeros((len(cc.nets), steps, self.blocks),
                             dtype=np.uint64)

    # ------------------------------------------------------------------
    def set_input_stream(self, net: str, stream: np.ndarray) -> None:
        """Bind one primary input's ``(steps, blocks)`` stream."""
        if stream.shape != (self.steps, self.blocks):
            raise ValueError(
                f"stream for {net!r} has shape {stream.shape}; "
                f"expected {(self.steps, self.blocks)}"
            )
        self.hist[self.cc.net_id[net]] = stream

    def _settle_group(self, cls, ids: np.ndarray, fanin: np.ndarray) -> None:
        _SETTLE_CALLS.inc()
        _SETTLE_SIZES.observe(len(ids))
        # The memoised big-int Shannon closure runs unchanged on uint64
        # ndarrays: &, |, ~ and the mask are elementwise and exact.
        fn = _compile_word_function(cls.arity, cls.tt_bits)
        words = [self.hist[fanin[:, j]] for j in range(cls.arity)]
        out = fn(words, self.mask)
        shape = (len(ids), self.steps, self.blocks)
        # Constant functions come back as the scalar 0 or the (blocks,)
        # mask row; broadcast either to the full batch shape.
        out = np.broadcast_to(np.asarray(out, dtype=np.uint64), shape)
        self.hist[self.cc.out_net[ids]] = out

    def settle_full(self, streams: Mapping[str, np.ndarray]) -> None:
        """Settle every net from per-input streams (from-scratch sweep)."""
        cc = self.cc
        cc._sync_codes()
        for net in cc.circuit.inputs:
            self.set_input_stream(net, streams[net])
        for cls, ids, fanin in cc._stats_full_plan():
            self._settle_group(cls, ids, fanin)

    def resettle(self, gate_ids: np.ndarray) -> None:
        """Recompute the given gates' streams in place (dirty cone).

        Level-batched like
        :meth:`~repro.compiled.circuit.CompiledCircuit.resettle_stats`:
        each gate reads already-updated fanin streams, exactly as the
        topological :meth:`BitParallelSimulator.resettle` walk would,
        so the rebuilt streams are bit-identical.
        """
        if not len(gate_ids):
            return
        cc = self.cc
        levels = cc.level[gate_ids]
        order = np.argsort(levels, kind="stable")
        sorted_ids = gate_ids[order]
        boundaries = np.flatnonzero(np.diff(levels[order])) + 1
        for chunk in np.split(sorted_ids, boundaries):
            codes = cc.stats_code[chunk]
            for code in np.unique(codes):
                sub = chunk[codes == code]
                cls = cc._stats_classes[code]
                self._settle_group(cls, sub, cc._fanin_matrix(sub, cls.arity))

    # ------------------------------------------------------------------
    def counts(self, net_ids: Iterable[int]) -> tuple:
        """``(ones, toggles)`` per net name — integer-equal to the
        big-int path's ``bit_count`` sums."""
        ones: Dict[str, int] = {}
        toggles: Dict[str, int] = {}
        nets = self.cc.nets
        for i in net_ids:
            words = self.hist[i]
            ones[nets[i]] = int(
                np.bitwise_count(words).sum(dtype=np.int64))
            toggles[nets[i]] = int(
                np.bitwise_count(words[1:] ^ words[:-1]).sum(dtype=np.int64))
        return ones, toggles

    def report(self, net_ids: Iterable[int], dt: float) -> BitSimReport:
        """Fold the given nets' streams into a :class:`BitSimReport`."""
        ones, toggles = self.counts(net_ids)
        return BitSimReport(self.lanes, self.steps, dt, ones, toggles)


# ----------------------------------------------------------------------
# The StatsCache backend
# ----------------------------------------------------------------------
from ..incremental.backends import SampledBackend  # noqa: E402  (cycle-free:
# backends does not import this module at top level)


class CompiledSampledBackend(SampledBackend):
    """Monte Carlo measurement on uint64 lane blocks; bit-identical.

    A subclass — not a sibling — of :class:`SampledBackend` for the
    same reason :class:`~repro.compiled.backend.CompiledAnalyticBackend`
    subclasses the analytic backend: it computes the same function
    under the same ``name``, so artifacts and backend checks are
    unaffected by which engine produced the numbers.  The stream cache
    holds ``(steps, blocks)`` uint64 arrays instead of big-int lists;
    substreams, packing and counts match the object path bit for bit.
    """

    name = "sampled"
    compiled = True

    def __init__(self, lanes: int = DEFAULT_LANES, steps: int = 64,
                 dt: Optional[float] = None, seed: int = 0):
        super().__init__(lanes=lanes, steps=steps, dt=dt, seed=seed)
        self._kernel: Optional[SampledKernel] = None

    def _input_stream(self, net: str, stats) -> np.ndarray:
        """The net's packed stream array, drawn once per distinct (P, D).

        Same cache discipline as the big-int backend: regeneration is
        deterministic (``stream_rng`` rebuilds from ``(seed, net)``),
        so caching changes nothing bit-wise — it keeps trial rollbacks
        from redrawing streams the run has already seen.
        """
        key = (net, stats.probability, stats.density)
        stream = self._stream_cache.get(key)
        if stream is None:
            stream = markov_stream_blocks(
                stats, self.lanes, self.steps, self.dt,
                stream_rng(self.seed, net),
            )
            self._stream_cache[key] = stream
        return stream

    def full(self, circuit, input_stats):
        self.dt = self._resolve_dt(circuit, input_stats)
        self._stream_cache.clear()  # dt may have changed; old words are stale
        circuit.validate()
        self._kernel = SampledKernel(get_compiled(circuit), self.lanes,
                                     self.steps)
        streams = {
            net: self._input_stream(net, input_stats[net])
            for net in circuit.inputs
        }
        self._kernel.settle_full(streams)
        report = self._kernel.report(range(len(self._kernel.cc.nets)), self.dt)
        return report.stats_map()

    def update(self, circuit, dirty_gates, input_stats, changed_inputs,
               net_stats):
        kernel = self._kernel
        if kernel is None:
            raise RuntimeError("update() before full()")
        cc = kernel.cc
        for net in changed_inputs:
            kernel.set_input_stream(net, self._input_stream(net,
                                                            input_stats[net]))
        gate_ids = np.fromiter(
            (cc.gate_id[g.name] for g in dirty_gates),
            dtype=np.int64, count=len(dirty_gates),
        )
        kernel.resettle(gate_ids)
        updated = [cc.net_id[net] for net in changed_inputs]
        updated.extend(int(cc.out_net[gid]) for gid in gate_ids)
        report = kernel.report(updated, self.dt)
        return {net: report.measured_stats(net) for net in report.ones}


# ----------------------------------------------------------------------
# The propagate_stats(method="sampled") engine
# ----------------------------------------------------------------------
def compiled_sampled_stats(circuit: Circuit,
                           input_stats: Mapping[str, SignalStats],
                           lanes: int = DEFAULT_LANES, steps: int = 64,
                           dt: Optional[float] = None,
                           seed: Optional[int] = 0) -> Dict[str, SignalStats]:
    """Drop-in for :func:`repro.sim.bitsim.sampled_stats`, vectorized.

    Replays :meth:`BitParallelSimulator.run`'s shared-stream draw order
    exactly — initial Bernoulli words for every input in declaration
    order, then per step per input a fall and a rise word — so the
    measured statistics are bit-identical to the big-int path.
    """
    circuit.validate()
    missing = [n for n in circuit.inputs if n not in input_stats]
    if missing:
        raise KeyError(f"missing input statistics for {missing}")
    if steps < 1:
        raise ValueError("need at least one time step")
    rng = _resolve_rng(seed)

    dwells = {}
    shortest = np.inf
    for net in circuit.inputs:
        stats = input_stats[net]
        high, low = stats.mean_high_dwell, stats.mean_low_dwell
        dwells[net] = (high, low)
        shortest = min(shortest, high, low)
    if dt is None:
        dt = 0.5 * shortest if np.isfinite(shortest) else 1.0
    if dt <= 0.0:
        raise ValueError("dt must be positive")
    if dt > shortest:
        raise ValueError(
            f"dt={dt:g} too coarse: per-step toggle probability exceeds 1 "
            f"(shortest mean dwell is {shortest:g})"
        )

    blocks = blocks_for_lanes(lanes)
    mask = lane_mask_blocks(lanes)
    streams = {
        net: np.empty((steps, blocks), dtype=np.uint64)
        for net in circuit.inputs
    }
    words = {
        net: _bernoulli_blocks(rng, input_stats[net].probability, lanes,
                               blocks)
        for net in circuit.inputs
    }
    for net in circuit.inputs:
        streams[net][0] = words[net]
    for k in range(1, steps):
        for net in circuit.inputs:
            high, low = dwells[net]
            if np.isfinite(high):
                word = words[net]
                fall = _bernoulli_blocks(rng, dt / high, lanes, blocks)
                rise = _bernoulli_blocks(rng, dt / low, lanes, blocks)
                words[net] = word ^ ((word & fall) | (~word & mask & rise))
            streams[net][k] = words[net]

    kernel = SampledKernel(get_compiled(circuit), lanes, steps)
    kernel.settle_full(streams)
    report = kernel.report(range(len(kernel.cc.nets)), dt)
    return report.stats_map()
