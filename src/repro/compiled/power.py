"""Class-shaped vectorized evaluation of the gate power model.

:class:`~repro.incremental.cache.StatsCache`'s power refresh prices
each dirty gate through the object graph — per node, per pin, one
:meth:`TruthTable.probability` call each for ``H``, ``G`` and the two
Boolean differences.  This module lowers that arithmetic the same way
:mod:`repro.compiled.circuit` lowers the (P, D) sweep: gates sharing a
(template, configuration) class share all node tables, so one pass
computes the per-minterm weight matrix of a whole same-class batch and
reduces every node's probability/transition columns at once.

**The equivalence contract.**  Bit-identical to
:class:`~repro.core.power_model.GatePowerModel` — every float comes
out of the same operations in the same order:

* per-minterm weights and masked sums follow
  :meth:`TruthTable.probability` (via ``_rowwise_selected_sum``, the
  1-D pairwise summation lift);
* the steady-state guard ``ph + pg <= eps -> 0`` and the conditioned
  formula's denominators reproduce
  :meth:`GatePowerModel.node_probability` /
  :meth:`~GatePowerModel._transition_fraction`, with ``np.where``
  substituting the guarded denominators so live lanes divide by the
  identical double;
* per-pin transition terms accumulate in pin order with the same
  skip-zero-density fold as :meth:`GatePowerModel.node_transitions`;
* node capacitances follow :func:`repro.gates.capacitance.node_capacitance`
  (class-constant intrinsic terms, per-gate output load added last) and
  node powers ``(factor * cap) * transitions`` keep the Python
  left-to-right association.

Power classes key on (template, configuration) — the exact key space
of the timing classes — so the kernel reuses the compiled circuit's
``timing_code`` bookkeeping and the compiled gates its classes already
hold.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..boolean.truthtable import TruthTable, _minterm_matrix
from ..core.power_model import (
    _EPS,
    GatePowerModel,
    GatePowerReport,
    NodePowerEntry,
)
from ..gates.network import OUT, CompiledGate
from ..obs.metrics import REGISTRY as _METRICS
from .circuit import CompiledCircuit, _rowwise_selected_sum, _tt_selection

__all__ = ["CompiledPowerKernel"]

#: Process-global kernel metrics: power-kernel invocation counts and
#: batch-size distribution (see :mod:`repro.compiled.circuit` for the
#: statistics/timing twins).
_POWER_EVAL_CALLS = _METRICS.counter("compiled.power_eval.calls")
_POWER_EVAL_SIZES = _METRICS.histogram("compiled.power_eval.batch_size")


def _table(tt: TruthTable) -> tuple:
    """``(selection, constant)`` form of one node table.

    Mirrors :meth:`TruthTable.probability`'s early-out: constants (and
    zero-variable tables) evaluate to an exact 0.0/1.0; everything
    else selects minterm weights.
    """
    if len(tt.vars) == 0 or tt.is_constant():
        return None, (1.0 if tt.bits else 0.0)
    return _tt_selection(tt), None


class _PowerClass:
    """Per-(template, configuration) data of the power kernel."""

    __slots__ = ("arity", "mat", "nodes", "is_out", "intrinsic_cap",
                 "node_h", "node_g", "node_dh", "node_dg")

    def __init__(self, compiled: CompiledGate):
        self.arity = len(compiled.inputs)
        self.mat = _minterm_matrix(self.arity) if self.arity else None
        self.nodes: Tuple[str, ...] = compiled.nodes
        self.is_out = tuple(node == OUT for node in self.nodes)
        #: Load-independent node capacitance terms, keyed by tech at
        #: evaluation time (config-independent transistor counts).
        self.intrinsic_cap = {
            node: compiled.terminal_counts[node] for node in self.nodes
        }
        self.node_h = [_table(compiled.h[node]) for node in self.nodes]
        self.node_g = [_table(compiled.g[node]) for node in self.nodes]
        self.node_dh = [
            [_table(compiled.dh[(node, pin)]) for pin in compiled.inputs]
            for node in self.nodes
        ]
        self.node_dg = [
            [_table(compiled.dg[(node, pin)]) for pin in compiled.inputs]
            for node in self.nodes
        ]

    def _prob(self, weights: Optional[np.ndarray], table: tuple,
              count: int) -> np.ndarray:
        sel, const = table
        if sel is None:
            return np.full(count, const)
        return np.minimum(1.0, np.maximum(
            0.0, _rowwise_selected_sum(weights, sel)))

    def evaluate(self, model: GatePowerModel, p_in: np.ndarray,
                 d_in: np.ndarray, loads: np.ndarray):
        """Node-level power of one same-class batch.

        Returns ``(caps, p_node, transitions, power, totals)`` — each a
        per-node list of per-gate columns (``totals`` a single column),
        every float bit-identical to :meth:`GatePowerModel.gate_power`.
        """
        count = len(loads)
        _POWER_EVAL_CALLS.inc()
        _POWER_EVAL_SIZES.observe(count)
        tech = model.tech
        factor = tech.switch_energy_factor
        if self.mat is not None:
            weights = np.prod(
                np.where(self.mat[None, :, :] == 1,
                         p_in[:, None, :], 1.0 - p_in[:, None, :]),
                axis=2,
            )
        else:  # pragma: no cover - zero-input cells do not occur
            weights = None
        caps, probs, trans, powers = [], [], [], []
        totals = np.zeros(count)
        for i, node in enumerate(self.nodes):
            is_out = self.is_out[i]
            # node_capacitance: intrinsic terms are class constants;
            # the external load lands last, output node only.
            base = self.intrinsic_cap[node] * tech.c_diff
            if is_out:
                cap = (base + tech.c_wire) + loads
            else:
                cap = np.full(count, base)
            ph = self._prob(weights, self.node_h[i], count)
            pg = self._prob(weights, self.node_g[i], count)
            ok = (ph + pg) > _EPS
            p_node = np.where(ok, ph / np.where(ok, ph + pg, 1.0), 0.0)
            total = np.zeros(count)
            for j in range(self.arity):
                d_col = d_in[:, j]
                p_dh = self._prob(weights, self.node_dh[i][j], count)
                if model.formula == "output-only":
                    frac = p_dh if is_out else 0.0
                elif model.formula == "independent":
                    p_dg = self._prob(weights, self.node_dg[i][j], count)
                    frac = p_dh * (1.0 - p_node) + p_dg * p_node
                else:  # "conditioned"
                    p_dg = self._prob(weights, self.node_dg[i][j], count)
                    okr = (1.0 - ph) > _EPS
                    rise = np.where(
                        okr,
                        (0.5 * p_dh) * np.minimum(
                            1.0,
                            (1.0 - p_node) / np.where(okr, 1.0 - ph, 1.0)),
                        0.0,
                    )
                    okf = (1.0 - pg) > _EPS
                    fall = np.where(
                        okf,
                        (0.5 * p_dg) * np.minimum(
                            1.0, p_node / np.where(okf, 1.0 - pg, 1.0)),
                        0.0,
                    )
                    frac = rise + fall
                # node_transitions skips zero-density pins; np.where
                # keeps the fold literally identical.
                total = np.where(d_col == 0.0, total, total + d_col * frac)
            transitions = np.where(ok, total, 0.0)
            power = (factor * cap) * transitions
            caps.append(cap)
            probs.append(p_node)
            trans.append(transitions)
            powers.append(power)
            # GatePowerReport.total is a left fold over the entries.
            totals = totals + power
        return caps, probs, trans, powers, totals


class CompiledPowerKernel:
    """Batched power pricing over one compiled circuit.

    Owns the (template, configuration) class registry; per-gate class
    membership rides on the compiled circuit's ``timing_code`` (same
    key space), so edit listeners keep it current for free.
    """

    def __init__(self, cc: CompiledCircuit, model: GatePowerModel):
        self.cc = cc
        self.model = model
        #: timing code -> _PowerClass, built lazily from the compiled
        #: gate the timing class already holds.
        self._classes: Dict[int, _PowerClass] = {}
        #: (template name, config key) -> _PowerClass, for candidate
        #: configurations not (yet) present on the circuit.
        self._by_key: Dict[tuple, _PowerClass] = {}

    def class_for_code(self, code: int) -> _PowerClass:
        cls = self._classes.get(code)
        if cls is None:
            timing_cls = self.cc._timing_classes[code]
            cls = _PowerClass(timing_cls._compiled)
            self._classes[code] = cls
        return cls

    def class_for_gate(self, compiled: CompiledGate, key: tuple) -> _PowerClass:
        """Class of an arbitrary candidate (template, config key)."""
        cls = self._by_key.get(key)
        if cls is None:
            cls = _PowerClass(compiled)
            self._by_key[key] = cls
        return cls

    # ------------------------------------------------------------------
    def _gather(self, gids: Sequence[int], arity: int,
                stats: Mapping) -> tuple:
        """Pin (P, D) matrices of same-arity gates from a stats map."""
        cc = self.cc
        count = len(gids)
        p_in = np.empty((count, arity))
        d_in = np.empty((count, arity))
        for row, gid in enumerate(gids):
            start = cc.fanin_ptr[gid]
            for j in range(arity):
                s = stats[cc.nets[cc.fanin_net[start + j]]]
                p_in[row, j] = s.probability
                d_in[row, j] = s.density
        return p_in, d_in

    def reports(self, names: Sequence[str], stats: Mapping,
                po_load: float) -> Dict[str, GatePowerReport]:
        """Fresh :class:`GatePowerReport` per gate, batched by class.

        ``stats`` maps net name to :class:`SignalStats` (the cache's
        current map); ``po_load`` is the resolved primary-output load.
        Bit-identical to calling :meth:`GatePowerModel.gate_power` per
        gate with loads from :func:`~repro.gates.capacitance.net_load`.
        """
        cc = self.cc
        model = self.model
        cc._sync_codes()
        loads = cc.net_loads(model.tech, po_load)
        gids = np.fromiter((cc.gate_id[n] for n in names), dtype=np.int64,
                           count=len(names))
        out: Dict[str, GatePowerReport] = {}
        if not len(gids):
            return out
        codes = cc.timing_code[gids]
        for code in np.unique(codes):
            sub = gids[codes == code]
            cls = self.class_for_code(int(code))
            p_in, d_in = self._gather(sub, cls.arity, stats)
            gate_loads = loads[cc.out_net[sub]]
            caps, probs, trans, powers, _ = cls.evaluate(
                model, p_in, d_in, gate_loads)
            for row, gid in enumerate(sub):
                entries = tuple(
                    NodePowerEntry(
                        node,
                        float(caps[i][row]),
                        float(probs[i][row]),
                        float(trans[i][row]),
                        float(powers[i][row]),
                    )
                    for i, node in enumerate(cls.nodes)
                )
                out[cc.gate_names[gid]] = GatePowerReport(entries, model.tech)
        return out

    def gate_totals(self, names: Sequence[str], stats: Mapping,
                    po_load: float) -> np.ndarray:
        """Total power per gate (no report objects), batched by class."""
        cc = self.cc
        model = self.model
        cc._sync_codes()
        loads = cc.net_loads(model.tech, po_load)
        gids = np.fromiter((cc.gate_id[n] for n in names), dtype=np.int64,
                           count=len(names))
        totals = np.empty(len(gids))
        if not len(gids):
            return totals
        codes = cc.timing_code[gids]
        positions = np.arange(len(gids))
        for code in np.unique(codes):
            where = codes == code
            sub = gids[where]
            cls = self.class_for_code(int(code))
            p_in, d_in = self._gather(sub, cls.arity, stats)
            *_, batch_totals = cls.evaluate(model, p_in, d_in,
                                            loads[cc.out_net[sub]])
            totals[positions[where]] = batch_totals
        return totals
