"""The checkpoint container: checksummed canonical JSON, written atomically.

A checkpoint is a plain-data *payload* (the search layer owns its
schema — see :mod:`repro.incremental.search`) wrapped in a container
that makes damage detectable::

    {"schema": 1, "crc": <crc32 of the canonical payload bytes>,
     "payload": {...}}

Writes are atomic (:func:`repro.robust.atomic.atomic_write_text`), so
a kill mid-save leaves the previous checkpoint intact.  Reads verify
the container shape, schema and CRC and raise :class:`CheckpointError`
on any mismatch — a torn or corrupted file is *rejected*, never half
loaded (``tests/test_robust_checkpoint.py`` drives this with the
``tear-checkpoint`` fault).

Byte-stability: the container serialisation is canonical (sorted keys,
fixed separators, trailing newline), and payload floats round-trip
exactly through JSON (``repr`` shortest-round-trip), so saving and
reloading a search state loses nothing.
"""

from __future__ import annotations

import json
import os
import zlib
from typing import Dict, Optional

from . import faults as _faults
from .atomic import atomic_write_text

__all__ = [
    "CHECKPOINT_SCHEMA",
    "DEFAULT_CHECKPOINT_EVERY",
    "CheckpointError",
    "dumps_checkpoint",
    "save_checkpoint",
    "load_checkpoint",
]

CHECKPOINT_SCHEMA = 1

#: Default ``--checkpoint-every`` cadence, in accepted moves.  Snapshots
#: happen at accept boundaries (the one point where both caches are
#: fully flushed, so no dirty-set state needs capturing); every 32
#: accepts keeps the overhead well under the 5% floor
#: ``benchmarks/bench_checkpoint_overhead.py`` holds.
DEFAULT_CHECKPOINT_EVERY = 32


class CheckpointError(ValueError):
    """A checkpoint file that must not be trusted (torn, foreign, stale)."""


def _canonical_payload(payload: Dict[str, object]) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def dumps_checkpoint(payload: Dict[str, object]) -> str:
    """Serialise ``payload`` into the checksummed container form."""
    body = _canonical_payload(payload)
    container = {
        "schema": CHECKPOINT_SCHEMA,
        "crc": zlib.crc32(body.encode("utf-8")),
        "payload": payload,
    }
    return json.dumps(container, sort_keys=True, indent=2,
                      separators=(",", ": ")) + "\n"


def save_checkpoint(path: str, payload: Dict[str, object]) -> None:
    """Atomically write ``payload`` as a checkpoint at ``path``.

    With the ``tear-checkpoint=N`` fault armed this instead simulates a
    non-atomic writer dying mid-write — the first N container bytes
    land on the final path and :class:`~repro.robust.faults.FaultInjected`
    is raised — which is exactly the file :func:`load_checkpoint` must
    reject.
    """
    text = dumps_checkpoint(payload)
    torn = _faults.torn_bytes("checkpoint.write")
    if torn is not None:
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        with open(path, "w") as handle:
            handle.write(text[:torn])
        raise _faults.FaultInjected(
            f"injected fault: checkpoint torn at byte {torn}"
        )
    atomic_write_text(path, text)


def load_checkpoint(path: str,
                    expect_kind: Optional[str] = None) -> Dict[str, object]:
    """Load and verify a checkpoint; return its payload.

    Raises :class:`CheckpointError` for anything that is not a whole,
    schema-matched, checksum-clean checkpoint — including a payload
    whose ``kind`` differs from ``expect_kind`` (resuming a portfolio
    run from a single-search checkpoint, say).  ``OSError`` (missing
    file, permissions) passes through untouched.
    """
    with open(path) as handle:
        text = handle.read()
    try:
        container = json.loads(text)
    except json.JSONDecodeError as error:
        raise CheckpointError(
            f"{path}: not a whole checkpoint (torn write?): {error}"
        ) from None
    if not isinstance(container, dict) or "payload" not in container:
        raise CheckpointError(f"{path}: not a checkpoint container")
    schema = container.get("schema")
    if schema != CHECKPOINT_SCHEMA:
        raise CheckpointError(
            f"{path}: unsupported checkpoint schema {schema!r} "
            f"(expected {CHECKPOINT_SCHEMA})"
        )
    payload = container["payload"]
    if not isinstance(payload, dict):
        raise CheckpointError(f"{path}: checkpoint payload is not an object")
    crc = zlib.crc32(_canonical_payload(payload).encode("utf-8"))
    if crc != container.get("crc"):
        raise CheckpointError(
            f"{path}: checkpoint checksum mismatch (corrupted file)"
        )
    if expect_kind is not None and payload.get("kind") != expect_kind:
        raise CheckpointError(
            f"{path}: checkpoint kind {payload.get('kind')!r} does not "
            f"match this run (expected {expect_kind!r})"
        )
    return payload
