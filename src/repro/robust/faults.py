"""Env-driven fault injection: kill workers, raise in kernels, tear writes.

Fault tolerance that is never exercised is fault tolerance that does
not exist.  This module gives the recovery tests and the CI smoke step
a way to inject the exact failures the robust layer claims to survive,
from the outside, with no test-only hooks in the production code
paths: the injection *sites* are ordinary :func:`fire` calls that cost
one environment read when no plan is armed.

Arm with ``REPRO_FAULTS``, a ``;``-separated list of fault specs::

    kill-restart=K        SIGKILL the worker running portfolio restart K
    crash-restart=K       raise FaultInjected inside restart K
    sleep-restart=K:SECS  stall restart K for SECS seconds (deadline tests)
    kill-case=NAME        SIGKILL the bench worker running case NAME
    crash-case=NAME       raise FaultInjected inside bench case NAME
    sleep-case=NAME:SECS  stall bench case NAME for SECS seconds
    raise-kernel=1        raise FaultInjected at the compiled power kernel
                          call site (drives the compiled->object fallback)
    tear-checkpoint=N     simulate a non-atomic writer dying mid-write:
                          the checkpoint's first N bytes land on the
                          final path, then FaultInjected is raised
    sigterm-search=N      SIGTERM the current process at search step N

Specs are inherited by worker processes through the environment, so a
fault armed on the CLI reaches pool workers too.

**Once semantics.**  ``kill``/``crash``/``sleep``/``sigterm`` faults
fire once *per marker scope*: with ``REPRO_FAULTS_STATE`` set to a
directory, a marker file records the firing atomically
(``O_CREAT|O_EXCL``), so a supervised retry of the killed worker runs
clean — the recovery path under test.  Without a state directory the
fault fires on every matching call (a retried worker dies again —
the retries-exhausted path under test).  ``raise-kernel`` and
``tear-checkpoint`` always fire: their consumers (the fallback latch,
the torn-file reader) are expected to make the *second* attempt moot.
"""

from __future__ import annotations

import os
import signal
import time
from typing import Dict, List, Optional, Tuple

__all__ = [
    "ENV_VAR",
    "STATE_ENV_VAR",
    "STRICT_ENV_VAR",
    "FaultInjected",
    "fire",
    "torn_bytes",
    "strict_mode",
]

ENV_VAR = "REPRO_FAULTS"
STATE_ENV_VAR = "REPRO_FAULTS_STATE"
STRICT_ENV_VAR = "REPRO_ROBUST_STRICT"

_TRUE = frozenset(("1", "true", "yes", "on"))


class FaultInjected(RuntimeError):
    """An injected failure (never raised unless ``REPRO_FAULTS`` is armed)."""


#: spec name -> (injection point, action); the match argument's meaning
#: depends on the point (restart index, case name, step count).
_SPECS = {
    "kill-restart": ("portfolio.restart", "kill"),
    "crash-restart": ("portfolio.restart", "crash"),
    "sleep-restart": ("portfolio.restart", "sleep"),
    "kill-case": ("bench.case", "kill"),
    "crash-case": ("bench.case", "crash"),
    "sleep-case": ("bench.case", "sleep"),
    "raise-kernel": ("kernel.power", "crash"),
    "tear-checkpoint": ("checkpoint.write", "tear"),
    "sigterm-search": ("search.step", "sigterm"),
}

#: Actions that fire once per marker scope (see module docstring).
_ONE_SHOT = frozenset(("kill", "crash", "sleep", "sigterm"))

#: Parsed plans memoised by the raw env string (env reads stay cheap).
_PLAN_CACHE: Dict[str, Dict[str, List[Tuple[str, str, str, Optional[float]]]]] = {}


def _parse_plan(raw: str) -> Dict[str, List[Tuple[str, str, str, Optional[float]]]]:
    """``point -> [(entry, action, match, seconds), ...]`` from a spec string."""
    plan: Dict[str, List[Tuple[str, str, str, Optional[float]]]] = {}
    for chunk in raw.split(";"):
        entry = chunk.strip()
        if not entry:
            continue
        name, sep, value = entry.partition("=")
        name = name.strip()
        if not sep or name not in _SPECS:
            raise ValueError(
                f"{ENV_VAR}: bad fault spec {entry!r}; known specs: "
                f"{', '.join(sorted(_SPECS))} (form name=value)"
            )
        point, action = _SPECS[name]
        match, sep, seconds_text = value.strip().partition(":")
        seconds: Optional[float] = None
        if action == "sleep":
            if not sep:
                raise ValueError(
                    f"{ENV_VAR}: {name} needs MATCH:SECONDS, got {entry!r}"
                )
            seconds = float(seconds_text)
        elif sep:
            raise ValueError(f"{ENV_VAR}: unexpected ':' in {entry!r}")
        plan.setdefault(point, []).append((entry, action, match, seconds))
    return plan


def _active_plan() -> Optional[Dict[str, List[Tuple[str, str, str, Optional[float]]]]]:
    raw = os.environ.get(ENV_VAR)
    if not raw:
        return None
    plan = _PLAN_CACHE.get(raw)
    if plan is None:
        plan = _parse_plan(raw)
        _PLAN_CACHE[raw] = plan
    return plan


def _claim_marker(entry: str) -> bool:
    """True when this firing owns the one-shot marker (or no state dir).

    The marker file is created with ``O_CREAT | O_EXCL`` — atomic
    across processes — so exactly one firing claims it per state
    directory, and a supervised retry of a killed worker runs clean.
    """
    state_dir = os.environ.get(STATE_ENV_VAR)
    if not state_dir:
        return True
    os.makedirs(state_dir, exist_ok=True)
    marker = os.path.join(
        state_dir, entry.replace("=", "_").replace(":", "_") + ".fired"
    )
    try:
        fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    os.write(fd, f"pid {os.getpid()}\n".encode())
    os.close(fd)
    return True


def fire(point: str, *, match: object = None) -> None:
    """Run any armed faults for ``point`` whose match argument equals
    ``match`` (compared as strings; ``None`` matches everything).

    The disarmed path is one environment read.  Call sites pass the
    discriminating context: the restart index, the bench case name,
    the search step count.
    """
    plan = _active_plan()
    if plan is None:
        return
    entries = plan.get(point)
    if not entries:
        return
    for entry, action, wanted, seconds in entries:
        if match is not None and str(match) != wanted:
            continue
        if action in _ONE_SHOT and not _claim_marker(entry):
            continue
        if action == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
        elif action == "sigterm":
            os.kill(os.getpid(), signal.SIGTERM)
        elif action == "sleep":
            time.sleep(seconds or 0.0)
        elif action == "crash":
            raise FaultInjected(f"injected fault: {entry} at {point}")
        # "tear" is consumed by torn_bytes(), not here.


def torn_bytes(point: str = "checkpoint.write") -> Optional[int]:
    """Byte count of an armed tear fault for ``point``, else ``None``.

    The atomic writer's caller uses this to simulate a *non-atomic*
    writer dying mid-write: it puts exactly this many payload bytes on
    the final path and raises :class:`FaultInjected`.
    """
    plan = _active_plan()
    if plan is None:
        return None
    for entry, action, wanted, _ in plan.get(point, ()):
        if action == "tear":
            return int(wanted)
    return None


def strict_mode() -> bool:
    """Whether graceful degradation is disabled (``REPRO_ROBUST_STRICT``).

    In strict mode a compiled-kernel failure raises instead of falling
    back to the object path — the setting CI uses to prove the compiled
    kernels themselves stay healthy.
    """
    value = os.environ.get(STRICT_ENV_VAR)
    return value is not None and value.strip().lower() in _TRUE
