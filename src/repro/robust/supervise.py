"""Worker supervision: process-per-task, crash/hang detection, retries.

``multiprocessing.Pool`` loses a task forever when its worker dies —
an ``imap`` over a pool whose child was SIGKILLed simply hangs — and
offers no per-task deadline at all.  The portfolio search and the
bench runner need both, so this module runs each task in its own
supervised :class:`multiprocessing.Process`:

* a worker that exits without delivering a result (killed, segfault,
  ``os._exit``) is detected by pipe EOF + exit code and the task is
  **requeued** with exponential backoff, up to ``retries`` times;
* a worker that outlives its ``deadline_s`` budget is killed and
  requeued the same way;
* an exception inside the task function travels back as a string and
  counts as a failed attempt (faults can be transient — a retried
  attempt may run clean);
* ``KeyboardInterrupt``/SIGTERM in the supervising parent kills the
  in-flight workers and returns the completed outcomes — the *anytime*
  path: callers merge what finished into a ``partial: true`` artifact
  instead of raising.

Determinism is untouched: tasks are pure functions of their payloads
(the portfolio/bench contract), so retry counts, scheduling order and
worker pids can never change a result — only whether one exists.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..obs.metrics import REGISTRY as _GLOBAL_METRICS

__all__ = ["TaskOutcome", "SupervisedRun", "run_supervised"]

#: Worker restarts performed across the process (obs vocabulary).
_RETRIES = _GLOBAL_METRICS.counter("robust.worker.retries")
#: Tasks abandoned after exhausting their retry budget.
_FAILURES = _GLOBAL_METRICS.counter("robust.worker.failures")

_POLL_S = 0.05


@dataclass
class TaskOutcome:
    """How one supervised task ended."""

    index: int
    status: str
    """``"ok"`` | ``"error"`` (exception delivered) | ``"crashed"``
    (worker died) | ``"timeout"`` (deadline exceeded) | ``"interrupted"``
    (parent stopped before the task ran to completion)."""

    value: Optional[object] = None
    error: Optional[str] = None
    attempts: int = 0

    @property
    def ok(self) -> bool:
        return self.status == "ok"


@dataclass
class SupervisedRun:
    """All task outcomes of one supervised fan-out, in index order."""

    outcomes: List[TaskOutcome]
    interrupted: bool = False

    @property
    def completed(self) -> List[TaskOutcome]:
        return [outcome for outcome in self.outcomes if outcome.ok]

    @property
    def failed(self) -> List[TaskOutcome]:
        return [outcome for outcome in self.outcomes if not outcome.ok]


@dataclass
class _Active:
    process: multiprocessing.Process
    conn: object
    index: int
    attempt: int
    deadline: Optional[float] = None
    done: bool = field(default=False)


def _child_main(fn, payload, conn) -> None:
    """Run one task in the worker and ship the outcome over the pipe."""
    try:
        value = fn(payload)
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc(limit=20)))
        finally:
            conn.close()
        return
    conn.send(("ok", value))
    conn.close()


def run_supervised(
    fn: Callable[[object], object],
    payloads: Sequence[object],
    jobs: int,
    *,
    retries: int = 2,
    backoff_s: float = 0.25,
    deadline_s: Optional[float] = None,
    on_complete: Optional[Callable[[TaskOutcome, int, int], None]] = None,
    label: str = "task",
) -> SupervisedRun:
    """Run ``fn`` over ``payloads`` in supervised workers, ``jobs`` at a time.

    ``retries`` bounds the *additional* attempts after a failed first
    one; each retry waits ``backoff_s * 2**(attempt-1)`` before
    restarting.  ``deadline_s`` caps each attempt's wall time (the
    worker is killed and the attempt counts as ``timeout``).
    ``on_complete(outcome, done, total)`` fires in the parent as each
    task resolves (in completion order) — the progress/checkpoint hook.

    Returns outcomes in payload order.  Never raises for worker
    failures; the caller decides whether a non-``ok`` outcome is fatal.
    """
    from ..obs import trace as _trace

    total = len(payloads)
    outcomes: Dict[int, TaskOutcome] = {}
    #: (ready_time, index, attempt) — tasks waiting to start.
    queue: List[tuple] = [(0.0, index, 1) for index in range(total)]
    active: List[_Active] = []
    context = multiprocessing.get_context()
    tracer = _trace.ACTIVE
    interrupted = False

    def resolve(outcome: TaskOutcome) -> None:
        outcomes[outcome.index] = outcome
        if tracer is not None:
            tracer.instant(
                f"robust.{label}", index=outcome.index,
                status=outcome.status, attempts=outcome.attempts,
            )
        if on_complete is not None:
            on_complete(outcome, len(outcomes), total)

    def retry_or_fail(index: int, attempt: int, status: str,
                      error: Optional[str]) -> None:
        if attempt <= retries:
            _RETRIES.inc()
            ready = time.monotonic() + backoff_s * (2 ** (attempt - 1))
            queue.append((ready, index, attempt + 1))
        else:
            _FAILURES.inc()
            resolve(TaskOutcome(index=index, status=status, error=error,
                                attempts=attempt))

    def start(index: int, attempt: int) -> None:
        reader, writer = context.Pipe(duplex=False)
        process = context.Process(
            target=_child_main, args=(fn, payloads[index], writer),
            daemon=True,
        )
        process.start()
        writer.close()  # the child owns it; EOF now tracks the child
        deadline = (time.monotonic() + deadline_s
                    if deadline_s is not None else None)
        active.append(_Active(process=process, conn=reader, index=index,
                              attempt=attempt, deadline=deadline))

    def reap(task: _Active) -> None:
        """Collect one finished/dead/overdue worker and route the outcome."""
        active.remove(task)
        process, conn = task.process, task.conn
        try:
            if conn.poll():
                try:
                    kind, value = conn.recv()
                except (EOFError, OSError):
                    kind, value = None, None
            else:
                kind, value = None, None
        finally:
            conn.close()
        if kind == "ok":
            process.join()
            resolve(TaskOutcome(index=task.index, status="ok", value=value,
                                attempts=task.attempt))
            return
        if kind == "error":
            process.join()
            retry_or_fail(task.index, task.attempt, "error", value)
            return
        # No result: either the deadline expired (kill the straggler)
        # or the worker died on its own (pipe EOF can land before
        # ``is_alive`` notices the death, so the deadline — not
        # liveness — decides which failure this is).
        overdue = (task.deadline is not None
                   and time.monotonic() > task.deadline)
        if process.is_alive():
            process.kill()
        process.join()
        if overdue:
            retry_or_fail(task.index, task.attempt, "timeout",
                          f"{label} {task.index} exceeded its "
                          f"{deadline_s:.3g}s deadline")
        else:
            retry_or_fail(
                task.index, task.attempt, "crashed",
                f"{label} {task.index} worker died with exit code "
                f"{process.exitcode}",
            )

    try:
        while queue or active:
            now = time.monotonic()
            # Launch everything ready, up to the worker budget.
            queue.sort()
            while queue and len(active) < jobs and queue[0][0] <= now:
                _, index, attempt = queue.pop(0)
                start(index, attempt)
            # Wait for results, deaths, deadlines or backoff expiry.
            conns = [task.conn for task in active]
            wait_s = _POLL_S
            if not conns:
                wait_s = max(0.0, min(ready for ready, _, _ in queue) - now)
                time.sleep(min(wait_s, _POLL_S) or 0.001)
                continue
            ready = multiprocessing.connection.wait(conns, timeout=wait_s)
            now = time.monotonic()
            for task in list(active):
                overdue = task.deadline is not None and now > task.deadline
                if task.conn in ready or not task.process.is_alive() \
                        or overdue:
                    reap(task)
    except (KeyboardInterrupt, SystemExit):
        interrupted = True
        for task in active:
            task.process.kill()
            task.process.join()
            task.conn.close()
        active.clear()

    ordered: List[TaskOutcome] = []
    for index in range(total):
        outcome = outcomes.get(index)
        if outcome is None:
            outcome = TaskOutcome(index=index, status="interrupted",
                                  error="run interrupted before completion")
        ordered.append(outcome)
    return SupervisedRun(outcomes=ordered, interrupted=interrupted)
