"""Crash-safe text-file writes: temp file + fsync + ``os.replace``.

Every JSON artifact the system emits — search/eco/bench artifacts,
``benchmarks/BASELINE.json``, merged trace files, checkpoints — goes
through :func:`atomic_write_text`.  The contract: a reader can observe
either the old content or the new content, never a torn prefix, no
matter when the writing process dies.

Mechanics: the payload is written to a uniquely named temp file in the
*target* directory (same filesystem, so the final ``os.replace`` is an
atomic rename), flushed and fsynced, then renamed over the target.
The directory is fsynced best-effort afterwards so the rename itself
survives a power cut on filesystems that need it.
"""

from __future__ import annotations

import os
import tempfile

__all__ = ["atomic_write_text"]


def atomic_write_text(path: str, text: str, *, fsync: bool = True) -> None:
    """Atomically replace ``path``'s content with ``text``.

    Creates missing parent directories.  On any failure the target is
    left exactly as it was and the temp file is removed best-effort.
    ``fsync=False`` skips the durability sync (still atomic against
    process death — the rename only ever exposes complete content —
    but a machine crash may lose the write); checkpoints and artifacts
    keep the default.
    """
    path = os.path.abspath(path)
    directory = os.path.dirname(path)
    os.makedirs(directory, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
            handle.flush()
            if fsync:
                os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    if fsync:
        _fsync_directory(directory)


def _fsync_directory(directory: str) -> None:
    """Best-effort directory fsync (persists the rename entry itself)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)
