"""Fault tolerance for long searches: crash-safe artifacts, checkpoints,
worker supervision and fault injection.

The ROADMAP's north star is searches over 10^5-10^6-gate circuits and
an always-on optimization service; at that scale a killed process, a
dead pool worker or a torn artifact write must never cost the run.
This package is the substrate the rest of the system builds on:

:mod:`~repro.robust.atomic`
    :func:`~repro.robust.atomic.atomic_write_text` — temp file in the
    target directory, flush + fsync, ``os.replace`` — adopted by every
    JSON artifact writer, so a mid-write kill can never leave torn
    JSON behind.

:mod:`~repro.robust.checkpoint`
    The checksummed checkpoint container (canonical JSON payload +
    CRC32, written atomically) behind ``repro search --checkpoint`` /
    ``--resume``.  Torn or stale files are *rejected*
    (:class:`~repro.robust.checkpoint.CheckpointError`), never half
    loaded.

:mod:`~repro.robust.supervise`
    :func:`~repro.robust.supervise.run_supervised` — process-per-task
    workers with crash detection, bounded retries with backoff,
    per-task deadlines and a graceful anytime path — behind the
    portfolio search and the bench runner pools.

:mod:`~repro.robust.faults`
    The env/flag-driven fault-injection harness (``REPRO_FAULTS``)
    the recovery tests and the CI smoke step drive: kill a worker at
    restart k, raise inside a kernel, tear a checkpoint at byte n,
    SIGTERM mid-search.

The hard contract everything here preserves (see ``README.md`` in this
directory): recovery is **byte-identical** — a resumed run's artifact,
and a crashed-then-retried portfolio worker's merged artifact, equal
the uninterrupted run's bytes exactly.
"""

from .atomic import atomic_write_text
from .checkpoint import (
    CHECKPOINT_SCHEMA,
    DEFAULT_CHECKPOINT_EVERY,
    CheckpointError,
    dumps_checkpoint,
    load_checkpoint,
    save_checkpoint,
)
from .faults import ENV_VAR as FAULTS_ENV_VAR
from .faults import FaultInjected, fire, strict_mode
from .supervise import SupervisedRun, TaskOutcome, run_supervised

__all__ = [
    "atomic_write_text",
    "CHECKPOINT_SCHEMA",
    "DEFAULT_CHECKPOINT_EVERY",
    "CheckpointError",
    "dumps_checkpoint",
    "load_checkpoint",
    "save_checkpoint",
    "FAULTS_ENV_VAR",
    "FaultInjected",
    "fire",
    "strict_mode",
    "SupervisedRun",
    "TaskOutcome",
    "run_supervised",
]
