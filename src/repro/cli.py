"""Command-line interface: ``repro-reorder`` (or ``python -m repro.cli``).

Subcommands::

    table1                 regenerate the motivation example (Table 1b)
    table2                 regenerate the library configuration counts
    table3 [--subset ...]  regenerate the main evaluation (Table 3)
    bench [--jobs N ...]   parallel Table-3 sweep -> JSON result artifact
    adder [--width N]      the ripple-carry activity profile (§1.1)
    optimize FILE.blif     map + optimise a BLIF circuit, report savings
    eco FILE.blif SCRIPT   replay a JSON edit script incrementally,
                           reporting per-edit delta power/delay
                           (--timing prices delay incrementally too)
    search FILE.blif       delta-driven ECO local search (greedy or
                           annealing) over the incremental engine
    trace summarize FILE   per-span profile of a JSONL trace written by
                           --trace / REPRO_TRACE (see repro.obs)
    trace merge FILE       interleave worker trace shards
                           (FILE.pid<N>.jsonl) back into FILE
    trace export FILE      convert a trace to Chrome trace-event JSON
                           (open in chrome://tracing)
    bench baseline ART...  record bench artifacts' headline metrics in
                           a perf baseline (benchmarks/BASELINE.json)
    bench check [ART...]   compare bench artifacts (or a fresh run)
                           against the baseline; nonzero on regression

``--trace PATH`` on ``search``/``eco``/``optimize``/``bench`` (or the
``REPRO_TRACE`` environment variable, honoured by every subcommand)
streams span/metrics events to a JSONL file while the run's printed
output and artifacts stay byte-identical; multi-process runs shard per
worker pid and the shards are merged automatically on exit.
``--progress`` on the same subcommands streams rate-limited live
status lines (rounds, anneal steps, restart completions, bench cases)
to stderr.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .analysis.experiments import (
    run_adder_activity,
    run_table1,
    run_table2,
    run_table3,
    run_table3_case,
)
from .analysis.report import format_percent, format_si, format_table
from .analysis.stats import mean
from .core.optimizer import OBJECTIVES

__all__ = ["main", "build_parser"]


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be a positive integer, got {value}")
    return value


def _nonnegative_int(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"must be a non-negative integer, got {value}")
    return value


def _add_obs_args(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--trace", metavar="PATH",
        help="stream a JSONL span/metrics trace of this run here "
             "(overrides REPRO_TRACE; printed output and artifacts are "
             "unchanged — inspect with 'repro trace summarize PATH'; "
             "worker shards are merged into PATH on exit)",
    )
    subparser.add_argument(
        "--progress", action="store_true",
        help="stream rate-limited live status lines to stderr "
             "(rounds, anneal steps, restarts, bench cases)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-reorder",
        description=(
            "Reproduction of Musoll & Cortadella (DATE 1996): transistor "
            "reordering for low power."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="motivation gate, two activity cases")
    sub.add_parser("table2", help="library configuration counts")

    p3 = sub.add_parser("table3", help="main evaluation over the suite")
    p3.add_argument("--subset", choices=["quick", "full"], default="quick")
    p3.add_argument("--scenario", choices=["A", "B", "both"], default="both")
    p3.add_argument("--seed", type=int, default=0)

    pb = sub.add_parser(
        "bench",
        help="run the benchmark sweep in parallel and emit a JSON artifact",
    )
    pb.add_argument("--subset", choices=["quick", "full"], default="quick")
    pb.add_argument("--scenario", choices=["A", "B", "both"], default="both")
    pb.add_argument("--jobs", type=_positive_int, default=1,
                    help="worker processes (1 = run serially in-process)")
    pb.add_argument("--seed", type=int, default=0)
    pb.add_argument("--out", metavar="PATH",
                    help="write the JSON result artifact here")
    pb.add_argument("--cases", nargs="+", metavar="NAME",
                    help="explicit case names (overrides --subset)")
    pb.add_argument("--case-timeout", type=float, default=None,
                    metavar="SECONDS",
                    help="per-case wall-time budget; a case that "
                         "exceeds it is killed, retried, and finally "
                         "recorded as a status=timeout row (routes the "
                         "run through supervised workers)")
    pb.add_argument("--retries", type=_nonnegative_int, default=2,
                    metavar="N",
                    help="extra attempts for a case that raises, "
                         "crashes its worker or times out before its "
                         "error row is recorded (default 2)")
    _add_obs_args(pb)
    # Optional nested subcommands: plain `repro bench [flags]` still
    # runs the sweep (bench_command stays None).
    bsub = pb.add_subparsers(dest="bench_command", required=False,
                             metavar="{check,baseline}")
    pbc = bsub.add_parser(
        "check",
        help="compare bench artifacts (or a fresh quick-suite run) "
             "against a perf baseline; exit 1 on regression",
    )
    pbc.add_argument("artifacts", nargs="*", metavar="ARTIFACT",
                     help="bench/suite JSON artifacts to check; none = "
                          "run the suite fresh (see --subset/--jobs)")
    pbc.add_argument("--baseline", metavar="PATH",
                     default="benchmarks/BASELINE.json",
                     help="baseline store (default benchmarks/BASELINE.json)")
    pbc.add_argument("--tolerance", type=float, default=None,
                     help="override the per-kind relative tolerances "
                          "(e.g. 0.2 = fail beyond ±20%%)")
    pbc.add_argument("--subset", choices=["quick", "full"], default="quick",
                     help="suite subset for the fresh run (no artifacts)")
    pbc.add_argument("--scenario", choices=["A", "B", "both"],
                     default="both")
    pbc.add_argument("--jobs", type=_positive_int, default=1)
    pbc.add_argument("--seed", type=int, default=0)
    pbb = bsub.add_parser(
        "baseline",
        help="record bench artifacts' headline metrics as new entries "
             "in the perf baseline",
    )
    pbb.add_argument("artifacts", nargs="+", metavar="ARTIFACT",
                     help="bench/suite JSON artifacts to record")
    pbb.add_argument("--baseline", metavar="PATH",
                     default="benchmarks/BASELINE.json",
                     help="baseline store (default benchmarks/BASELINE.json)")
    pbb.add_argument("--label", metavar="TEXT", default=None,
                     help="free-form entry label (e.g. the reason for "
                          "re-baselining)")

    pa = sub.add_parser("adder", help="ripple-carry carry activity profile")
    pa.add_argument("--width", type=int, default=8)

    po = sub.add_parser("optimize", help="map and optimise a BLIF file")
    po.add_argument("blif", help="path to a combinational BLIF file")
    po.add_argument("--scenario", choices=["A", "B"], default="A")
    po.add_argument("--seed", type=int, default=0)
    po.add_argument("--stats",
                    choices=["model", "analytic", "local", "exact", "sampled"],
                    default="model",
                    help="(P, D) estimator driving the optimisation "
                         "('analytic' is an alias for the default 'model' flow; "
                         "'sampled' runs the bit-parallel Monte Carlo engine)")
    po.add_argument("--lanes", type=_positive_int, default=None,
                    help="sample lanes for --stats sampled")
    po.add_argument("--objective", choices=list(OBJECTIVES), default="best",
                    help="optimisation objective (default: best)")
    po.add_argument("--passes", type=_positive_int, default=1,
                    help="re-optimisation passes (iterate until the "
                         "configuration assignment stops changing)")
    po.add_argument("--save-blif", metavar="PATH",
                    help="write the optimised netlist as mapped BLIF")
    po.add_argument("--save-verilog", metavar="PATH",
                    help="write the optimised netlist as structural Verilog")
    _add_obs_args(po)

    pe = sub.add_parser(
        "eco",
        help="replay a JSON edit script against the incremental engine",
    )
    pe.add_argument("blif", help="path to a combinational BLIF file")
    pe.add_argument("script",
                    help="JSON edit script: a list of "
                         '{"op": "reorder"|"retemplate"|"add-gate"'
                         '|"remove-gate"|"rewire"|"input-stats"'
                         '|"input-arrival", ...} entries (see '
                         "repro.incremental.eco; input-arrival needs "
                         "--timing; the structural ops need --backend "
                         "analytic)")
    pe.add_argument("--scenario", choices=["A", "B"], default="A")
    pe.add_argument("--seed", type=int, default=0)
    pe.add_argument("--backend", choices=["analytic", "sampled"],
                    default="analytic")
    pe.add_argument("--lanes", type=_positive_int, default=None,
                    help="sample lanes for --backend sampled")
    pe.add_argument("--steps", type=_positive_int, default=None,
                    help="time steps for --backend sampled")
    pe.add_argument("--dt", type=float, default=None,
                    help="explicit step size for --backend sampled (needed "
                         "when input-stats edits shorten dwell times below "
                         "the initial ones)")
    pe.add_argument("--timing", action="store_true",
                    help="maintain per-edit delay with the incremental "
                         "TimingCache (cone-sized arrival re-propagation) "
                         "instead of a full STA per edit")
    pe.add_argument("--out", metavar="PATH",
                    help="write the JSON result artifact here")
    _add_obs_args(pe)

    from .incremental.portfolio import DEFAULT_RESTARTS

    ps = sub.add_parser(
        "search",
        help="delta-driven ECO local search over the incremental engine",
    )
    ps.add_argument("blif", help="path to a combinational BLIF file")
    ps.add_argument("--scenario", choices=["A", "B"], default="A")
    ps.add_argument("--seed", type=int, default=0,
                    help="stimulus seed, also the annealing RNG seed")
    ps.add_argument("--strategy", choices=["greedy", "anneal"],
                    default="greedy")
    ps.add_argument("--objective", choices=["power", "delay", "power-delay"],
                    default="power")
    ps.add_argument("--delay-weight", type=float, default=None,
                    help="delay weight for --objective power-delay "
                         "(power gets 1 - w; default 0.5)")
    ps.add_argument("--backend", choices=["analytic", "sampled"],
                    default="analytic")
    ps.add_argument("--lanes", type=_positive_int, default=None,
                    help="sample lanes for --backend sampled")
    ps.add_argument("--steps", type=_positive_int, default=None,
                    help="time steps for --backend sampled")
    ps.add_argument("--retemplate", action="store_true",
                    help="also search same-pin-tuple cell swaps "
                         "(changes the logic function)")
    ps.add_argument("--max-trials", type=_positive_int, default=None,
                    help="cap on candidate-move evaluations")
    ps.add_argument("--max-moves", type=_positive_int, default=None,
                    help="cap on accepted moves")
    ps.add_argument("--anneal-trials", type=_positive_int, default=None,
                    help="annealing schedule length "
                         "(default: 32 x movable gates)")
    ps.add_argument("--polish", action="store_true",
                    help="greedy descent after annealing")
    ps.add_argument("--structural", nargs="+", metavar="FAMILY",
                    choices=["buffer", "dup", "sweep"],
                    help="opt-in structural move families run after the "
                         "main strategy: buffer (insert a buffer on the "
                         "most-loaded nets), dup (duplicate heavy-fanout "
                         "drivers), sweep (remove dead gates); needs "
                         "--backend analytic")
    ps.add_argument("--structural-nets", type=_positive_int, default=4,
                    help="top-K loaded nets the buffer/dup families "
                         "consider (default 4)")
    ps.add_argument("--restarts", type=_positive_int, default=None,
                    help="portfolio mode: run this many CRC-seeded "
                         "annealing restarts and keep the best "
                         f"(default {DEFAULT_RESTARTS} when --jobs is "
                         "given; requires --strategy anneal)")
    ps.add_argument("--jobs", type=_positive_int, default=None,
                    help="worker processes for the restart portfolio; "
                         "results are identical across --jobs values "
                         "(artifacts byte-identical once the run-timing "
                         "fields are stripped; requires --strategy anneal)")
    ps.add_argument("--out", metavar="PATH",
                    help="write the canonical JSON search artifact here")
    ps.add_argument("--save-blif", metavar="PATH",
                    help="write the searched netlist as mapped BLIF")
    ps.add_argument("--checkpoint", metavar="PATH",
                    help="periodically snapshot the search state here "
                         "(atomic, checksummed); resume a killed run "
                         "with --resume PATH for a byte-identical "
                         "artifact")
    ps.add_argument("--checkpoint-every", type=_positive_int, default=None,
                    metavar="N",
                    help="accepted moves between checkpoint snapshots "
                         "(default 32; needs --checkpoint)")
    ps.add_argument("--resume", metavar="PATH",
                    help="resume from a checkpoint written by "
                         "--checkpoint (the run must use the same "
                         "circuit, stats and search parameters)")
    ps.add_argument("--deadline", type=float, default=None,
                    metavar="SECONDS",
                    help="per-restart wall-time budget for portfolio "
                         "workers; a restart that exceeds it is killed "
                         "and retried (requires --restarts/--jobs)")
    ps.add_argument("--retries", type=_nonnegative_int, default=2,
                    metavar="N",
                    help="extra attempts for a portfolio restart whose "
                         "worker crashes, raises or times out before "
                         "it is recorded as failed (default 2)")
    _add_obs_args(ps)

    pt = sub.add_parser(
        "trace",
        help="inspect JSONL traces written by --trace / REPRO_TRACE",
    )
    tsub = pt.add_subparsers(dest="trace_command", required=True)
    pts = tsub.add_parser(
        "summarize",
        help="per-span count/total/self/p50/p95 table plus the slowest "
             "individual spans",
    )
    pts.add_argument("file", help="path to a JSONL trace file")
    pts.add_argument("--top", type=_positive_int, default=10,
                     help="how many of the slowest spans to list "
                          "(default 10)")
    ptm = tsub.add_parser(
        "merge",
        help="interleave per-pid worker shards (FILE.pid<N>.jsonl) back "
             "into FILE, ordered by timestamp with stable pid "
             "tie-breaks (traced CLI runs do this automatically on "
             "exit)",
    )
    ptm.add_argument("file", help="path to the main JSONL trace file")
    ptm.add_argument("-o", "--out", metavar="PATH", default=None,
                     help="write the merged stream here instead of "
                          "rewriting FILE (keeps the shards)")
    ptm.add_argument("--keep-shards", action="store_true",
                     help="keep the shard files after an in-place merge")
    pte = tsub.add_parser(
        "export",
        help="convert a trace to another format (chrome: Chrome "
             "trace-event JSON for chrome://tracing / Perfetto)",
    )
    pte.add_argument("file", help="path to a JSONL trace file")
    pte.add_argument("--format", choices=["chrome"], default="chrome",
                     help="output format (default chrome)")
    pte.add_argument("-o", "--out", metavar="PATH", default=None,
                     help="write here instead of stdout")
    return parser


def _cmd_table1(out) -> int:
    rows = run_table1()
    for row in rows:
        out.write(f"Case {row.case}: densities {row.densities}\n")
        cells = "  ".join(f"{p:.2f}" for p in row.relative_powers)
        out.write(f"  relative power per configuration: {cells}\n")
        out.write(
            f"  best is configuration #{row.best_index}, "
            f"{format_percent(row.reduction_vs_worst)}% below the worst\n"
        )
    return 0


def _cmd_table2(out) -> int:
    from .analysis.experiments import run_table2_instances

    rows = run_table2_instances()
    out.write(format_table(
        ("Gate", "Instances", "#C"),
        [(gate, label, count) for gate, label, count in rows],
        title="Table 2 - gate library",
    ))
    out.write("\n")
    return 0


def _write_scenario_table(out, title: str, rows, extra=None) -> None:
    """One Table-3-style block: per-circuit M/S/D columns + average footer.

    ``rows`` is a list of ``(circuit, gates, model, sim, delay)`` tuples
    with raw fractions; ``extra`` optionally adds one trailing
    preformatted column as ``(header, [cell, ...])``.
    """
    headers = ["Circuit", "G", "M%", "S%", "D%"]
    table_rows = [
        [name, gates, format_percent(m), format_percent(s), format_percent(d)]
        for name, gates, m, s, d in rows
    ]
    footer = [
        "average", "",
        format_percent(mean([r[2] for r in rows])),
        format_percent(mean([r[3] for r in rows])),
        format_percent(mean([r[4] for r in rows])),
    ]
    if extra is not None:
        header, cells = extra
        headers.append(header)
        for row, cell in zip(table_rows, cells):
            row.append(cell)
        footer.append("")
    out.write(format_table(tuple(headers), [tuple(r) for r in table_rows],
                           title=title, footer=tuple(footer)))
    out.write("\n\n")


def _cmd_table3(out, subset: str, scenario: str, seed: int) -> int:
    scenarios = ("A", "B") if scenario == "both" else (scenario,)
    results = run_table3(subset=subset, scenarios=scenarios, seed=seed)
    for sc, rows in results.items():
        _write_scenario_table(
            out, f"Table 3 - scenario {sc}",
            [(r.name, r.gates, r.model_reduction, r.sim_reduction,
              r.delay_increase) for r in rows],
        )
    return 0


def _cmd_bench(out, subset: str, scenario: str, jobs: int, seed: int,
               out_path: Optional[str], cases: Optional[List[str]],
               case_timeout: Optional[float] = None,
               retries: int = 2) -> int:
    from .bench.runner import run_suite

    scenarios = ("A", "B") if scenario == "both" else (scenario,)
    artifact = run_suite(subset=subset, scenarios=scenarios, jobs=jobs,
                         seed=seed, cases=cases, out_path=out_path,
                         case_timeout_s=case_timeout, retries=retries)
    rows = artifact["results"]
    failed = [r for r in rows if r["status"] != "ok"]
    for sc in scenarios:
        sc_rows = [r for r in rows
                   if r["status"] == "ok" and r["scenario"] == sc]
        if not sc_rows:
            continue
        _write_scenario_table(
            out,
            f"bench - scenario {sc} ({artifact['suite']['subset']}, jobs={jobs})",
            [(r["circuit"], r["gates"], r["model_reduction"],
              r["sim_reduction"], r["delay_increase"]) for r in sc_rows],
            extra=("t", [f"{r['elapsed_s']:.2f}s" for r in sc_rows]),
        )
    for row in failed:
        first_line = (row["error"] or "").strip().splitlines()
        out.write(f"[{row['status']}] {row['circuit']}: "
                  f"{first_line[-1] if first_line else ''}\n")
    out.write(f"{len(rows)} rows in {artifact['elapsed_s']:.2f}s "
              f"with {jobs} job(s)\n")
    if artifact.get("partial"):
        out.write("[partial] sweep interrupted; artifact carries the "
                  "completed cases and is flagged \"partial\": true\n")
    if out_path:
        out.write(f"wrote JSON artifact to {out_path}\n")
    return 130 if artifact.get("partial") else 0


def _cmd_adder(out, width: int) -> int:
    profile = run_adder_activity(width)
    rows = [(name, f"{density:.3f}") for name, density in profile.items()]
    out.write(format_table(
        ("Signal", "D (trans/cycle)"), rows,
        title=f"{width}-bit ripple-carry adder activity (P = 0.5 everywhere)",
    ))
    out.write("\n")
    return 0


def _cmd_optimize(out, path: str, scenario: str, seed: int,
                  stats_source: str = "model",
                  lanes: Optional[int] = None,
                  objective: str = "best",
                  passes: int = 1,
                  save_blif: Optional[str] = None,
                  save_verilog: Optional[str] = None) -> int:
    from .circuit.blif import load_blif, write_mapped_blif
    from .circuit.verilog import write_verilog
    from .core.optimizer import optimize_circuit
    from .sim.stimulus import ScenarioA, ScenarioB
    from .synth.mapper import map_circuit
    from .timing.sta import circuit_delay

    if stats_source == "analytic":
        stats_source = "model"  # alias: the paper's analytic model flow
    stats_kwargs = {}
    if stats_source == "sampled":
        stats_kwargs["seed"] = seed
        if lanes is not None:
            stats_kwargs["lanes"] = lanes
    elif lanes is not None:
        raise SystemExit("--lanes requires --stats sampled")

    network = load_blif(path)
    circuit = map_circuit(network)
    generator = ScenarioA(seed=seed) if scenario == "A" else ScenarioB(seed=seed)
    stats = generator.input_stats(circuit.inputs)
    chosen = optimize_circuit(circuit, stats, objective=objective,
                              stats=stats_source, stats_kwargs=stats_kwargs,
                              passes=passes)
    worst = chosen if objective == "worst" and passes == 1 else optimize_circuit(
        circuit, stats, objective="worst",
        stats=stats_source, stats_kwargs=stats_kwargs,
    )
    out.write(f"circuit        : {network.name}\n")
    out.write(f"mapped gates   : {len(circuit)}\n")
    out.write(f"gate mix       : {circuit.gate_count_by_template()}\n")
    out.write(f"objective      : {objective} (stats={stats_source}"
              + (f", lanes={lanes}" if lanes else "")
              + (f", passes={chosen.passes_run}/{passes}" if passes > 1 else "")
              + ")\n")
    out.write(f"model power    : {format_si(chosen.power_after, 'W')} (optimised), "
              f"{format_si(worst.power_after, 'W')} (worst ordering)\n")
    saving = 1.0 - chosen.power_after / worst.power_after if worst.power_after else 0.0
    label = "best vs worst" if objective == "best" else f"{objective} vs worst"
    out.write(f"{label:<15}: {format_percent(saving)}% power reduction\n")
    d0 = circuit_delay(circuit)
    d1 = circuit_delay(chosen.circuit)
    change = (d1 - d0) / d0 if d0 else 0.0
    out.write(f"delay          : {format_si(d0, 's')} -> {format_si(d1, 's')} "
              f"({format_percent(change)}%)\n")
    if save_blif:
        with open(save_blif, "w") as handle:
            handle.write(write_mapped_blif(chosen.circuit))
        out.write(f"wrote mapped BLIF to {save_blif}\n")
    if save_verilog:
        with open(save_verilog, "w") as handle:
            handle.write(write_verilog(chosen.circuit))
        out.write(f"wrote Verilog to {save_verilog}\n")
    return 0


def _cmd_eco(out, path: str, script_path: str, scenario: str, seed: int,
             backend: str, lanes: Optional[int], steps: Optional[int],
             dt: Optional[float], timing: bool, out_path: Optional[str]) -> int:
    import json

    from .analysis.experiments import run_eco
    from .bench.runner import SCHEMA_VERSION, write_artifact
    from .circuit.blif import load_blif
    from .sim.stimulus import ScenarioA, ScenarioB
    from .synth.mapper import map_circuit

    with open(script_path) as handle:
        script = json.load(handle)
    if not isinstance(script, list):
        raise SystemExit(f"{script_path}: expected a JSON list of edits")

    backend_kwargs = {}
    if backend == "sampled":
        backend_kwargs["seed"] = seed
        for name, value in (("lanes", lanes), ("steps", steps), ("dt", dt)):
            if value is not None:
                backend_kwargs[name] = value
    else:
        given = [n for n, v in (("--lanes", lanes), ("--steps", steps),
                                ("--dt", dt)) if v is not None]
        if given:
            raise SystemExit(f"{', '.join(given)} requires --backend sampled")

    network = load_blif(path)
    circuit = map_circuit(network)
    generator = ScenarioA(seed=seed) if scenario == "A" else ScenarioB(seed=seed)
    stats = generator.input_stats(circuit.inputs)
    timing_mode = "incremental" if timing else "full"
    try:
        rows = run_eco(circuit, stats, script, backend=backend,
                       timing=timing_mode, **backend_kwargs)
    except ValueError as error:
        # e.g. the sampled backend's frozen dt becoming too coarse for an
        # input-stats edit; surface the remedy instead of a traceback.
        # (Other ValueErrors — like input-arrival without --timing —
        # carry their own remedy; don't steer those users toward --dt.)
        remedy = (
            "\n(for --backend sampled, pass an explicit --dt small enough "
            "for every input-stats edit in the script)"
            if backend == "sampled" else ""
        )
        raise SystemExit(f"eco failed: {error}{remedy}")

    headers = ["#", "edit", "cone", "dP", "P after", "dD%"]
    table = [
        [row.index, row.label, row.cone,
         format_si(row.delta_power, "W"), format_si(row.power_after, "W"),
         format_percent((row.delta_delay / row.delay_before)
                        if row.delay_before else 0.0)]
        for row in rows
    ]
    if timing:
        headers.append("retimed")
        for line, row in zip(table, rows):
            line.append(row.retimed)
    out.write(format_table(
        tuple(headers), [tuple(line) for line in table],
        title=f"eco - {network.name} ({len(circuit)} gates, "
              f"backend={backend}, timing={timing_mode})",
    ))
    out.write("\n")
    if rows:
        total = rows[-1].power_after - rows[0].power_before
        out.write(f"{len(rows)} edits, net power change "
                  f"{format_si(total, 'W')}; re-propagated "
                  f"{sum(r.cone for r in rows)} gate cones "
                  f"vs {len(rows) * len(circuit)} from scratch\n")
        if timing:
            out.write(f"re-timed {sum(r.retimed for r in rows)} gate "
                      f"arrivals vs {len(rows) * len(circuit)} for a full "
                      f"STA per edit\n")
    if out_path:
        results = []
        for row in rows:
            entry = {
                "index": row.index,
                "edit": row.label,
                "cone": row.cone,
                "power_before": row.power_before,
                "power_after": row.power_after,
                "delta_power": row.delta_power,
                "delay_before": row.delay_before,
                "delay_after": row.delay_after,
                "delta_delay": row.delta_delay,
            }
            if timing:
                entry["retimed"] = row.retimed
            results.append(entry)
        artifact = {
            "schema": SCHEMA_VERSION,
            "eco": {
                "circuit": network.name,
                "gates": len(circuit),
                "scenario": scenario,
                "seed": seed,
                "backend": backend,
                "timing": timing_mode,
                "script": script,
            },
            "results": results,
        }
        write_artifact(artifact, out_path)
        out.write(f"wrote JSON artifact to {out_path}\n")
    return 0


def _cmd_search(out, args) -> int:
    from .analysis.experiments import run_search
    from .bench.runner import write_artifact
    from .circuit.blif import load_blif, write_mapped_blif
    from .sim.stimulus import ScenarioA, ScenarioB
    from .synth.mapper import map_circuit

    if args.delay_weight is not None:
        if args.objective != "power-delay":
            raise SystemExit("--delay-weight requires --objective power-delay")
        if not 0.0 < args.delay_weight < 1.0:
            raise SystemExit("--delay-weight must lie strictly between 0 and 1")
    if args.structural and args.backend != "analytic":
        raise SystemExit("--structural requires --backend analytic (sampled "
                         "backends cannot maintain statistics across "
                         "structural edits)")
    portfolio_kwargs = {}
    if args.restarts is not None or args.jobs is not None:
        if args.strategy != "anneal":
            raise SystemExit("--restarts/--jobs require --strategy anneal")
        from .incremental.portfolio import DEFAULT_RESTARTS

        # The restart count never derives from --jobs: `--jobs 1` and
        # `--jobs 4` do the same work and emit byte-identical artifacts.
        portfolio_kwargs["restarts"] = (
            args.restarts if args.restarts is not None else DEFAULT_RESTARTS
        )
        portfolio_kwargs["jobs"] = args.jobs if args.jobs is not None else 1
    backend_kwargs = {}
    if args.backend == "sampled":
        # search_circuit forwards its seed= into the sampled backend
        for name, value in (("lanes", args.lanes), ("steps", args.steps)):
            if value is not None:
                backend_kwargs[name] = value
    else:
        given = [n for n, v in (("--lanes", args.lanes), ("--steps", args.steps))
                 if v is not None]
        if given:
            raise SystemExit(f"{', '.join(given)} requires --backend sampled")

    robust_kwargs = {}
    if args.checkpoint_every is not None and args.checkpoint is None:
        raise SystemExit("--checkpoint-every requires --checkpoint")
    if args.deadline is not None and not portfolio_kwargs:
        raise SystemExit("--deadline requires --restarts/--jobs")
    if args.checkpoint is not None:
        robust_kwargs["checkpoint_path"] = args.checkpoint
        if args.checkpoint_every is not None:
            robust_kwargs["checkpoint_every"] = args.checkpoint_every
    if args.resume is not None:
        robust_kwargs["resume_path"] = args.resume
    if args.deadline is not None:
        robust_kwargs["deadline_s"] = args.deadline
    if portfolio_kwargs:
        robust_kwargs["worker_retries"] = args.retries

    network = load_blif(args.blif)
    circuit = map_circuit(network)
    generator = (ScenarioA(seed=args.seed) if args.scenario == "A"
                 else ScenarioB(seed=args.seed))
    stats = generator.input_stats(circuit.inputs)
    from .robust import CheckpointError

    try:
        result = run_search(
            circuit, stats,
            strategy=args.strategy, objective=args.objective,
            delay_weight=args.delay_weight, backend=args.backend,
            seed=args.seed, retemplate=args.retemplate,
            max_trials=args.max_trials, max_moves=args.max_moves,
            anneal_trials=args.anneal_trials, polish=args.polish,
            structural=args.structural, structural_nets=args.structural_nets,
            **portfolio_kwargs,
            **backend_kwargs,
            **robust_kwargs,
        )
    except CheckpointError as error:
        raise SystemExit(f"search: {error}")

    table = [
        (move.index, move.label, move.cone,
         format_si(move.delta_power, "W"), format_si(move.power_after, "W"))
        for move in result.accepted
    ]
    out.write(format_table(
        ("#", "move", "cone", "dP", "P after"), table,
        title=f"search - {network.name} ({len(circuit)} gates, "
              f"{args.strategy}/{result.objective.name}, "
              f"backend={args.backend})",
    ))
    out.write("\n")
    out.write(f"accepted {len(result.accepted)} of {result.trials} trialled "
              f"moves in {result.rounds} round(s)"
              + (" [budget exhausted]" if result.budget_exhausted else "")
              + "\n")
    if result.restarts is not None:
        winner = result.restarts[result.restart_index]
        out.write(f"portfolio: best of {len(result.restarts)} restart(s) "
                  f"on {result.jobs} job(s) — winner #{result.restart_index} "
                  f"(seed {winner['seed']}, score {winner['score']:.6f})\n")
    out.write(f"power  : {format_si(result.power_before, 'W')} -> "
              f"{format_si(result.power_after, 'W')} "
              f"({format_percent(result.reduction)}% reduction)\n")
    delay_change = ((result.delay_after - result.delay_before)
                    / result.delay_before if result.delay_before else 0.0)
    out.write(f"delay  : {format_si(result.delay_before, 's')} -> "
              f"{format_si(result.delay_after, 's')} "
              f"({format_percent(delay_change)}%)\n")
    out.write(f"re-propagated {result.gates_repropagated} gate stats vs "
              f"{result.trials * len(circuit)} for full rescoring per trial\n")
    out.write(f"re-timed {result.gates_retimed} gate arrivals"
              + (f" vs {result.trials * len(circuit)} for a full STA per trial"
                 if result.objective.needs_delay else " (delay co-metric)")
              + "\n")
    if result.partial:
        detail = ("interrupted" if result.interrupted
                  else f"{len(result.failures or [])} restart(s) failed")
        out.write(f"[partial] {detail}; artifact carries the best state "
                  "reached and is flagged \"partial\": true\n")
    if args.out:
        write_artifact(result.to_artifact({"scenario": args.scenario}), args.out)
        out.write(f"wrote JSON artifact to {args.out}\n")
    if args.save_blif:
        with open(args.save_blif, "w") as handle:
            handle.write(write_mapped_blif(result.circuit))
        out.write(f"wrote mapped BLIF to {args.save_blif}\n")
    return 130 if result.interrupted else 0


def _cmd_trace_summarize(out, path: str, top: int) -> int:
    from .obs.summarize import render_summary, summarize_file

    try:
        summary = summarize_file(path)
    except OSError as error:
        raise SystemExit(f"trace summarize: {error}")
    out.write(render_summary(summary, top=top))
    return 0


def _cmd_trace_merge(out, path: str, out_path: Optional[str],
                     keep_shards: bool) -> int:
    from .obs.shards import find_shards, merge_file

    if not find_shards(path) and out_path is None:
        out.write(f"no shards found for {path}; trace left untouched\n")
        return 0
    try:
        count = merge_file(path, out=out_path, keep_shards=keep_shards)
    except OSError as error:
        raise SystemExit(f"trace merge: {error}")
    target = out_path if out_path is not None else path
    out.write(f"merged {count} shard(s) into {target}\n")
    return 0


def _cmd_trace_export(out, path: str, fmt: str,
                      out_path: Optional[str]) -> int:
    from .obs.export import export_chrome_file

    assert fmt == "chrome"  # argparse choices guarantee this
    try:
        text = export_chrome_file(path, out=out_path)
    except OSError as error:
        raise SystemExit(f"trace export: {error}")
    if out_path is not None:
        out.write(f"wrote chrome trace to {out_path}\n")
    else:
        out.write(text)
    return 0


def _cmd_bench_baseline(out, artifacts: List[str], baseline: str,
                        label: Optional[str]) -> int:
    from .bench.runner import load_artifact
    from .obs.perfdb import append_artifact

    for path in artifacts:
        try:
            entry = append_artifact(baseline, load_artifact(path),
                                    label=label)
        except (OSError, ValueError) as error:
            raise SystemExit(f"bench baseline: {path}: {error}")
        out.write(f"recorded {len(entry['metrics'])} metric(s) from "
                  f"{path} into {baseline}\n")
    return 0


def _cmd_bench_check(out, args) -> int:
    from .bench.runner import load_artifact, run_suite
    from .obs.perfdb import (
        baseline_metrics,
        check_metrics,
        headline_metrics,
        load_baseline,
        render_check,
    )

    try:
        store = load_baseline(args.baseline)
    except (OSError, ValueError) as error:
        raise SystemExit(f"bench check: {error}")
    current = {}
    try:
        if args.artifacts:
            for path in args.artifacts:
                current.update(headline_metrics(load_artifact(path)))
        else:
            scenarios = (("A", "B") if args.scenario == "both"
                         else (args.scenario,))
            artifact = run_suite(subset=args.subset, scenarios=scenarios,
                                 jobs=args.jobs, seed=args.seed)
            current.update(headline_metrics(artifact))
    except (OSError, ValueError) as error:
        raise SystemExit(f"bench check: {error}")
    result = check_metrics(current, baseline_metrics(store),
                           tolerance=args.tolerance)
    out.write(render_check(result))
    return 1 if result.regressions else 0


def _dispatch(args, out) -> int:
    if args.command == "table1":
        return _cmd_table1(out)
    if args.command == "table2":
        return _cmd_table2(out)
    if args.command == "table3":
        return _cmd_table3(out, args.subset, args.scenario, args.seed)
    if args.command == "bench":
        bench_command = getattr(args, "bench_command", None)
        if bench_command == "check":
            return _cmd_bench_check(out, args)
        if bench_command == "baseline":
            return _cmd_bench_baseline(out, args.artifacts, args.baseline,
                                       args.label)
        return _cmd_bench(out, args.subset, args.scenario, args.jobs,
                          args.seed, args.out, args.cases,
                          args.case_timeout, args.retries)
    if args.command == "adder":
        return _cmd_adder(out, args.width)
    if args.command == "optimize":
        return _cmd_optimize(out, args.blif, args.scenario, args.seed,
                             args.stats, args.lanes, args.objective,
                             args.passes, args.save_blif, args.save_verilog)
    if args.command == "eco":
        return _cmd_eco(out, args.blif, args.script, args.scenario, args.seed,
                        args.backend, args.lanes, args.steps, args.dt,
                        args.timing, args.out)
    if args.command == "search":
        return _cmd_search(out, args)
    if args.command == "trace":
        if args.trace_command == "merge":
            return _cmd_trace_merge(out, args.file, args.out,
                                    args.keep_shards)
        if args.trace_command == "export":
            return _cmd_trace_export(out, args.file, args.format, args.out)
        return _cmd_trace_summarize(out, args.file, args.top)
    raise AssertionError("unreachable")


def _install_sigterm_handler():
    """Route SIGTERM through KeyboardInterrupt so a terminated run
    unwinds like Ctrl-C: the search/bench loops keep their best-so-far
    state, artifacts land flagged ``partial``, trace shards merge, and
    the process exits 130 with no traceback.  Returns the previous
    handler (``None`` when SIGTERM can't be hooked — non-main thread,
    restricted platform)."""
    import signal

    def handler(signum, frame):
        raise KeyboardInterrupt

    try:
        return signal.signal(signal.SIGTERM, handler)
    except (ValueError, OSError):  # non-main thread / no SIGTERM
        return None


def main(argv: Optional[List[str]] = None, out=None) -> int:
    """Entry point; returns the process exit code."""
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    from .obs import progress as _progress
    from .obs import trace as _trace

    _install_sigterm_handler()
    # --trace (search/eco/optimize/bench) wins over REPRO_TRACE; the
    # environment flag alone enables tracing for any subcommand.
    tracer = _trace.start(getattr(args, "trace", None))
    trace_path = tracer.path if tracer is not None else None
    progress_on = bool(getattr(args, "progress", False))
    if progress_on:
        _progress.enable()
    try:
        return _dispatch(args, out)
    except KeyboardInterrupt:
        # An interrupt outside the anytime loops (during mapping, say):
        # exit 130 cleanly; the finally block still merges trace shards.
        sys.stderr.write("interrupted\n")
        return 130
    finally:
        if progress_on:
            _progress.disable()
        if tracer is not None:
            _trace.disable()
            if trace_path is not None:
                # Fold any worker shards back into the main trace so
                # the file on disk is always the whole story.
                from .obs.shards import merge_file

                try:
                    merged = merge_file(trace_path)
                except OSError as error:
                    sys.stderr.write(f"trace merge failed: {error}\n")
                else:
                    if merged:
                        sys.stderr.write(
                            f"merged {merged} trace shard(s) into "
                            f"{trace_path}\n"
                        )


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
