"""Structural Verilog interop for mapped netlists.

Writes a mapped :class:`~repro.circuit.netlist.Circuit` as a flat
gate-level Verilog module (one instantiation per library gate, output
pin ``O``), and reads the same subset back.  Net names are sanitised to
Verilog identifiers with a deterministic, collision-free mapping.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from ..gates.library import GateLibrary
from .netlist import Circuit

__all__ = ["write_verilog", "parse_verilog", "VerilogError"]

OUTPUT_PIN = "O"

_IDENT = re.compile(r"^[A-Za-z_][A-Za-z0-9_$]*$")


class VerilogError(ValueError):
    """Raised on malformed structural Verilog input."""


def _sanitize(names: List[str]) -> Dict[str, str]:
    """Map arbitrary net names to unique Verilog identifiers."""
    mapping: Dict[str, str] = {}
    used = set()
    for name in names:
        candidate = name if _IDENT.match(name) else re.sub(r"[^A-Za-z0-9_$]", "_", name)
        if not candidate or not _IDENT.match(candidate):
            candidate = f"n_{candidate}" if candidate else "n"
        base = candidate
        suffix = 1
        while candidate in used:
            candidate = f"{base}_{suffix}"
            suffix += 1
        used.add(candidate)
        mapping[name] = candidate
    return mapping


def write_verilog(circuit: Circuit) -> str:
    """Serialise a mapped circuit as a structural Verilog module."""
    nets = list(circuit.nets())
    mapping = _sanitize(nets)
    module = _sanitize([circuit.name])[circuit.name]
    inputs = [mapping[n] for n in circuit.inputs]
    outputs = [mapping[n] for n in circuit.outputs]
    wires = [
        mapping[n] for n in nets
        if n not in circuit.inputs and n not in circuit.outputs
    ]
    lines = [f"module {module} ({', '.join(inputs + outputs)});"]
    if inputs:
        lines.append(f"  input {', '.join(inputs)};")
    if outputs:
        lines.append(f"  output {', '.join(outputs)};")
    if wires:
        lines.append(f"  wire {', '.join(wires)};")
    lines.append("")
    for gate in circuit.gates:
        ports = [f".{pin}({mapping[gate.pin_nets[pin]]})" for pin in gate.template.pins]
        ports.append(f".{OUTPUT_PIN}({mapping[gate.output]})")
        lines.append(f"  {gate.template.name} {gate.name} ({', '.join(ports)});")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


_TOKEN = re.compile(r"[A-Za-z_][A-Za-z0-9_$]*|[().,;]")


def parse_verilog(text: str, library: GateLibrary) -> Circuit:
    """Parse the structural subset produced by :func:`write_verilog`."""
    text = re.sub(r"//[^\n]*", "", text)
    text = re.sub(r"/\*.*?\*/", "", text, flags=re.S)
    tokens = _TOKEN.findall(text)
    pos = 0

    def peek() -> str:
        return tokens[pos] if pos < len(tokens) else ""

    def take(expected: Optional[str] = None) -> str:
        nonlocal pos
        if pos >= len(tokens):
            raise VerilogError("unexpected end of input")
        token = tokens[pos]
        pos += 1
        if expected is not None and token != expected:
            raise VerilogError(f"expected {expected!r}, got {token!r}")
        return token

    def take_name_list(terminator: str) -> List[str]:
        names = []
        while True:
            names.append(take())
            token = take()
            if token == terminator:
                return names
            if token != ",":
                raise VerilogError(f"expected ',' or {terminator!r}, got {token!r}")

    take("module")
    name = take()
    circuit: Optional[Circuit] = None
    header_ports: List[str] = []
    if peek() == "(":
        take("(")
        header_ports = take_name_list(")")
        take(";")
    inputs: List[str] = []
    outputs: List[str] = []
    gates: List[Tuple[str, str, Dict[str, str]]] = []
    while True:
        token = take()
        if token == "endmodule":
            break
        if token == "input":
            inputs.extend(take_name_list(";"))
        elif token == "output":
            outputs.extend(take_name_list(";"))
        elif token == "wire":
            take_name_list(";")
        elif token in library:
            instance = take()
            take("(")
            bindings: Dict[str, str] = {}
            while True:
                take(".")
                pin = take()
                take("(")
                net = take()
                take(")")
                bindings[pin] = net
                nxt = take()
                if nxt == ")":
                    break
                if nxt != ",":
                    raise VerilogError(f"expected ',' or ')', got {nxt!r}")
            take(";")
            gates.append((instance, token, bindings))
        else:
            raise VerilogError(f"unexpected token {token!r}")
    circuit = Circuit(name, library)
    for net in inputs:
        circuit.add_input(net)
    for net in outputs:
        circuit.add_output(net)
    declared = set(inputs) | set(outputs)
    for port in header_ports:
        if port not in declared:
            raise VerilogError(f"port {port!r} has no input/output declaration")
    for instance, template_name, bindings in gates:
        if OUTPUT_PIN not in bindings:
            raise VerilogError(f"gate {instance} lacks an {OUTPUT_PIN} connection")
        output = bindings.pop(OUTPUT_PIN)
        circuit.add_gate(instance, template_name, bindings, output)
    circuit.validate()
    return circuit
