"""BLIF reader and writer.

Supports the combinational subset used by the MCNC benchmark suite:
``.model``, ``.inputs``, ``.outputs``, ``.names`` (ON-set or OFF-set
covers), ``.gate`` (mapped netlists) and ``.end``, with ``\\``
line continuations and ``#`` comments.  Latches are rejected — the
paper optimises combinational multilevel circuits.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, List, Optional, Tuple

from ..gates.library import GateLibrary
from .logic import Cube, LogicError, LogicNetwork, LogicNode
from .netlist import Circuit

__all__ = [
    "parse_blif",
    "load_blif",
    "write_blif",
    "parse_mapped_blif",
    "write_mapped_blif",
    "BlifError",
]

#: Pin name used for gate outputs in ``.gate`` lines.
OUTPUT_PIN = "O"


class BlifError(ValueError):
    """Raised on malformed BLIF input."""


def _logical_lines(text: str) -> Iterable[Tuple[int, List[str]]]:
    """Yield (line_number, tokens) with continuations joined and comments stripped."""
    pending: List[str] = []
    pending_line = 0
    for lineno, raw in enumerate(text.splitlines(), start=1):
        if "#" in raw:
            raw = raw[: raw.index("#")]
        raw = raw.strip()
        if not raw:
            continue
        continued = raw.endswith("\\")
        if continued:
            raw = raw[:-1].strip()
        if not pending:
            pending_line = lineno
        pending.extend(raw.split())
        if not continued:
            if pending:
                yield pending_line, pending
            pending = []
    if pending:
        yield pending_line, pending


def parse_blif(text: str, default_name: str = "circuit") -> LogicNetwork:
    """Parse BLIF text into a :class:`LogicNetwork` (first model only)."""
    network: Optional[LogicNetwork] = None
    current_cover: Optional[Tuple[str, Tuple[str, ...]]] = None
    patterns: List[str] = []
    phases: List[bool] = []
    ended = False

    def flush_cover() -> None:
        nonlocal current_cover, patterns, phases
        if current_cover is None:
            return
        name, inputs = current_cover
        if phases and not all(phases) and any(phases):
            raise BlifError(f"node {name}: mixed ON-set/OFF-set cover")
        phase = phases[0] if phases else True
        network.add_node(LogicNode(name, inputs, tuple(Cube(p) for p in patterns), phase))
        current_cover = None
        patterns = []
        phases = []

    for lineno, tokens in _logical_lines(text):
        if ended:
            break
        head = tokens[0]
        if head.startswith("."):
            if head != ".names":
                flush_cover()
            if head == ".model":
                if network is not None:
                    flush_cover()
                    break  # only the first model is read
                network = LogicNetwork(tokens[1] if len(tokens) > 1 else default_name)
            elif head == ".inputs":
                if network is None:
                    network = LogicNetwork(default_name)
                for net in tokens[1:]:
                    network.add_input(net)
            elif head == ".outputs":
                if network is None:
                    network = LogicNetwork(default_name)
                for net in tokens[1:]:
                    network.add_output(net)
            elif head == ".names":
                if network is None:
                    raise BlifError(f"line {lineno}: .names before .model/.inputs")
                flush_cover()
                if len(tokens) < 2:
                    raise BlifError(f"line {lineno}: .names needs at least an output")
                current_cover = (tokens[-1], tuple(tokens[1:-1]))
            elif head == ".end":
                flush_cover()
                ended = True
            elif head in (".latch", ".subckt"):
                raise BlifError(
                    f"line {lineno}: {head} is not supported (combinational BLIF only)"
                )
            else:
                # Ignore directives such as .default_input_arrival, .exdc, etc.
                continue
        else:
            if current_cover is None:
                raise BlifError(f"line {lineno}: cover row outside .names: {tokens}")
            name, inputs = current_cover
            if len(inputs) == 0:
                if len(tokens) != 1 or tokens[0] not in ("0", "1"):
                    raise BlifError(f"line {lineno}: bad constant row {tokens}")
                # Constant node: a single '1' row makes it constant one.
                if tokens[0] == "1":
                    patterns.append("")
                    phases.append(True)
                else:
                    patterns.append("")
                    phases.append(False)
            else:
                if len(tokens) != 2:
                    raise BlifError(f"line {lineno}: bad cover row {tokens}")
                pattern, out = tokens
                if len(pattern) != len(inputs):
                    raise BlifError(
                        f"line {lineno}: pattern {pattern!r} arity != {len(inputs)}"
                    )
                if out not in ("0", "1"):
                    raise BlifError(f"line {lineno}: bad output value {out!r}")
                patterns.append(pattern)
                phases.append(out == "1")
    if network is None:
        raise BlifError("no BLIF content found")
    flush_cover()
    # Constant-0 nodes encoded as an empty ON-set cover need special care:
    # a '.names x' with no rows is constant 0, handled by construction.
    network.validate()
    return network


def load_blif(path: str) -> LogicNetwork:
    """Read a BLIF file from disk."""
    with open(path) as handle:
        text = handle.read()
    return parse_blif(text, default_name=os.path.splitext(os.path.basename(path))[0])


def write_blif(network: LogicNetwork) -> str:
    """Serialise a logic network to BLIF text."""
    lines = [f".model {network.name}"]
    lines.append(".inputs " + " ".join(network.inputs))
    lines.append(".outputs " + " ".join(network.outputs))
    for node in network.nodes:
        lines.append(".names " + " ".join(node.inputs + (node.name,)))
        out = "1" if node.phase else "0"
        for cube in node.cubes:
            lines.append(f"{cube.pattern} {out}" if cube.pattern else out)
    lines.append(".end")
    return "\n".join(lines) + "\n"


def write_mapped_blif(circuit: Circuit) -> str:
    """Serialise a mapped circuit using ``.gate`` lines."""
    lines = [f".model {circuit.name}"]
    lines.append(".inputs " + " ".join(circuit.inputs))
    lines.append(".outputs " + " ".join(circuit.outputs))
    for gate in circuit.gates:
        bindings = [f"{pin}={gate.pin_nets[pin]}" for pin in gate.template.pins]
        bindings.append(f"{OUTPUT_PIN}={gate.output}")
        lines.append(f".gate {gate.template.name} " + " ".join(bindings))
    lines.append(".end")
    return "\n".join(lines) + "\n"


def parse_mapped_blif(text: str, library: GateLibrary,
                      default_name: str = "circuit") -> Circuit:
    """Parse a ``.gate``-style mapped BLIF back into a :class:`Circuit`."""
    circuit: Optional[Circuit] = None
    counter = 0
    for lineno, tokens in _logical_lines(text):
        head = tokens[0]
        if head == ".model":
            circuit = Circuit(tokens[1] if len(tokens) > 1 else default_name, library)
        elif head == ".inputs":
            for net in tokens[1:]:
                circuit.add_input(net)
        elif head == ".outputs":
            for net in tokens[1:]:
                circuit.add_output(net)
        elif head == ".gate":
            if circuit is None:
                raise BlifError(f"line {lineno}: .gate before .model")
            template_name = tokens[1]
            bindings: Dict[str, str] = {}
            for item in tokens[2:]:
                if "=" not in item:
                    raise BlifError(f"line {lineno}: bad binding {item!r}")
                pin, net = item.split("=", 1)
                bindings[pin] = net
            if OUTPUT_PIN not in bindings:
                raise BlifError(f"line {lineno}: .gate without {OUTPUT_PIN}= output")
            output = bindings.pop(OUTPUT_PIN)
            circuit.add_gate(f"g{counter}", template_name, bindings, output)
            counter += 1
        elif head == ".names":
            raise BlifError(f"line {lineno}: .names in mapped BLIF; use parse_blif")
        elif head == ".end":
            break
    if circuit is None:
        raise BlifError("no BLIF content found")
    circuit.validate()
    return circuit
