"""Topological traversals of netlists (the paper's DEPTH_FIRST_TRAVERSE).

The optimisation algorithm needs the gates "ordered in a depth-first
fashion from the outputs, i.e. every gate appears somewhere after all
of its transitive fan-in gates" — a topological order.  Kahn's
algorithm is used (iterative, so deep circuits do not hit the recursion
limit); ties are broken by gate creation order for reproducibility.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Tuple

from .netlist import Circuit, CircuitError, GateInstance

__all__ = ["topological_gates", "levelize", "transitive_fanin", "reachable_from_outputs"]


def topological_gates(circuit: Circuit) -> List[GateInstance]:
    """Gates in dependency order: drivers before their sinks."""
    order_index = {g.name: i for i, g in enumerate(circuit.gates)}
    indegree: Dict[str, int] = {}
    dependents: Dict[str, List[GateInstance]] = {}
    for gate in circuit.gates:
        count = 0
        for net in set(gate.fanin_nets):
            pred = circuit.driver(net)
            if pred is not None:
                count += 1
                dependents.setdefault(pred.name, []).append(gate)
        indegree[gate.name] = count
    ready = sorted(
        (g for g in circuit.gates if indegree[g.name] == 0),
        key=lambda g: order_index[g.name],
    )
    queue = deque(ready)
    order: List[GateInstance] = []
    while queue:
        gate = queue.popleft()
        order.append(gate)
        for sink in sorted(dependents.get(gate.name, ()), key=lambda g: order_index[g.name]):
            indegree[sink.name] -= 1
            if indegree[sink.name] == 0:
                queue.append(sink)
    if len(order) != len(circuit.gates):
        raise CircuitError("circuit contains a combinational cycle")
    return order


def levelize(circuit: Circuit) -> Dict[str, int]:
    """Logic level of every gate (primary-input fanins are level 0)."""
    levels: Dict[str, int] = {}
    for gate in topological_gates(circuit):
        level = 0
        for net in gate.fanin_nets:
            pred = circuit.driver(net)
            if pred is not None:
                level = max(level, levels[pred.name] + 1)
        levels[gate.name] = level
    return levels


def transitive_fanin(circuit: Circuit, net: str) -> Tuple[GateInstance, ...]:
    """All gates in the cone of ``net``, in topological order."""
    cone = set()
    stack = [net]
    while stack:
        current = stack.pop()
        gate = circuit.driver(current)
        if gate is None or gate.name in cone:
            continue
        cone.add(gate.name)
        stack.extend(gate.fanin_nets)
    return tuple(g for g in topological_gates(circuit) if g.name in cone)


def reachable_from_outputs(circuit: Circuit) -> Tuple[GateInstance, ...]:
    """Gates that feed at least one primary output (dangling logic excluded)."""
    cone = set()
    stack = list(circuit.outputs)
    while stack:
        current = stack.pop()
        gate = circuit.driver(current)
        if gate is None or gate.name in cone:
            continue
        cone.add(gate.name)
        stack.extend(gate.fanin_nets)
    return tuple(g for g in topological_gates(circuit) if g.name in cone)
