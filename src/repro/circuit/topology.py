"""Topological traversals of netlists (the paper's DEPTH_FIRST_TRAVERSE).

The optimisation algorithm needs the gates "ordered in a depth-first
fashion from the outputs, i.e. every gate appears somewhere after all
of its transitive fan-in gates" — a topological order.  Kahn's
algorithm is used (iterative, so deep circuits do not hit the recursion
limit); ties are broken by gate creation order for reproducibility.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Tuple

from .netlist import Circuit, CircuitError, GateInstance

__all__ = [
    "topological_gates",
    "levelize",
    "transitive_fanin",
    "transitive_fanout",
    "reachable_from_outputs",
    "FanoutIndex",
]


def topological_gates(circuit: Circuit) -> List[GateInstance]:
    """Gates in dependency order: drivers before their sinks."""
    order_index = {g.name: i for i, g in enumerate(circuit.gates)}
    indegree: Dict[str, int] = {}
    dependents: Dict[str, List[GateInstance]] = {}
    for gate in circuit.gates:
        count = 0
        for net in set(gate.fanin_nets):
            pred = circuit.driver(net)
            if pred is not None:
                count += 1
                dependents.setdefault(pred.name, []).append(gate)
        indegree[gate.name] = count
    ready = sorted(
        (g for g in circuit.gates if indegree[g.name] == 0),
        key=lambda g: order_index[g.name],
    )
    queue = deque(ready)
    order: List[GateInstance] = []
    while queue:
        gate = queue.popleft()
        order.append(gate)
        for sink in sorted(dependents.get(gate.name, ()), key=lambda g: order_index[g.name]):
            indegree[sink.name] -= 1
            if indegree[sink.name] == 0:
                queue.append(sink)
    if len(order) != len(circuit.gates):
        raise CircuitError("circuit contains a combinational cycle")
    return order


def levelize(circuit: Circuit) -> Dict[str, int]:
    """Logic level of every gate (primary-input fanins are level 0).

    Delegates to the circuit's memoised :meth:`Circuit.gate_levels`
    (returning a private copy), so repeated levelisations — one per
    attached cache, historically — cost a dict copy, not a traversal.
    """
    return dict(circuit.gate_levels())


def transitive_fanin(circuit: Circuit, net: str) -> Tuple[GateInstance, ...]:
    """All gates in the cone of ``net``, in topological order."""
    cone = set()
    stack = [net]
    while stack:
        current = stack.pop()
        gate = circuit.driver(current)
        if gate is None or gate.name in cone:
            continue
        cone.add(gate.name)
        stack.extend(gate.fanin_nets)
    return tuple(g for g in topological_gates(circuit) if g.name in cone)


class FanoutIndex:
    """Reverse connectivity of a netlist, built once and reused.

    :meth:`Circuit.fanout` scans every gate on each call — O(gates) per
    query, which makes cone walks quadratic.  The index inverts the
    pin bindings once (O(gates × pins)) and answers sink and cone
    queries in output-proportional time.  The supported circuit edits
    (:meth:`Circuit.apply_edit`: reorderings, same-arity template
    swaps, input statistics) never change connectivity, so an index
    stays valid across them; rebuild it after structural surgery.
    """

    def __init__(self, circuit: Circuit):
        self.circuit = circuit
        self._sinks: Dict[str, List[Tuple[GateInstance, str]]] = {}
        self._gate_sinks: Dict[str, List[GateInstance]] = {}
        for gate in circuit.gates:
            seen_nets = set()
            for pin in gate.template.pins:
                net = gate.pin_nets[pin]
                self._sinks.setdefault(net, []).append((gate, pin))
                pred = circuit.driver(net)
                if pred is not None and net not in seen_nets:
                    self._gate_sinks.setdefault(pred.name, []).append(gate)
                    seen_nets.add(net)

    def sinks(self, net: str) -> Tuple[Tuple[GateInstance, str], ...]:
        """(gate, pin) sinks of ``net`` — :meth:`Circuit.fanout` in O(result)."""
        return tuple(self._sinks.get(net, ()))

    def gate_sinks(self, gate_name: str) -> Tuple[GateInstance, ...]:
        """Gates with at least one pin on ``gate_name``'s output."""
        return tuple(self._gate_sinks.get(gate_name, ()))

    def cone_from_gates(self, gate_names: Iterable[str]) -> frozenset:
        """Names of the seed gates plus their transitive fanout gates.

        This is the dirty set of an edit touching the seed gates: every
        gate whose output statistics can depend on them.
        """
        cone = set()
        stack = list(gate_names)
        while stack:
            name = stack.pop()
            if name in cone:
                continue
            cone.add(name)
            stack.extend(g.name for g in self._gate_sinks.get(name, ()))
        return frozenset(cone)

    def cone_from_nets(self, nets: Iterable[str]) -> frozenset:
        """Names of all gates in the transitive fanout of the given nets."""
        seeds = [gate.name for net in nets for gate, _ in self._sinks.get(net, ())]
        return self.cone_from_gates(seeds)


def transitive_fanout(circuit: Circuit, net: str,
                      index: FanoutIndex = None) -> Tuple[GateInstance, ...]:
    """All gates in the fanout cone of ``net``, in topological order.

    The mirror of :func:`transitive_fanin`; ``index`` reuses an
    existing :class:`FanoutIndex` instead of building a throwaway one.
    """
    if index is None:
        index = FanoutIndex(circuit)
    cone = index.cone_from_nets([net])
    return tuple(g for g in topological_gates(circuit) if g.name in cone)


def reachable_from_outputs(circuit: Circuit) -> Tuple[GateInstance, ...]:
    """Gates that feed at least one primary output (dangling logic excluded)."""
    cone = set()
    stack = list(circuit.outputs)
    while stack:
        current = stack.pop()
        gate = circuit.driver(current)
        if gate is None or gate.name in cone:
            continue
        cone.add(gate.name)
        stack.extend(gate.fanin_nets)
    return tuple(g for g in topological_gates(circuit) if g.name in cone)
