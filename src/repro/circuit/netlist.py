"""Mapped gate-level netlists.

A :class:`Circuit` is a combinational multilevel network of library
gate instances — the representation the paper's optimisation algorithm
traverses.  Nets are strings; every net is driven either by a primary
input or by exactly one gate output.  Each gate instance carries its
own transistor-ordering :class:`~repro.gates.library.GateConfig`, which
is what the optimiser rewrites.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Iterable, Iterator, List, Mapping, Optional, Tuple

from ..gates.capacitance import TechParams, net_load, pin_capacitance
from ..gates.library import GateConfig, GateLibrary, GateTemplate
from ..gates.network import CompiledGate

__all__ = [
    "GateInstance",
    "Circuit",
    "CircuitError",
    "SetConfig",
    "SetTemplate",
    "CircuitEdit",
]


class CircuitError(ValueError):
    """Raised for structurally invalid netlists."""


# ----------------------------------------------------------------------
# ECO edits
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SetConfig:
    """Reorder one gate: replace its transistor ordering.

    ``config=None`` restores the template's default (as-mapped)
    configuration.  Connectivity and logic function are unchanged.
    """

    gate: str
    config: Optional[GateConfig]


@dataclass(frozen=True)
class SetTemplate:
    """Swap one gate's library cell for a same-arity cell.

    The new template's pins are bound positionally to the nets of the
    old template's pins, and the instance's configuration is replaced
    by ``config`` (``None`` = the new template's default) — an old
    ordering cannot survive a function change.  Connectivity is
    unchanged, the logic function generally is not.
    """

    gate: str
    template: str
    config: Optional[GateConfig] = None


#: The edit algebra accepted by :meth:`Circuit.apply_edit`.
CircuitEdit = (SetConfig, SetTemplate)


@dataclass
class GateInstance:
    """One placed gate: a template, pin-to-net bindings and an ordering."""

    name: str
    template: GateTemplate
    pin_nets: Dict[str, str]
    output: str
    config: Optional[GateConfig] = None
    """``None`` means the template's default (as-mapped) configuration."""

    def __post_init__(self):
        missing = [p for p in self.template.pins if p not in self.pin_nets]
        extra = [p for p in self.pin_nets if p not in self.template.pins]
        if missing or extra:
            raise CircuitError(
                f"gate {self.name} ({self.template.name}): "
                f"missing pins {missing}, unknown pins {extra}"
            )

    @property
    def fanin_nets(self) -> Tuple[str, ...]:
        """Input nets in pin order (duplicates preserved)."""
        return tuple(self.pin_nets[p] for p in self.template.pins)

    def effective_config(self) -> GateConfig:
        return self.config if self.config is not None else self.template.default_config()

    def compiled(self) -> CompiledGate:
        """The (cached) compiled form of this instance's configuration."""
        return self.template.compile_config(self.effective_config())


class Circuit:
    """A combinational netlist of library gates."""

    def __init__(self, name: str, library: GateLibrary):
        self.name = name
        self.library = library
        self.inputs: List[str] = []
        self.outputs: List[str] = []
        self._gates: Dict[str, GateInstance] = {}
        self._driver: Dict[str, GateInstance] = {}
        self._edit_listeners: List[Callable[[str, str], None]] = []
        #: Memoised derived structure (fanout index, topological order,
        #: levels, compiled form); cleared by structural mutation.  See
        #: :meth:`fanout_index` / :meth:`topo_gates` / :meth:`gate_levels`.
        self._structure: Dict[str, object] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_input(self, net: str) -> None:
        if net in self.inputs:
            raise CircuitError(f"duplicate primary input {net!r}")
        if net in self._driver:
            raise CircuitError(f"net {net!r} already driven by a gate")
        self.inputs.append(net)
        self._invalidate_structure()

    def add_output(self, net: str) -> None:
        if net in self.outputs:
            raise CircuitError(f"duplicate primary output {net!r}")
        self.outputs.append(net)
        self._invalidate_structure()

    def add_gate(self, name: str, template_name: str,
                 pin_nets: Mapping[str, str], output: str,
                 config: Optional[GateConfig] = None) -> GateInstance:
        """Instantiate ``template_name`` driving ``output``."""
        if name in self._gates:
            raise CircuitError(f"duplicate gate name {name!r}")
        if output in self._driver:
            raise CircuitError(f"net {output!r} has multiple drivers")
        if output in self.inputs:
            raise CircuitError(f"net {output!r} is a primary input")
        template = self.library[template_name]
        gate = GateInstance(name, template, dict(pin_nets), output, config)
        self._gates[name] = gate
        self._driver[output] = gate
        self._invalidate_structure()
        return gate

    # ------------------------------------------------------------------
    # Memoised derived structure
    # ------------------------------------------------------------------
    def _invalidate_structure(self) -> None:
        """Drop memoised structure after a structural mutation.

        The supported ECO edits (:meth:`apply_edit`) never change
        connectivity, so they do **not** invalidate; only adding
        inputs/outputs/gates does.  A memoised compiled form keeps an
        edit listener alive, so it is detached before being dropped.
        """
        compiled = self._structure.pop("compiled", None)
        if compiled is not None:
            compiled.close()
        self._structure.clear()

    def fanout_index(self):
        """The memoised :class:`~repro.circuit.topology.FanoutIndex`.

        Built on first use and shared by every consumer (stats cache,
        timing cache, searches, load queries), so attaching a second
        cache does not redo the O(V+E) inversion.  Invalidated by
        structural mutation; the supported edits keep it valid.
        """
        index = self._structure.get("fanout_index")
        if index is None:
            from .topology import FanoutIndex

            index = FanoutIndex(self)
            self._structure["fanout_index"] = index
        return index

    def topo_gates(self) -> Tuple[GateInstance, ...]:
        """Memoised topological order (drivers before sinks)."""
        order = self._structure.get("topo")
        if order is None:
            from .topology import topological_gates

            order = tuple(topological_gates(self))
            self._structure["topo"] = order
        return order

    def gate_levels(self) -> Mapping[str, int]:
        """Memoised logic level per gate (treat as read-only)."""
        levels = self._structure.get("levels")
        if levels is None:
            levels = {}
            for gate in self.topo_gates():
                level = 0
                for net in gate.fanin_nets:
                    pred = self._driver.get(net)
                    if pred is not None:
                        level = max(level, levels[pred.name] + 1)
                levels[gate.name] = level
            self._structure["levels"] = levels
        return levels

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def gates(self) -> Tuple[GateInstance, ...]:
        return tuple(self._gates.values())

    def gate(self, name: str) -> GateInstance:
        return self._gates[name]

    def __len__(self) -> int:
        return len(self._gates)

    def __contains__(self, gate_name: str) -> bool:
        return gate_name in self._gates

    def driver(self, net: str) -> Optional[GateInstance]:
        """The gate driving ``net`` (``None`` for primary inputs)."""
        return self._driver.get(net)

    def fanin_drivers(self, gate_name: str) -> Tuple[GateInstance, ...]:
        """Unique gates driving ``gate_name``'s fanin nets, in pin order.

        These are exactly the gates whose external load changes when
        ``gate_name`` is edited (a new compiled form can change its pin
        capacitances) — the worklist seed of the cone-aware
        re-optimisation passes and the incremental power dirty set.
        """
        gate = self.gate(gate_name)
        drivers: List[GateInstance] = []
        seen = set()
        for net in gate.fanin_nets:
            pred = self._driver.get(net)
            if pred is not None and pred.name not in seen:
                seen.add(pred.name)
                drivers.append(pred)
        return tuple(drivers)

    def nets(self) -> Tuple[str, ...]:
        """All nets: primary inputs then gate outputs, in creation order."""
        return tuple(self.inputs) + tuple(g.output for g in self._gates.values())

    def fanout(self, net: str) -> List[Tuple[GateInstance, str]]:
        """(gate, pin) sinks of ``net`` (primary-output sinks excluded)."""
        sinks = []
        for gate in self._gates.values():
            for pin, bound in gate.pin_nets.items():
                if bound == net:
                    sinks.append((gate, pin))
        return sinks

    def output_load(self, net: str, tech: TechParams,
                    po_load: float = 10.0e-15) -> float:
        """External capacitance on ``net``: fanin pins plus primary-output load.

        Sinks come from the memoised :meth:`fanout_index` (O(result)
        per query instead of an O(gates) scan per call), in the same
        gate-creation-then-template-pin order every other load consumer
        uses.
        """
        return net_load(self.fanout_index().sinks(net), net in self.outputs,
                        tech, po_load)

    def gate_count_by_template(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for gate in self._gates.values():
            counts[gate.template.name] = counts.get(gate.template.name, 0) + 1
        return counts

    def transistor_count(self) -> int:
        return sum(g.template.num_transistors for g in self._gates.values())

    def area(self) -> float:
        """Total area (configuration-independent, as the paper notes)."""
        return float(sum(g.template.area for g in self._gates.values()))

    # ------------------------------------------------------------------
    # ECO edits (see the dataclasses at module top)
    # ------------------------------------------------------------------
    def add_edit_listener(self, callback: Callable[[str, str], None]) -> None:
        """Register ``callback(gate_name, kind)`` for every applied edit.

        ``kind`` is ``"config"`` or ``"template"``.  Incremental caches
        (:class:`repro.incremental.StatsCache`) subscribe here so that
        edits through any code path invalidate them.
        """
        self._edit_listeners.append(callback)

    def remove_edit_listener(self, callback: Callable[[str, str], None]) -> None:
        self._edit_listeners.remove(callback)

    def _notify_edit(self, gate_name: str, kind: str) -> None:
        for callback in self._edit_listeners:
            callback(gate_name, kind)

    def apply_edit(self, edit) -> "SetConfig | SetTemplate":
        """Apply one :data:`CircuitEdit` in place; return its inverse.

        The returned edit, applied through this same method, restores
        the gate exactly (template, pin bindings and configuration) —
        the primitive the :class:`repro.incremental.WhatIf` rollback is
        built on.  Neither edit kind changes connectivity, so fanout
        indices and topological orders stay valid.
        """
        if isinstance(edit, SetConfig):
            gate = self.gate(edit.gate)
            inverse = SetConfig(gate.name, gate.config)
            gate.config = edit.config
            self._notify_edit(gate.name, "config")
            return inverse
        if isinstance(edit, SetTemplate):
            gate = self.gate(edit.gate)
            template = self.library[edit.template]
            if len(template.pins) != len(gate.template.pins):
                raise CircuitError(
                    f"gate {gate.name}: cannot swap {gate.template.name} "
                    f"({len(gate.template.pins)} pins) for {template.name} "
                    f"({len(template.pins)} pins)"
                )
            inverse = SetTemplate(gate.name, gate.template.name, gate.config)
            gate.pin_nets = {
                new_pin: gate.pin_nets[old_pin]
                for new_pin, old_pin in zip(template.pins, gate.template.pins)
            }
            gate.template = template
            gate.config = edit.config
            self._notify_edit(gate.name, "template")
            return inverse
        raise TypeError(f"unknown edit {edit!r}; expected one of {CircuitEdit}")

    def set_config(self, gate_name: str, config: Optional[GateConfig]) -> SetConfig:
        """Reorder ``gate_name``; returns the inverse edit."""
        return self.apply_edit(SetConfig(gate_name, config))

    def set_template(self, gate_name: str, template_name: str,
                     config: Optional[GateConfig] = None) -> SetTemplate:
        """Swap ``gate_name``'s cell; returns the inverse edit."""
        return self.apply_edit(SetTemplate(gate_name, template_name, config))

    # ------------------------------------------------------------------
    # Validation / copying
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check structural sanity; raises :class:`CircuitError` on problems."""
        for gate in self._gates.values():
            for pin, net in gate.pin_nets.items():
                if net not in self.inputs and net not in self._driver:
                    raise CircuitError(
                        f"gate {gate.name} pin {pin}: net {net!r} has no driver"
                    )
        for net in self.outputs:
            if net not in self.inputs and net not in self._driver:
                raise CircuitError(f"primary output {net!r} has no driver")
        self._check_acyclic()

    def _check_acyclic(self) -> None:
        state: Dict[str, int] = {}

        def visit(gate: GateInstance) -> None:
            state[gate.name] = 1
            for net in gate.fanin_nets:
                pred = self._driver.get(net)
                if pred is None:
                    continue
                mark = state.get(pred.name, 0)
                if mark == 1:
                    raise CircuitError(f"combinational cycle through {pred.name}")
                if mark == 0:
                    visit(pred)
            state[gate.name] = 2

        import sys

        old = sys.getrecursionlimit()
        sys.setrecursionlimit(max(old, 4 * len(self._gates) + 100))
        try:
            for gate in self._gates.values():
                if state.get(gate.name, 0) == 0:
                    visit(gate)
        finally:
            sys.setrecursionlimit(old)

    def copy(self, name: Optional[str] = None) -> "Circuit":
        """Deep copy (gate configs included)."""
        clone = Circuit(name or self.name, self.library)
        clone.inputs = list(self.inputs)
        clone.outputs = list(self.outputs)
        for gate in self._gates.values():
            clone.add_gate(gate.name, gate.template.name, dict(gate.pin_nets),
                           gate.output, gate.config)
        return clone

    # ------------------------------------------------------------------
    # Functional evaluation (for equivalence checks and logic simulation)
    # ------------------------------------------------------------------
    def evaluate(self, input_values: Mapping[str, bool]) -> Dict[str, bool]:
        """Zero-delay evaluation of every net for one input vector."""
        values: Dict[str, bool] = {n: bool(input_values[n]) for n in self.inputs}
        for gate in self.topo_gates():
            compiled = gate.compiled()
            minterm = 0
            for j, pin in enumerate(gate.template.pins):
                if values[gate.pin_nets[pin]]:
                    minterm |= 1 << j
            values[gate.output] = compiled.output_tt.evaluate_index(minterm)
        return values

    def __repr__(self) -> str:
        return (
            f"Circuit({self.name!r}, inputs={len(self.inputs)}, "
            f"outputs={len(self.outputs)}, gates={len(self._gates)})"
        )
