"""Mapped gate-level netlists.

A :class:`Circuit` is a combinational multilevel network of library
gate instances — the representation the paper's optimisation algorithm
traverses.  Nets are strings; every net is driven either by a primary
input or by exactly one gate output.  Each gate instance carries its
own transistor-ordering :class:`~repro.gates.library.GateConfig`, which
is what the optimiser rewrites.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Iterable, Iterator, List, Mapping, Optional, Tuple

from ..gates.capacitance import TechParams, net_load, pin_capacitance
from ..gates.library import GateConfig, GateLibrary, GateTemplate
from ..gates.network import CompiledGate

__all__ = [
    "GateInstance",
    "Circuit",
    "CircuitError",
    "SetConfig",
    "SetTemplate",
    "AddGate",
    "RemoveGate",
    "RewireNet",
    "StructureEvent",
    "CircuitEdit",
    "StructuralEdit",
    "lookup_template",
]


class CircuitError(ValueError):
    """Raised for structurally invalid netlists."""


def lookup_template(library: GateLibrary, name: str) -> GateTemplate:
    """``library[name]``, with misses routed into :class:`CircuitError`.

    Every edit-algebra entry point (``add_gate``, ``SetTemplate``, eco
    scripts) resolves template names through here so that a typo in a
    script or CLI invocation reports the available cells instead of
    surfacing a raw :class:`KeyError` traceback.  The library's own
    ``__getitem__`` raises :class:`CircuitError` too; the try/except
    keeps mapping-like stand-ins (tests, adapters) on the same
    contract.
    """
    try:
        return library[name]
    except KeyError:
        raise CircuitError(
            f"unknown template {name!r}; available: {', '.join(library.names)}"
        ) from None


# ----------------------------------------------------------------------
# ECO edits
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SetConfig:
    """Reorder one gate: replace its transistor ordering.

    ``config=None`` restores the template's default (as-mapped)
    configuration.  Connectivity and logic function are unchanged.
    """

    gate: str
    config: Optional[GateConfig]


@dataclass(frozen=True)
class SetTemplate:
    """Swap one gate's library cell for a same-arity cell.

    The new template's pins are bound positionally to the nets of the
    old template's pins, and the instance's configuration is replaced
    by ``config`` (``None`` = the new template's default) — an old
    ordering cannot survive a function change.  Connectivity is
    unchanged, the logic function generally is not.
    """

    gate: str
    template: str
    config: Optional[GateConfig] = None


@dataclass(frozen=True)
class AddGate:
    """Structural edit: instantiate a new gate.

    ``pin_nets`` is a tuple of ``(pin, net)`` pairs (hashable, unlike a
    dict) covering exactly the template's pins; every bound net must
    already be driven.  ``index`` is the creation-order position to
    insert at (``None`` = append) — the inverse of a :class:`RemoveGate`
    carries the removed gate's original position so that a rollback
    restores gate-creation order exactly.  Creation order is load-bearing:
    it fixes :meth:`Circuit.nets` ordering, topological tie-breaks and
    therefore every float summation order in the incremental layer.
    """

    gate: str
    template: str
    pin_nets: Tuple[Tuple[str, str], ...]
    output: str
    config: Optional[GateConfig] = None
    index: Optional[int] = None


@dataclass(frozen=True)
class RemoveGate:
    """Structural edit: delete a gate whose output has no sinks.

    Only dead gates (output drives no pin and is not a primary output)
    can be removed — anything else would leave dangling pins.  The
    inverse is an :class:`AddGate` carrying the full instance state plus
    its creation-order position.
    """

    gate: str


@dataclass(frozen=True)
class RewireNet:
    """Structural edit: rebind one pin of one gate to a different net.

    The new net must already be driven (by a primary input or a gate)
    and must not depend combinationally on the rewired gate's output.
    The inverse is the same edit with the old net.
    """

    gate: str
    pin: str
    net: str


@dataclass(frozen=True)
class StructureEvent:
    """What the last structural edit did, for ``"structure"`` listeners.

    Published on :attr:`Circuit.structure_event` immediately before the
    listeners fire, so caches can widen their dirty sets precisely:
    ``load_nets`` are the nets whose external load changed (the edited
    gate's fanin nets for add/remove, the old and new net for rewire) —
    their drivers must be power- and timing-dirtied even though their
    own statistics are untouched.
    """

    op: str  # "add" | "remove" | "rewire"
    gate: str
    output: str
    load_nets: Tuple[str, ...]


#: The edit algebra accepted by :meth:`Circuit.apply_edit`.
CircuitEdit = (SetConfig, SetTemplate, AddGate, RemoveGate, RewireNet)

#: The connectivity-changing subset — these notify listeners with kind
#: ``"structure"`` and invalidate the memoised derived structure.
StructuralEdit = (AddGate, RemoveGate, RewireNet)


@dataclass
class GateInstance:
    """One placed gate: a template, pin-to-net bindings and an ordering."""

    name: str
    template: GateTemplate
    pin_nets: Dict[str, str]
    output: str
    config: Optional[GateConfig] = None
    """``None`` means the template's default (as-mapped) configuration."""

    def __post_init__(self):
        missing = [p for p in self.template.pins if p not in self.pin_nets]
        extra = [p for p in self.pin_nets if p not in self.template.pins]
        if missing or extra:
            raise CircuitError(
                f"gate {self.name} ({self.template.name}): "
                f"missing pins {missing}, unknown pins {extra}"
            )

    @property
    def fanin_nets(self) -> Tuple[str, ...]:
        """Input nets in pin order (duplicates preserved)."""
        return tuple(self.pin_nets[p] for p in self.template.pins)

    def effective_config(self) -> GateConfig:
        return self.config if self.config is not None else self.template.default_config()

    def compiled(self) -> CompiledGate:
        """The (cached) compiled form of this instance's configuration."""
        return self.template.compile_config(self.effective_config())


class Circuit:
    """A combinational netlist of library gates."""

    def __init__(self, name: str, library: GateLibrary):
        self.name = name
        self.library = library
        self.inputs: List[str] = []
        self.outputs: List[str] = []
        self._gates: Dict[str, GateInstance] = {}
        self._driver: Dict[str, GateInstance] = {}
        self._edit_listeners: List[Callable[[str, str], None]] = []
        #: Memoised derived structure (fanout index, topological order,
        #: levels, compiled form); cleared by structural mutation.  See
        #: :meth:`fanout_index` / :meth:`topo_gates` / :meth:`gate_levels`.
        self._structure: Dict[str, object] = {}
        self._structure_event: Optional[StructureEvent] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_input(self, net: str) -> None:
        if net in self.inputs:
            raise CircuitError(f"duplicate primary input {net!r}")
        if net in self._driver:
            raise CircuitError(f"net {net!r} already driven by a gate")
        self.inputs.append(net)
        self._invalidate_structure()

    def add_output(self, net: str) -> None:
        if net in self.outputs:
            raise CircuitError(f"duplicate primary output {net!r}")
        self.outputs.append(net)
        self._invalidate_structure()

    def add_gate(self, name: str, template_name: str,
                 pin_nets: Mapping[str, str], output: str,
                 config: Optional[GateConfig] = None) -> GateInstance:
        """Instantiate ``template_name`` driving ``output``."""
        if name in self._gates:
            raise CircuitError(f"duplicate gate name {name!r}")
        if output in self._driver:
            raise CircuitError(f"net {output!r} has multiple drivers")
        if output in self.inputs:
            raise CircuitError(f"net {output!r} is a primary input")
        template = lookup_template(self.library, template_name)
        gate = GateInstance(name, template, dict(pin_nets), output, config)
        self._gates[name] = gate
        self._driver[output] = gate
        self._invalidate_structure()
        return gate

    # ------------------------------------------------------------------
    # Memoised derived structure
    # ------------------------------------------------------------------
    def _invalidate_structure(self) -> None:
        """Drop memoised structure after a structural mutation.

        The supported ECO edits (:meth:`apply_edit`) never change
        connectivity, so they do **not** invalidate; only adding
        inputs/outputs/gates does.  A memoised compiled form keeps an
        edit listener alive, so it is detached before being dropped.
        """
        compiled = self._structure.pop("compiled", None)
        if compiled is not None:
            compiled.close()
        self._structure.clear()

    def fanout_index(self):
        """The memoised :class:`~repro.circuit.topology.FanoutIndex`.

        Built on first use and shared by every consumer (stats cache,
        timing cache, searches, load queries), so attaching a second
        cache does not redo the O(V+E) inversion.  Invalidated by
        structural mutation; the supported edits keep it valid.
        """
        index = self._structure.get("fanout_index")
        if index is None:
            from .topology import FanoutIndex

            index = FanoutIndex(self)
            self._structure["fanout_index"] = index
        return index

    def topo_gates(self) -> Tuple[GateInstance, ...]:
        """Memoised topological order (drivers before sinks)."""
        order = self._structure.get("topo")
        if order is None:
            from .topology import topological_gates

            order = tuple(topological_gates(self))
            self._structure["topo"] = order
        return order

    def gate_levels(self) -> Mapping[str, int]:
        """Memoised logic level per gate (treat as read-only)."""
        levels = self._structure.get("levels")
        if levels is None:
            levels = {}
            for gate in self.topo_gates():
                level = 0
                for net in gate.fanin_nets:
                    pred = self._driver.get(net)
                    if pred is not None:
                        level = max(level, levels[pred.name] + 1)
                levels[gate.name] = level
            self._structure["levels"] = levels
        return levels

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def gates(self) -> Tuple[GateInstance, ...]:
        return tuple(self._gates.values())

    def gate(self, name: str) -> GateInstance:
        return self._gates[name]

    def __len__(self) -> int:
        return len(self._gates)

    def __contains__(self, gate_name: str) -> bool:
        return gate_name in self._gates

    def driver(self, net: str) -> Optional[GateInstance]:
        """The gate driving ``net`` (``None`` for primary inputs)."""
        return self._driver.get(net)

    @property
    def structure_event(self) -> Optional[StructureEvent]:
        """The :class:`StructureEvent` of the last structural edit.

        Valid during (and after) a ``"structure"`` listener
        notification; ``None`` until the first structural edit.
        """
        return self._structure_event

    def fanin_drivers(self, gate_name: str) -> Tuple[GateInstance, ...]:
        """Unique gates driving ``gate_name``'s fanin nets, in pin order.

        These are exactly the gates whose external load changes when
        ``gate_name`` is edited (a new compiled form can change its pin
        capacitances) — the worklist seed of the cone-aware
        re-optimisation passes and the incremental power dirty set.
        """
        gate = self.gate(gate_name)
        drivers: List[GateInstance] = []
        seen = set()
        for net in gate.fanin_nets:
            pred = self._driver.get(net)
            if pred is not None and pred.name not in seen:
                seen.add(pred.name)
                drivers.append(pred)
        return tuple(drivers)

    def nets(self) -> Tuple[str, ...]:
        """All nets: primary inputs then gate outputs, in creation order."""
        return tuple(self.inputs) + tuple(g.output for g in self._gates.values())

    def fanout(self, net: str) -> List[Tuple[GateInstance, str]]:
        """(gate, pin) sinks of ``net`` (primary-output sinks excluded)."""
        sinks = []
        for gate in self._gates.values():
            for pin, bound in gate.pin_nets.items():
                if bound == net:
                    sinks.append((gate, pin))
        return sinks

    def output_load(self, net: str, tech: TechParams,
                    po_load: float = 10.0e-15) -> float:
        """External capacitance on ``net``: fanin pins plus primary-output load.

        Sinks come from the memoised :meth:`fanout_index` (O(result)
        per query instead of an O(gates) scan per call), in the same
        gate-creation-then-template-pin order every other load consumer
        uses.
        """
        return net_load(self.fanout_index().sinks(net), net in self.outputs,
                        tech, po_load)

    def gate_count_by_template(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for gate in self._gates.values():
            counts[gate.template.name] = counts.get(gate.template.name, 0) + 1
        return counts

    def transistor_count(self) -> int:
        return sum(g.template.num_transistors for g in self._gates.values())

    def area(self) -> float:
        """Total area (configuration-independent, as the paper notes)."""
        return float(sum(g.template.area for g in self._gates.values()))

    # ------------------------------------------------------------------
    # ECO edits (see the dataclasses at module top)
    # ------------------------------------------------------------------
    def add_edit_listener(self, callback: Callable[[str, str], None]) -> None:
        """Register ``callback(gate_name, kind)`` for every applied edit.

        ``kind`` is ``"config"``, ``"template"`` or ``"structure"``
        (the latter for :data:`StructuralEdit` kinds, with the details
        published on :attr:`structure_event`).  Incremental caches
        (:class:`repro.incremental.StatsCache`) subscribe here so that
        edits through any code path invalidate them.
        """
        self._edit_listeners.append(callback)

    def remove_edit_listener(self, callback: Callable[[str, str], None]) -> None:
        self._edit_listeners.remove(callback)

    def _notify_edit(self, gate_name: str, kind: str) -> None:
        # Snapshot: a structure listener may rebuild derived state that
        # registers its own listener (e.g. TimingCache re-acquiring the
        # compiled lowering) — the newcomer must not also receive the
        # in-flight event it was just rebuilt for.
        for callback in list(self._edit_listeners):
            callback(gate_name, kind)

    def apply_edit(self, edit):
        """Apply one :data:`CircuitEdit` in place; return its inverse.

        The returned edit, applied through this same method, restores
        the circuit exactly — for the local kinds the gate's template,
        pin bindings and configuration; for the :data:`StructuralEdit`
        kinds also the gate set, connectivity and gate-creation order
        (a removed gate is re-added at its original position, keeping
        every downstream float summation order bit-stable).  This is
        the primitive the :class:`repro.incremental.WhatIf` rollback is
        built on.  The local kinds never change connectivity, so fanout
        indices and topological orders stay valid across them; the
        structural kinds invalidate the memoised derived structure and
        notify listeners with kind ``"structure"`` (details on
        :attr:`structure_event`).  All validation happens before any
        mutation — a rejected edit leaves the circuit untouched.
        """
        if isinstance(edit, SetConfig):
            gate = self.gate(edit.gate)
            inverse = SetConfig(gate.name, gate.config)
            gate.config = edit.config
            self._notify_edit(gate.name, "config")
            return inverse
        if isinstance(edit, SetTemplate):
            gate = self.gate(edit.gate)
            template = lookup_template(self.library, edit.template)
            if len(template.pins) != len(gate.template.pins):
                raise CircuitError(
                    f"gate {gate.name}: cannot swap {gate.template.name} "
                    f"({len(gate.template.pins)} pins) for {template.name} "
                    f"({len(template.pins)} pins)"
                )
            inverse = SetTemplate(gate.name, gate.template.name, gate.config)
            gate.pin_nets = {
                new_pin: gate.pin_nets[old_pin]
                for new_pin, old_pin in zip(template.pins, gate.template.pins)
            }
            gate.template = template
            gate.config = edit.config
            self._notify_edit(gate.name, "template")
            return inverse
        if isinstance(edit, AddGate):
            return self._apply_add_gate(edit)
        if isinstance(edit, RemoveGate):
            return self._apply_remove_gate(edit)
        if isinstance(edit, RewireNet):
            return self._apply_rewire(edit)
        raise TypeError(f"unknown edit {edit!r}; expected one of {CircuitEdit}")

    def _apply_add_gate(self, edit: AddGate) -> RemoveGate:
        pin_nets = dict(edit.pin_nets)
        undriven = sorted(
            {net for net in pin_nets.values()
             if net not in self.inputs and net not in self._driver}
        )
        if undriven:
            raise CircuitError(
                f"add-gate {edit.gate}: fanin nets {undriven} have no driver"
            )
        gate = self.add_gate(edit.gate, edit.template, pin_nets,
                             edit.output, edit.config)
        if edit.index is not None and edit.index != len(self._gates) - 1:
            # Restore the creation-order position (inverse of a remove).
            names = list(self._gates)
            names.remove(gate.name)
            names.insert(edit.index, gate.name)
            self._gates = {n: self._gates[n] for n in names}
        self._structure_event = StructureEvent(
            "add", gate.name, gate.output, tuple(dict.fromkeys(gate.fanin_nets))
        )
        self._notify_edit(gate.name, "structure")
        return RemoveGate(gate.name)

    def _apply_remove_gate(self, edit: RemoveGate) -> AddGate:
        gate = self.gate(edit.gate)
        sinks = self.fanout_index().sinks(gate.output)
        if sinks:
            names = sorted({g.name for g, _ in sinks})
            raise CircuitError(
                f"cannot remove {gate.name}: net {gate.output!r} still "
                f"drives {names}"
            )
        if gate.output in self.outputs:
            raise CircuitError(
                f"cannot remove {gate.name}: net {gate.output!r} is a "
                f"primary output"
            )
        inverse = AddGate(
            gate.name, gate.template.name,
            tuple((pin, gate.pin_nets[pin]) for pin in gate.template.pins),
            gate.output, gate.config, index=list(self._gates).index(gate.name),
        )
        load_nets = tuple(dict.fromkeys(gate.fanin_nets))
        del self._gates[gate.name]
        del self._driver[gate.output]
        self._invalidate_structure()
        self._structure_event = StructureEvent(
            "remove", gate.name, gate.output, load_nets
        )
        self._notify_edit(gate.name, "structure")
        return inverse

    def _apply_rewire(self, edit: RewireNet) -> RewireNet:
        gate = self.gate(edit.gate)
        if edit.pin not in gate.template.pins:
            raise CircuitError(
                f"gate {gate.name} ({gate.template.name}) has no pin "
                f"{edit.pin!r}; pins: {', '.join(gate.template.pins)}"
            )
        if edit.net not in self.inputs and edit.net not in self._driver:
            raise CircuitError(
                f"rewire {gate.name}.{edit.pin}: net {edit.net!r} has no driver"
            )
        # The new net must not depend on this gate's output (iterative
        # walk of the transitive fanin — no recursion, deep chains are
        # fine; see _check_acyclic).
        stack = [edit.net]
        seen = set()
        while stack:
            pred = self._driver.get(stack.pop())
            if pred is None or pred.name in seen:
                continue
            if pred is gate:
                raise CircuitError(
                    f"rewire {gate.name}.{edit.pin} -> {edit.net!r} would "
                    f"create a combinational cycle"
                )
            seen.add(pred.name)
            stack.extend(pred.fanin_nets)
        old_net = gate.pin_nets[edit.pin]
        inverse = RewireNet(gate.name, edit.pin, old_net)
        gate.pin_nets[edit.pin] = edit.net
        self._invalidate_structure()
        self._structure_event = StructureEvent(
            "rewire", gate.name, gate.output,
            tuple(dict.fromkeys((old_net, edit.net))),
        )
        self._notify_edit(gate.name, "structure")
        return inverse

    def set_config(self, gate_name: str, config: Optional[GateConfig]) -> SetConfig:
        """Reorder ``gate_name``; returns the inverse edit."""
        return self.apply_edit(SetConfig(gate_name, config))

    def set_template(self, gate_name: str, template_name: str,
                     config: Optional[GateConfig] = None) -> SetTemplate:
        """Swap ``gate_name``'s cell; returns the inverse edit."""
        return self.apply_edit(SetTemplate(gate_name, template_name, config))

    # ------------------------------------------------------------------
    # Validation / copying
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check structural sanity; raises :class:`CircuitError` on problems."""
        for gate in self._gates.values():
            for pin, net in gate.pin_nets.items():
                if net not in self.inputs and net not in self._driver:
                    raise CircuitError(
                        f"gate {gate.name} pin {pin}: net {net!r} has no driver"
                    )
        for net in self.outputs:
            if net not in self.inputs and net not in self._driver:
                raise CircuitError(f"primary output {net!r} has no driver")
        self._check_acyclic()

    def _check_acyclic(self) -> None:
        # Iterative three-colour DFS.  The recursive form (with a bumped
        # recursion limit) still exhausted the C stack on deep gate
        # chains — the same reason topology.topological_gates uses
        # Kahn's algorithm — so the grey/black marking is driven by an
        # explicit stack of (gate, fanin-iterator) frames instead.
        state: Dict[str, int] = {}  # absent=white, 1=grey, 2=black
        for root in self._gates.values():
            if state.get(root.name, 0) != 0:
                continue
            state[root.name] = 1
            stack: List[Tuple[GateInstance, Iterator[str]]] = [
                (root, iter(root.fanin_nets))
            ]
            while stack:
                gate, nets = stack[-1]
                for net in nets:
                    pred = self._driver.get(net)
                    if pred is None:
                        continue
                    mark = state.get(pred.name, 0)
                    if mark == 1:
                        raise CircuitError(
                            f"combinational cycle through {pred.name}"
                        )
                    if mark == 0:
                        state[pred.name] = 1
                        stack.append((pred, iter(pred.fanin_nets)))
                        break
                else:
                    state[gate.name] = 2
                    stack.pop()

    def copy(self, name: Optional[str] = None) -> "Circuit":
        """Deep copy (gate configs included)."""
        clone = Circuit(name or self.name, self.library)
        clone.inputs = list(self.inputs)
        clone.outputs = list(self.outputs)
        for gate in self._gates.values():
            clone.add_gate(gate.name, gate.template.name, dict(gate.pin_nets),
                           gate.output, gate.config)
        return clone

    # ------------------------------------------------------------------
    # Functional evaluation (for equivalence checks and logic simulation)
    # ------------------------------------------------------------------
    def evaluate(self, input_values: Mapping[str, bool]) -> Dict[str, bool]:
        """Zero-delay evaluation of every net for one input vector."""
        values: Dict[str, bool] = {n: bool(input_values[n]) for n in self.inputs}
        for gate in self.topo_gates():
            compiled = gate.compiled()
            minterm = 0
            for j, pin in enumerate(gate.template.pins):
                if values[gate.pin_nets[pin]]:
                    minterm |= 1 << j
            values[gate.output] = compiled.output_tt.evaluate_index(minterm)
        return values

    def __repr__(self) -> str:
        return (
            f"Circuit({self.name!r}, inputs={len(self.inputs)}, "
            f"outputs={len(self.outputs)}, gates={len(self._gates)})"
        )
