"""Technology-independent logic networks (the BLIF ``.names`` level).

MCNC benchmarks are multilevel networks of single-output nodes, each
defined by a sum-of-products cover.  A :class:`LogicNetwork` is the
mapper's input; after technology mapping it becomes a
:class:`~repro.circuit.netlist.Circuit` of library gates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..boolean.truthtable import TruthTable

__all__ = ["Cube", "LogicNode", "LogicNetwork", "LogicError"]


class LogicError(ValueError):
    """Raised for malformed logic networks or covers."""


@dataclass(frozen=True)
class Cube:
    """One product term: a pattern over the node inputs ('0', '1', '-')."""

    pattern: str

    def __post_init__(self):
        bad = set(self.pattern) - {"0", "1", "-"}
        if bad:
            raise LogicError(f"invalid cube characters {sorted(bad)} in {self.pattern!r}")

    def matches(self, values: Sequence[bool]) -> bool:
        if len(values) != len(self.pattern):
            raise LogicError("cube arity mismatch")
        for char, value in zip(self.pattern, values):
            if char == "1" and not value:
                return False
            if char == "0" and value:
                return False
        return True

    def to_truthtable(self, variables: Sequence[str]) -> TruthTable:
        tt = TruthTable.constant(variables, True)
        for char, var in zip(self.pattern, variables):
            if char == "1":
                tt = tt & TruthTable.variable(variables, var)
            elif char == "0":
                tt = tt & ~TruthTable.variable(variables, var)
        return tt

    def __len__(self) -> int:
        return len(self.pattern)


@dataclass
class LogicNode:
    """A single-output node: ``output = OR of cubes`` (or its complement).

    ``phase`` follows BLIF: ``True`` means the cover lists the ON-set
    (output column '1'), ``False`` the OFF-set (output column '0', the
    function is the complement of the cover).
    """

    name: str
    inputs: Tuple[str, ...]
    cubes: Tuple[Cube, ...]
    phase: bool = True

    def __post_init__(self):
        for cube in self.cubes:
            if len(cube) != len(self.inputs):
                raise LogicError(
                    f"node {self.name}: cube {cube.pattern!r} arity != {len(self.inputs)}"
                )

    def is_constant(self) -> bool:
        return len(self.inputs) == 0

    def constant_value(self) -> bool:
        if not self.is_constant():
            raise LogicError(f"node {self.name} is not constant")
        has_cube = len(self.cubes) > 0
        return has_cube if self.phase else not has_cube

    def evaluate(self, values: Mapping[str, bool]) -> bool:
        ordered = [bool(values[i]) for i in self.inputs]
        covered = any(cube.matches(ordered) for cube in self.cubes)
        return covered if self.phase else not covered

    def function(self) -> TruthTable:
        """The node function as a truth table over its own inputs."""
        tt = TruthTable.constant(self.inputs, False)
        for cube in self.cubes:
            tt = tt | cube.to_truthtable(self.inputs)
        return tt if self.phase else ~tt


class LogicNetwork:
    """A DAG of :class:`LogicNode` with primary inputs and outputs."""

    def __init__(self, name: str):
        self.name = name
        self.inputs: List[str] = []
        self.outputs: List[str] = []
        self._nodes: Dict[str, LogicNode] = {}

    # ------------------------------------------------------------------
    def add_input(self, net: str) -> None:
        if net in self.inputs:
            raise LogicError(f"duplicate primary input {net!r}")
        self.inputs.append(net)

    def add_output(self, net: str) -> None:
        if net in self.outputs:
            raise LogicError(f"duplicate primary output {net!r}")
        self.outputs.append(net)

    def add_node(self, node: LogicNode) -> LogicNode:
        if node.name in self._nodes:
            raise LogicError(f"net {node.name!r} has multiple drivers")
        if node.name in self.inputs:
            raise LogicError(f"net {node.name!r} is a primary input")
        self._nodes[node.name] = node
        return node

    def add_cover(self, name: str, inputs: Sequence[str],
                  patterns: Iterable[str], phase: bool = True) -> LogicNode:
        """Convenience: build and add a node from pattern strings."""
        cubes = tuple(Cube(p) for p in patterns)
        return self.add_node(LogicNode(name, tuple(inputs), cubes, phase))

    # ------------------------------------------------------------------
    @property
    def nodes(self) -> Tuple[LogicNode, ...]:
        return tuple(self._nodes.values())

    def node(self, name: str) -> LogicNode:
        return self._nodes[name]

    def has_node(self, name: str) -> bool:
        return name in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def topological_nodes(self) -> List[LogicNode]:
        """Nodes in dependency order (Kahn's algorithm)."""
        from collections import deque

        indegree: Dict[str, int] = {}
        dependents: Dict[str, List[str]] = {}
        for node in self._nodes.values():
            count = 0
            for net in set(node.inputs):
                if net in self._nodes:
                    count += 1
                    dependents.setdefault(net, []).append(node.name)
                elif net not in self.inputs:
                    raise LogicError(f"node {node.name}: net {net!r} has no driver")
            indegree[node.name] = count
        order_index = {name: i for i, name in enumerate(self._nodes)}
        queue = deque(
            sorted((n for n, d in indegree.items() if d == 0), key=order_index.get)
        )
        order: List[LogicNode] = []
        while queue:
            name = queue.popleft()
            order.append(self._nodes[name])
            for dep in sorted(dependents.get(name, ()), key=order_index.get):
                indegree[dep] -= 1
                if indegree[dep] == 0:
                    queue.append(dep)
        if len(order) != len(self._nodes):
            raise LogicError("logic network contains a cycle")
        return order

    def validate(self) -> None:
        """Check that every referenced net is driven and the DAG is acyclic."""
        self.topological_nodes()
        for net in self.outputs:
            if net not in self._nodes and net not in self.inputs:
                raise LogicError(f"primary output {net!r} has no driver")

    # ------------------------------------------------------------------
    def evaluate(self, input_values: Mapping[str, bool]) -> Dict[str, bool]:
        """Evaluate every net for one input vector."""
        values: Dict[str, bool] = {n: bool(input_values[n]) for n in self.inputs}
        for node in self.topological_nodes():
            values[node.name] = node.evaluate(values)
        return values

    def evaluate_outputs(self, input_values: Mapping[str, bool]) -> Dict[str, bool]:
        values = self.evaluate(input_values)
        return {o: values[o] for o in self.outputs}

    def __repr__(self) -> str:
        return (
            f"LogicNetwork({self.name!r}, inputs={len(self.inputs)}, "
            f"outputs={len(self.outputs)}, nodes={len(self._nodes)})"
        )
