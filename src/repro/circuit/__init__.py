"""Netlist substrates: mapped circuits, logic networks, BLIF, traversals."""

from .blif import load_blif, parse_blif, parse_mapped_blif, write_blif, write_mapped_blif
from .logic import Cube, LogicError, LogicNetwork, LogicNode
from .netlist import Circuit, CircuitError, GateInstance
from .verilog import VerilogError, parse_verilog, write_verilog
from .topology import levelize, reachable_from_outputs, topological_gates, transitive_fanin

__all__ = [
    "Circuit",
    "CircuitError",
    "GateInstance",
    "LogicNetwork",
    "LogicNode",
    "LogicError",
    "Cube",
    "load_blif",
    "parse_blif",
    "write_blif",
    "parse_mapped_blif",
    "write_mapped_blif",
    "topological_gates",
    "levelize",
    "transitive_fanin",
    "reachable_from_outputs",
    "write_verilog",
    "parse_verilog",
    "VerilogError",
]
