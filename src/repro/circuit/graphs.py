"""NetworkX views of circuits and transistor networks.

Exports the internal structures as ``networkx`` graphs for ad-hoc
analysis (path queries, drawing, centrality, ...) without coupling the
core algorithms to a graph library:

* :func:`circuit_graph` — gate-level DAG (gates and primary-input nets
  as nodes, net connections as edges);
* :func:`transistor_graph` — one gate configuration's transistor
  network as a multigraph (electrical nodes, one edge per transistor).
"""

from __future__ import annotations

import networkx as nx

from ..gates.network import TransistorNetwork
from .netlist import Circuit

__all__ = ["circuit_graph", "transistor_graph", "logic_depth_histogram"]


def circuit_graph(circuit: Circuit) -> "nx.DiGraph":
    """Directed gate-connectivity graph of a mapped netlist.

    Nodes are gate names plus primary-input net names (flagged with a
    ``kind`` attribute); an edge ``u -> v`` with attribute ``net`` means
    ``v`` reads a net driven by ``u``.
    """
    graph = nx.DiGraph(name=circuit.name)
    for net in circuit.inputs:
        graph.add_node(net, kind="input")
    for gate in circuit.gates:
        graph.add_node(gate.name, kind="gate", template=gate.template.name,
                       output=gate.output)
    for gate in circuit.gates:
        for pin, net in gate.pin_nets.items():
            driver = circuit.driver(net)
            source = driver.name if driver is not None else net
            graph.add_edge(source, gate.name, net=net, pin=pin)
    return graph


def transistor_graph(network: TransistorNetwork) -> "nx.MultiGraph":
    """The (V, E) graph of paper Figure 2(a) as a networkx multigraph."""
    graph = nx.MultiGraph()
    graph.add_nodes_from(["vdd", "vss", "y"], kind="terminal")
    for node in network.internal_nodes:
        graph.add_node(node, kind="internal")
    for transistor in network.transistors:
        graph.add_edge(transistor.node_a, transistor.node_b,
                       signal=transistor.signal, ttype=transistor.ttype)
    return graph


def logic_depth_histogram(circuit: Circuit) -> dict:
    """Gate count per logic level (uses the DAG longest-path structure)."""
    graph = circuit_graph(circuit)
    if not nx.is_directed_acyclic_graph(graph):
        raise ValueError("circuit graph is not acyclic")
    depth = {}
    for node in nx.topological_sort(graph):
        preds = list(graph.predecessors(node))
        depth[node] = 0 if not preds else 1 + max(depth[p] for p in preds)
    histogram: dict = {}
    for gate in circuit.gates:
        level = depth[gate.name]
        histogram[level] = histogram.get(level, 0) + 1
    return histogram
