"""A reduced ordered binary decision diagram (ROBDD) package.

Gate-local computations in the power model use dense truth tables; this
BDD engine is the *exact* companion used at circuit level: it builds
global functions of the primary inputs (reconvergent fanout handled
exactly), computes signal probabilities, Boolean differences and hence
exact Najm transition densities for cross-checking the fast local
propagators.

Nodes are integers into flat arrays; :class:`Func` wraps a node id with
its manager so ``&``, ``|``, ``^``, ``~`` work and expression trees can
be folded directly over BDD operands.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Tuple

__all__ = ["BDD", "Func"]


class Func:
    """A Boolean function handle: a node id bound to its :class:`BDD` manager."""

    __slots__ = ("bdd", "node")

    def __init__(self, bdd: "BDD", node: int):
        self.bdd = bdd
        self.node = node

    def _coerce(self, other) -> "Func":
        if isinstance(other, Func):
            if other.bdd is not self.bdd:
                raise ValueError("operands belong to different BDD managers")
            return other
        if isinstance(other, bool):
            return self.bdd.true if other else self.bdd.false
        raise TypeError(f"cannot combine BDD function with {type(other).__name__}")

    def __and__(self, other):
        other = self._coerce(other)
        return Func(self.bdd, self.bdd._apply("and", self.node, other.node))

    __rand__ = __and__

    def __or__(self, other):
        other = self._coerce(other)
        return Func(self.bdd, self.bdd._apply("or", self.node, other.node))

    __ror__ = __or__

    def __xor__(self, other):
        other = self._coerce(other)
        return Func(self.bdd, self.bdd._apply("xor", self.node, other.node))

    __rxor__ = __xor__

    def __invert__(self):
        return Func(self.bdd, self.bdd._negate(self.node))

    def __eq__(self, other) -> bool:
        return isinstance(other, Func) and other.bdd is self.bdd and other.node == self.node

    def __hash__(self) -> int:
        return hash((id(self.bdd), self.node))

    def __repr__(self) -> str:
        return f"Func(node={self.node}, support={self.support()})"

    # Convenience pass-throughs -----------------------------------------
    def is_false(self) -> bool:
        return self.node == BDD.FALSE

    def is_true(self) -> bool:
        return self.node == BDD.TRUE

    def cofactor(self, name: str, value: bool) -> "Func":
        return Func(self.bdd, self.bdd.restrict(self.node, name, value))

    def boolean_difference(self, name: str) -> "Func":
        return self.cofactor(name, True) ^ self.cofactor(name, False)

    def probability(self, probs: Mapping[str, float]) -> float:
        return self.bdd.probability(self.node, probs)

    def support(self) -> Tuple[str, ...]:
        return self.bdd.support(self.node)

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        return self.bdd.evaluate(self.node, assignment)

    def sat_count(self, nvars: Optional[int] = None) -> int:
        return self.bdd.sat_count(self.node, nvars)


class BDD:
    """ROBDD manager with a unique table and memoised apply/negate/probability."""

    FALSE = 0
    TRUE = 1

    def __init__(self, var_order: Iterable[str] = ()):  # noqa: D107
        self._level: List[int] = [2**31, 2**31]  # terminals sit below every variable
        self._low: List[int] = [0, 1]
        self._high: List[int] = [0, 1]
        self._unique: Dict[Tuple[int, int, int], int] = {}
        self._apply_cache: Dict[Tuple[str, int, int], int] = {}
        self._neg_cache: Dict[int, int] = {}
        self._var_names: List[str] = []
        self._var_level: Dict[str, int] = {}
        for name in var_order:
            self.add_var(name)

    # ------------------------------------------------------------------
    # Variables
    # ------------------------------------------------------------------
    def add_var(self, name: str) -> Func:
        """Declare (or fetch) a variable; new variables go at the bottom of the order."""
        if name not in self._var_level:
            self._var_level[name] = len(self._var_names)
            self._var_names.append(name)
        level = self._var_level[name]
        return Func(self, self._mk(level, self.FALSE, self.TRUE))

    def var(self, name: str) -> Func:
        """Fetch an existing variable's function."""
        if name not in self._var_level:
            raise KeyError(f"unknown BDD variable {name!r}")
        return Func(self, self._mk(self._var_level[name], self.FALSE, self.TRUE))

    @property
    def var_names(self) -> Tuple[str, ...]:
        return tuple(self._var_names)

    @property
    def false(self) -> Func:
        return Func(self, self.FALSE)

    @property
    def true(self) -> Func:
        return Func(self, self.TRUE)

    def size(self) -> int:
        """Number of live nodes (including the two terminals)."""
        return len(self._level)

    # ------------------------------------------------------------------
    # Core construction
    # ------------------------------------------------------------------
    def _mk(self, level: int, low: int, high: int) -> int:
        if low == high:
            return low
        key = (level, low, high)
        node = self._unique.get(key)
        if node is None:
            node = len(self._level)
            self._level.append(level)
            self._low.append(low)
            self._high.append(high)
            self._unique[key] = node
        return node

    def _apply(self, op: str, f: int, g: int) -> int:
        if op == "and":
            if f == self.FALSE or g == self.FALSE:
                return self.FALSE
            if f == self.TRUE:
                return g
            if g == self.TRUE or f == g:
                return f
        elif op == "or":
            if f == self.TRUE or g == self.TRUE:
                return self.TRUE
            if f == self.FALSE:
                return g
            if g == self.FALSE or f == g:
                return f
        elif op == "xor":
            if f == g:
                return self.FALSE
            if f == self.FALSE:
                return g
            if g == self.FALSE:
                return f
            if f == self.TRUE:
                return self._negate(g)
            if g == self.TRUE:
                return self._negate(f)
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown op {op!r}")
        if op in ("and", "or", "xor") and g < f:
            f, g = g, f  # commutative: canonicalise the cache key
        key = (op, f, g)
        cached = self._apply_cache.get(key)
        if cached is not None:
            return cached
        lf, lg = self._level[f], self._level[g]
        top = min(lf, lg)
        f0, f1 = (self._low[f], self._high[f]) if lf == top else (f, f)
        g0, g1 = (self._low[g], self._high[g]) if lg == top else (g, g)
        result = self._mk(top, self._apply(op, f0, g0), self._apply(op, f1, g1))
        self._apply_cache[key] = result
        return result

    def _negate(self, f: int) -> int:
        if f == self.FALSE:
            return self.TRUE
        if f == self.TRUE:
            return self.FALSE
        cached = self._neg_cache.get(f)
        if cached is not None:
            return cached
        result = self._mk(self._level[f], self._negate(self._low[f]), self._negate(self._high[f]))
        self._neg_cache[f] = result
        return result

    def ite(self, f: Func, g: Func, h: Func) -> Func:
        """If-then-else: ``f & g | ~f & h``."""
        return (f & g) | (~f & h)

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------
    def restrict(self, f: int, name: str, value: bool) -> int:
        """Cofactor node ``f`` with variable ``name`` fixed to ``value``."""
        level = self._var_level.get(name)
        if level is None:
            raise KeyError(f"unknown BDD variable {name!r}")
        cache: Dict[int, int] = {}

        def walk(node: int) -> int:
            nl = self._level[node]
            if nl > level:
                return node
            hit = cache.get(node)
            if hit is not None:
                return hit
            if nl == level:
                result = self._high[node] if value else self._low[node]
            else:
                result = self._mk(nl, walk(self._low[node]), walk(self._high[node]))
            cache[node] = result
            return result

        return walk(f)

    def exists(self, f: Func, names: Iterable[str]) -> Func:
        """Existential quantification over ``names``."""
        node = f.node
        for name in names:
            node = self._apply(
                "or", self.restrict(node, name, False), self.restrict(node, name, True)
            )
        return Func(self, node)

    def support(self, f: int) -> Tuple[str, ...]:
        """Variables the function depends on, in variable order."""
        levels = set()
        seen = set()
        stack = [f]
        while stack:
            node = stack.pop()
            if node in seen or node <= self.TRUE:
                continue
            seen.add(node)
            levels.add(self._level[node])
            stack.append(self._low[node])
            stack.append(self._high[node])
        return tuple(self._var_names[lv] for lv in sorted(levels))

    def evaluate(self, f: int, assignment: Mapping[str, bool]) -> bool:
        node = f
        while node > self.TRUE:
            name = self._var_names[self._level[node]]
            node = self._high[node] if assignment[name] else self._low[node]
        return node == self.TRUE

    def probability(self, f: int, probs: Mapping[str, float]) -> float:
        """``P(f = 1)`` for independent variables with given one-probabilities."""
        cache: Dict[int, float] = {self.FALSE: 0.0, self.TRUE: 1.0}

        def walk(node: int) -> float:
            hit = cache.get(node)
            if hit is not None:
                return hit
            p = float(probs[self._var_names[self._level[node]]])
            result = p * walk(self._high[node]) + (1.0 - p) * walk(self._low[node])
            cache[node] = result
            return result

        return walk(f)

    def sat_count(self, f: int, nvars: Optional[int] = None) -> int:
        """Number of satisfying assignments over the first ``nvars`` variables."""
        if nvars is None:
            nvars = len(self._var_names)
        cache: Dict[int, int] = {}

        def walk(node: int) -> int:
            if node == self.FALSE:
                return 0
            if node == self.TRUE:
                return 1 << nvars
            hit = cache.get(node)
            if hit is None:
                hit = (walk(self._low[node]) + walk(self._high[node])) // 2
                cache[node] = hit
            return hit

        return walk(f)
