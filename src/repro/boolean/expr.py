"""Boolean expression AST with a small infix parser.

Expressions are the human-facing form for library gate functions and
sum-of-products covers.  They evaluate generically: the same tree can be
folded over plain booleans, :class:`~repro.boolean.truthtable.TruthTable`
objects or BDD nodes, because evaluation only uses ``&``, ``|``, ``^``
and ``~`` on the operand type.

Grammar (precedence low to high)::

    expr   := term ('|' term)*          # also '+'
    term   := factor ('&' factor)*      # also '*' and juxtaposition-free
    factor := xorop
    xorop  := unary ('^' unary)*
    unary  := '!' unary | '~' unary | atom ("'" postfix complement)*
    atom   := '0' | '1' | NAME | '(' expr ')'
"""

from __future__ import annotations

from typing import Iterator, Mapping, Sequence, Tuple

from .truthtable import TruthTable

__all__ = ["Expr", "Var", "Const", "Not", "And", "Or", "Xor", "parse_expr"]


class Expr:
    """Base class of Boolean expression nodes."""

    def evaluate(self, env: Mapping[str, object]):
        """Fold the expression over operands looked up in ``env``.

        Works for any operand type supporting ``&``, ``|``, ``^``, ``~``
        (booleans are special-cased so plain ``bool`` works too).
        """
        raise NotImplementedError

    def variables(self) -> Tuple[str, ...]:
        """All distinct variable names, in first-appearance order."""
        seen = []
        self._collect(seen)
        return tuple(seen)

    def _collect(self, seen) -> None:
        raise NotImplementedError

    def to_truthtable(self, variables: Sequence[str] = None) -> TruthTable:
        """Compile to a truth table over ``variables`` (default: own support)."""
        if variables is None:
            variables = self.variables()
        env = {v: TruthTable.variable(variables, v) for v in variables}
        result = self.evaluate(env)
        if isinstance(result, bool):
            result = TruthTable.constant(variables, result)
        return result

    def __invert__(self) -> "Expr":
        return Not(self)

    def __and__(self, other: "Expr") -> "Expr":
        return And((self, other))

    def __or__(self, other: "Expr") -> "Expr":
        return Or((self, other))

    def __xor__(self, other: "Expr") -> "Expr":
        return Xor((self, other))

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self})"


class Var(Expr):
    """A named input variable."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def evaluate(self, env):
        return env[self.name]

    def _collect(self, seen):
        if self.name not in seen:
            seen.append(self.name)

    def __str__(self) -> str:
        return self.name


class Const(Expr):
    """A Boolean constant."""

    __slots__ = ("value",)

    def __init__(self, value: bool):
        self.value = bool(value)

    def evaluate(self, env):
        return self.value

    def _collect(self, seen):
        pass

    def __str__(self) -> str:
        return "1" if self.value else "0"


class Not(Expr):
    """Logical complement."""

    __slots__ = ("operand",)

    def __init__(self, operand: Expr):
        self.operand = operand

    def evaluate(self, env):
        value = self.operand.evaluate(env)
        if isinstance(value, bool):
            return not value
        return ~value

    def _collect(self, seen):
        self.operand._collect(seen)

    def __str__(self) -> str:
        return f"!{self._paren(self.operand)}"

    @staticmethod
    def _paren(e: Expr) -> str:
        return f"({e})" if isinstance(e, (And, Or, Xor)) else str(e)


class _NaryOp(Expr):
    """Shared machinery for associative binary connectives."""

    __slots__ = ("operands",)
    _symbol = "?"

    def __init__(self, operands: Sequence[Expr]):
        operands = tuple(operands)
        if len(operands) < 1:
            raise ValueError("n-ary operator needs at least one operand")
        self.operands = operands

    def _fold(self, a, b):
        raise NotImplementedError

    def evaluate(self, env):
        values = [op.evaluate(env) for op in self.operands]
        acc = values[0]
        for v in values[1:]:
            acc = self._fold(acc, v)
        return acc

    def _collect(self, seen):
        for op in self.operands:
            op._collect(seen)

    def _paren(self, e: Expr) -> str:
        if isinstance(e, _NaryOp) and type(e) is not type(self):
            return f"({e})"
        return str(e)

    def __str__(self) -> str:
        return f" {self._symbol} ".join(self._paren(op) for op in self.operands)


class And(_NaryOp):
    """Logical conjunction."""

    _symbol = "&"

    def _fold(self, a, b):
        if isinstance(a, bool) and isinstance(b, bool):
            return a and b
        return a & b


class Or(_NaryOp):
    """Logical disjunction."""

    _symbol = "|"

    def _fold(self, a, b):
        if isinstance(a, bool) and isinstance(b, bool):
            return a or b
        return a | b


class Xor(_NaryOp):
    """Logical exclusive-or."""

    _symbol = "^"

    def _fold(self, a, b):
        if isinstance(a, bool) and isinstance(b, bool):
            return a != b
        return a ^ b


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------
class _Tokens:
    def __init__(self, text: str):
        self.tokens = list(self._lex(text))
        self.pos = 0

    @staticmethod
    def _lex(text: str) -> Iterator[str]:
        i = 0
        while i < len(text):
            c = text[i]
            if c.isspace():
                i += 1
            elif c in "()!~&|^*+'":
                yield c
                i += 1
            elif c.isalnum() or c in "_[]<>.$":
                j = i
                while j < len(text) and (text[j].isalnum() or text[j] in "_[]<>.$"):
                    j += 1
                yield text[i:j]
                i = j
            else:
                raise ValueError(f"unexpected character {c!r} in expression {text!r}")

    def peek(self) -> str:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else ""

    def next(self) -> str:
        tok = self.peek()
        self.pos += 1
        return tok

    def expect(self, tok: str) -> None:
        got = self.next()
        if got != tok:
            raise ValueError(f"expected {tok!r}, got {got!r}")


def parse_expr(text: str) -> Expr:
    """Parse an infix Boolean expression string into an :class:`Expr` tree."""
    tokens = _Tokens(text)
    expr = _parse_or(tokens)
    if tokens.peek():
        raise ValueError(f"trailing tokens near {tokens.peek()!r} in {text!r}")
    return expr


def _parse_or(tokens: _Tokens) -> Expr:
    parts = [_parse_and(tokens)]
    while tokens.peek() in ("|", "+"):
        tokens.next()
        parts.append(_parse_and(tokens))
    return parts[0] if len(parts) == 1 else Or(parts)


def _parse_and(tokens: _Tokens) -> Expr:
    parts = [_parse_xor(tokens)]
    while tokens.peek() in ("&", "*"):
        tokens.next()
        parts.append(_parse_xor(tokens))
    return parts[0] if len(parts) == 1 else And(parts)


def _parse_xor(tokens: _Tokens) -> Expr:
    parts = [_parse_unary(tokens)]
    while tokens.peek() == "^":
        tokens.next()
        parts.append(_parse_unary(tokens))
    return parts[0] if len(parts) == 1 else Xor(parts)


def _parse_unary(tokens: _Tokens) -> Expr:
    tok = tokens.peek()
    if tok in ("!", "~"):
        tokens.next()
        expr: Expr = Not(_parse_unary(tokens))
    elif tok == "(":
        tokens.next()
        expr = _parse_or(tokens)
        tokens.expect(")")
    elif tok == "0":
        tokens.next()
        expr = Const(False)
    elif tok == "1":
        tokens.next()
        expr = Const(True)
    elif tok and (tok[0].isalpha() or tok[0] in "_$"):
        tokens.next()
        expr = Var(tok)
    else:
        raise ValueError(f"unexpected token {tok!r}")
    while tokens.peek() == "'":
        tokens.next()
        expr = Not(expr)
    return expr
