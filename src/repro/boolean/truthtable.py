"""Bit-parallel truth tables for small Boolean functions.

Library gates have at most six inputs, so every gate-local Boolean
computation in the power model (the path functions ``H``/``G``, their
Boolean differences, signal probabilities) runs on truth tables packed
into a single Python integer.  Minterm ``i`` assigns variable ``j`` the
value ``(i >> j) & 1``; bit ``i`` of :attr:`TruthTable.bits` is the
function value on that minterm.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Sequence, Tuple

import numpy as np

__all__ = ["TruthTable", "MAX_VARS"]

#: Safety bound: tables are dense in ``2**n``, so cap the variable count.
MAX_VARS = 20

_MINTERM_CACHE: Dict[int, np.ndarray] = {}


def _minterm_matrix(nvars: int) -> np.ndarray:
    """Return a ``(2**nvars, nvars)`` 0/1 matrix of variable values per minterm."""
    mat = _MINTERM_CACHE.get(nvars)
    if mat is None:
        idx = np.arange(1 << nvars, dtype=np.uint32)
        mat = (idx[:, None] >> np.arange(nvars, dtype=np.uint32)[None, :]) & 1
        _MINTERM_CACHE[nvars] = mat
    return mat


class TruthTable:
    """An immutable Boolean function over an ordered tuple of named variables."""

    __slots__ = ("vars", "bits")

    def __init__(self, variables: Sequence[str], bits: int):
        variables = tuple(variables)
        if len(variables) > MAX_VARS:
            raise ValueError(f"too many variables for a dense truth table: {len(variables)}")
        if len(set(variables)) != len(variables):
            raise ValueError(f"duplicate variable names: {variables}")
        mask = (1 << (1 << len(variables))) - 1
        object.__setattr__(self, "vars", variables)
        object.__setattr__(self, "bits", bits & mask)

    def __setattr__(self, name, value):  # pragma: no cover - immutability guard
        raise AttributeError("TruthTable is immutable")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def constant(cls, variables: Sequence[str], value: bool) -> "TruthTable":
        """The constant 0 or constant 1 function over ``variables``."""
        n = 1 << len(tuple(variables))
        return cls(variables, (1 << n) - 1 if value else 0)

    @classmethod
    def variable(cls, variables: Sequence[str], name: str) -> "TruthTable":
        """The projection function of variable ``name``."""
        variables = tuple(variables)
        j = variables.index(name)
        n = len(variables)
        bits = 0
        # Pattern of variable j: blocks of 2**j ones alternating with zeros.
        block = (1 << (1 << j)) - 1
        period = 1 << (j + 1)
        for start in range(1 << j, 1 << n, period):
            bits |= block << start
        return cls(variables, bits)

    @classmethod
    def from_function(cls, variables: Sequence[str], fn) -> "TruthTable":
        """Build a table by evaluating ``fn(assignment_dict) -> bool`` on all minterms."""
        variables = tuple(variables)
        bits = 0
        for i in range(1 << len(variables)):
            assignment = {v: bool((i >> j) & 1) for j, v in enumerate(variables)}
            if fn(assignment):
                bits |= 1 << i
        return cls(variables, bits)

    # ------------------------------------------------------------------
    # Logical connectives
    # ------------------------------------------------------------------
    def _check_aligned(self, other: "TruthTable") -> None:
        if self.vars != other.vars:
            raise ValueError(f"variable mismatch: {self.vars} vs {other.vars}")

    def __invert__(self) -> "TruthTable":
        return TruthTable(self.vars, ~self.bits)

    def __and__(self, other: "TruthTable") -> "TruthTable":
        self._check_aligned(other)
        return TruthTable(self.vars, self.bits & other.bits)

    def __or__(self, other: "TruthTable") -> "TruthTable":
        self._check_aligned(other)
        return TruthTable(self.vars, self.bits | other.bits)

    def __xor__(self, other: "TruthTable") -> "TruthTable":
        self._check_aligned(other)
        return TruthTable(self.vars, self.bits ^ other.bits)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, TruthTable)
            and self.vars == other.vars
            and self.bits == other.bits
        )

    def __hash__(self) -> int:
        return hash((self.vars, self.bits))

    def __repr__(self) -> str:
        n = 1 << len(self.vars)
        return f"TruthTable(vars={self.vars}, bits=0b{self.bits:0{n}b})"

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def nvars(self) -> int:
        return len(self.vars)

    def is_constant(self) -> bool:
        """True when the function does not depend on any variable."""
        n = 1 << len(self.vars)
        return self.bits == 0 or self.bits == (1 << n) - 1

    def constant_value(self) -> bool:
        """Value of a constant function (raises if not constant)."""
        if not self.is_constant():
            raise ValueError("function is not constant")
        return self.bits != 0

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        """Evaluate on a full assignment of the variables."""
        i = 0
        for j, v in enumerate(self.vars):
            if assignment[v]:
                i |= 1 << j
        return bool((self.bits >> i) & 1)

    def evaluate_index(self, minterm: int) -> bool:
        """Evaluate on a minterm index (bit ``j`` = value of ``vars[j]``)."""
        return bool((self.bits >> minterm) & 1)

    def cofactor(self, name: str, value: bool) -> "TruthTable":
        """Shannon cofactor with respect to one variable (variable list kept)."""
        j = self.vars.index(name)
        var_bits = TruthTable.variable(self.vars, name).bits
        keep = var_bits if value else ~var_bits
        shift = 1 << j
        selected = self.bits & keep
        if value:
            spread = selected | (selected >> shift)
        else:
            spread = selected | (selected << shift)
        n = 1 << len(self.vars)
        return TruthTable(self.vars, spread & ((1 << n) - 1))

    def boolean_difference(self, name: str) -> "TruthTable":
        """Najm's Boolean difference ``f|x=1 XOR f|x=0`` with respect to ``name``."""
        return self.cofactor(name, True) ^ self.cofactor(name, False)

    def depends_on(self, name: str) -> bool:
        """True when the function depends essentially on variable ``name``."""
        return self.boolean_difference(name).bits != 0

    def support(self) -> Tuple[str, ...]:
        """The essential variables of the function, in declaration order."""
        return tuple(v for v in self.vars if self.depends_on(v))

    def count_minterms(self) -> int:
        """Number of satisfying assignments."""
        return bin(self.bits).count("1")

    def minterms(self) -> Iterable[int]:
        """Iterate indices of satisfying minterms."""
        bits = self.bits
        i = 0
        while bits:
            if bits & 1:
                yield i
            bits >>= 1
            i += 1

    # ------------------------------------------------------------------
    # Variable manipulation
    # ------------------------------------------------------------------
    def expand(self, variables: Sequence[str]) -> "TruthTable":
        """Re-express the function over a superset/reordering of its variables."""
        variables = tuple(variables)
        missing = [v for v in self.vars if v not in variables and self.depends_on(v)]
        if missing:
            raise ValueError(f"cannot drop essential variables {missing}")
        if variables == self.vars:
            return self
        n_new = len(variables)
        old_pos = {v: j for j, v in enumerate(self.vars)}
        mat = _minterm_matrix(n_new)
        # Map each new minterm to the old minterm index it corresponds to.
        old_index = np.zeros(1 << n_new, dtype=np.uint64)
        for new_j, v in enumerate(variables):
            if v in old_pos:
                old_index |= mat[:, new_j].astype(np.uint64) << np.uint64(old_pos[v])
        new_bits = 0
        for i, oi in enumerate(old_index.tolist()):
            if (self.bits >> oi) & 1:
                new_bits |= 1 << i
        return TruthTable(variables, new_bits)

    def rename(self, mapping: Mapping[str, str]) -> "TruthTable":
        """Rename variables (must stay unique)."""
        return TruthTable(tuple(mapping.get(v, v) for v in self.vars), self.bits)

    def permute(self, permutation: Sequence[int]) -> "TruthTable":
        """Reorder variables: ``vars[new_j] = old_vars[permutation[new_j]]``."""
        new_vars = tuple(self.vars[p] for p in permutation)
        return self.expand(new_vars)

    # ------------------------------------------------------------------
    # Probability
    # ------------------------------------------------------------------
    def probability(self, probs: Mapping[str, float]) -> float:
        """Signal probability ``P(f = 1)`` under spatially independent inputs.

        ``probs`` maps each variable name to its equilibrium probability.
        Variables the function does not mention still participate (their
        weights sum out to 1), so only names missing from ``probs`` raise.
        """
        n = len(self.vars)
        if n == 0 or self.is_constant():
            return 1.0 if self.bits else 0.0
        p = np.array([float(probs[v]) for v in self.vars])
        if np.any((p < 0.0) | (p > 1.0)):
            raise ValueError("probabilities must lie in [0, 1]")
        mat = _minterm_matrix(n)
        weights = np.prod(np.where(mat == 1, p[None, :], 1.0 - p[None, :]), axis=1)
        idx = np.frombuffer(
            self.bits.to_bytes((1 << n) // 8 if n >= 3 else 1, "little"), dtype=np.uint8
        )
        sel = np.unpackbits(idx, bitorder="little")[: 1 << n].astype(bool)
        return float(min(1.0, max(0.0, weights[sel].sum())))
