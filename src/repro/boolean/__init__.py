"""Boolean-function substrates: truth tables, expressions and BDDs."""

from .bdd import BDD, Func
from .expr import And, Const, Expr, Not, Or, Var, Xor, parse_expr
from .truthtable import TruthTable

__all__ = [
    "BDD",
    "Func",
    "TruthTable",
    "Expr",
    "Var",
    "Const",
    "Not",
    "And",
    "Or",
    "Xor",
    "parse_expr",
]
