"""Timing substrates: Elmore stack delays and static timing analysis."""

from .elmore import gate_pin_delay, gate_worst_delay, min_path_resistance, stack_delay
from .sta import (
    DEFAULT_PO_LOAD,
    TimingReport,
    analyze_timing,
    circuit_delay,
    gate_arrival,
    net_load,
    timing_context,
)

__all__ = [
    "gate_pin_delay",
    "gate_worst_delay",
    "min_path_resistance",
    "stack_delay",
    "TimingReport",
    "analyze_timing",
    "circuit_delay",
    "gate_arrival",
    "net_load",
    "timing_context",
    "DEFAULT_PO_LOAD",
]
