"""Static timing analysis over mapped circuits.

Propagates arrival times through the netlist using the per-pin Elmore
delays of each gate's *current* transistor ordering, so re-ordering a
gate changes the timing report — which is how the paper's Table 3
column D (delay increase of the power-optimised circuit) is produced.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from ..circuit.netlist import Circuit, GateInstance
from ..circuit.topology import topological_gates
from ..gates.capacitance import TechParams
from .elmore import gate_pin_delay

__all__ = ["TimingReport", "analyze_timing", "circuit_delay", "DEFAULT_PO_LOAD"]

#: Default primary-output load: a few standard gate pins' worth.
DEFAULT_PO_LOAD = 10.0e-15


@dataclass(frozen=True)
class TimingReport:
    """Arrival times plus the critical path of one analysis run."""

    arrivals: Dict[str, float]
    delay: float
    critical_path: Tuple[str, ...]
    """Net names from a primary input to the latest primary output."""

    def arrival(self, net: str) -> float:
        return self.arrivals[net]


def analyze_timing(circuit: Circuit, tech: Optional[TechParams] = None,
                   po_load: float = DEFAULT_PO_LOAD,
                   input_arrivals: Optional[Mapping[str, float]] = None) -> TimingReport:
    """Compute arrival times for every net and extract the critical path."""
    tech = tech if tech is not None else TechParams()
    arrivals: Dict[str, float] = {}
    predecessor: Dict[str, Optional[str]] = {}
    for net in circuit.inputs:
        arrivals[net] = float(input_arrivals[net]) if input_arrivals else 0.0
        predecessor[net] = None
    for gate in topological_gates(circuit):
        compiled = gate.compiled()
        config = gate.effective_config()
        load = circuit.output_load(gate.output, tech, po_load)
        best_time = float("-inf")
        best_pred: Optional[str] = None
        for pin in gate.template.pins:
            net = gate.pin_nets[pin]
            t = arrivals[net] + gate_pin_delay(compiled, config, pin, tech, load)
            if t > best_time:
                best_time = t
                best_pred = net
        arrivals[gate.output] = best_time
        predecessor[gate.output] = best_pred
    if circuit.outputs:
        worst_output = max(circuit.outputs, key=lambda n: arrivals[n])
        delay = arrivals[worst_output]
        path: List[str] = []
        net: Optional[str] = worst_output
        while net is not None:
            path.append(net)
            net = predecessor[net]
        path.reverse()
    else:
        delay = 0.0
        path = []
    return TimingReport(arrivals, delay, tuple(path))


def circuit_delay(circuit: Circuit, tech: Optional[TechParams] = None,
                  po_load: float = DEFAULT_PO_LOAD) -> float:
    """Longest input-to-output delay (seconds)."""
    return analyze_timing(circuit, tech, po_load).delay
