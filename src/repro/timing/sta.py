"""Static timing analysis over mapped circuits.

Propagates arrival times through the netlist using the per-pin Elmore
delays of each gate's *current* transistor ordering, so re-ordering a
gate changes the timing report — which is how the paper's Table 3
column D (delay increase of the power-optimised circuit) is produced.

The per-gate arrival kernel (:func:`gate_arrival`) and the net-load
summation (:func:`net_load`) are shared with the incremental engine:
:class:`repro.incremental.timing.TimingCache` maintains the same
arrival times under ECO edits with cone-sized work and is bit-identical
to :func:`analyze_timing` by construction (one kernel, two drivers).
See ``src/repro/incremental/README.md`` ("Timing invalidation rules")
for the dirty-set protocol the cache layers on top.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..circuit.netlist import Circuit, GateInstance
from ..gates.capacitance import TechParams, net_load
from .elmore import gate_pin_delay

__all__ = [
    "TimingReport",
    "build_timing_report",
    "analyze_timing",
    "circuit_delay",
    "timing_context",
    "gate_arrival",
    "net_load",
    "DEFAULT_PO_LOAD",
]

#: Default primary-output load: a few standard gate pins' worth.
DEFAULT_PO_LOAD = 10.0e-15


def timing_context(tech: Optional[TechParams] = None,
                   po_load: Optional[float] = None) -> Tuple[TechParams, float]:
    """Resolve the shared ``(tech, po_load)`` defaults in one place.

    Every delay/load consumer — :func:`analyze_timing`,
    :func:`circuit_delay`, :class:`repro.incremental.cache.StatsCache`
    and :class:`repro.incremental.timing.TimingCache` — applies the
    same defaulting rule; keeping it here stops each of them growing
    its own copy.
    """
    return (tech if tech is not None else TechParams(),
            DEFAULT_PO_LOAD if po_load is None else float(po_load))


def gate_arrival(gate: GateInstance, arrivals: Mapping[str, float],
                 tech: TechParams, load: float) -> Tuple[float, Optional[str]]:
    """Output arrival time and latest-arriving fanin net of one gate.

    The single per-gate kernel of both timing drivers: the batch
    :func:`analyze_timing` sweep and the incremental
    :class:`~repro.incremental.timing.TimingCache` re-propagation call
    exactly this, so their results cannot drift apart.  Ties resolve to
    the first pin in template order (strictly-greater comparison), like
    Python's :func:`max` over the same sequence.
    """
    compiled = gate.compiled()
    config = gate.effective_config()
    best_time = float("-inf")
    best_pred: Optional[str] = None
    for pin in gate.template.pins:
        net = gate.pin_nets[pin]
        t = arrivals[net] + gate_pin_delay(compiled, config, pin, tech, load)
        if t > best_time:
            best_time = t
            best_pred = net
    return best_time, best_pred


@dataclass(frozen=True)
class TimingReport:
    """Arrival times plus the critical path of one analysis run."""

    arrivals: Dict[str, float]
    delay: float
    critical_path: Tuple[str, ...]
    """Net names from a primary input to the latest primary output."""

    def arrival(self, net: str) -> float:
        return self.arrivals[net]


def build_timing_report(arrivals: Dict[str, float],
                        predecessor: Mapping[str, Optional[str]],
                        outputs: Sequence[str]) -> TimingReport:
    """Fold an arrival/predecessor map into a :class:`TimingReport`.

    The single implementation of worst-output selection (Python
    ``max`` over ``outputs`` — first output on exact ties) and the
    predecessor walk, shared by the object-graph sweep below and the
    compiled kernel (:meth:`repro.compiled.circuit.CompiledCircuit.analyze_timing`)
    so the two cannot drift apart on tie-breaking or path extraction.
    """
    if outputs:
        worst_output = max(outputs, key=lambda n: arrivals[n])
        delay = arrivals[worst_output]
        path: List[str] = []
        net: Optional[str] = worst_output
        while net is not None:
            path.append(net)
            net = predecessor[net]
        path.reverse()
    else:
        delay = 0.0
        path = []
    return TimingReport(arrivals, delay, tuple(path))


def analyze_timing(circuit: Circuit, tech: Optional[TechParams] = None,
                   po_load: float = DEFAULT_PO_LOAD,
                   input_arrivals: Optional[Mapping[str, float]] = None,
                   compiled: Optional[bool] = None) -> TimingReport:
    """Compute arrival times for every net and extract the critical path.

    ``compiled`` routes the sweep through the flat-array kernels of
    :mod:`repro.compiled` (``None`` defers to the ``REPRO_COMPILED``
    environment flag); results are bit-identical either way.
    """
    tech, po_load = timing_context(tech, po_load)
    from ..compiled.flags import use_compiled

    if use_compiled(compiled):
        from ..compiled import get_compiled

        return get_compiled(circuit).analyze_timing(tech, po_load,
                                                    input_arrivals)
    arrivals: Dict[str, float] = {}
    predecessor: Dict[str, Optional[str]] = {}
    for net in circuit.inputs:
        arrivals[net] = float(input_arrivals[net]) if input_arrivals else 0.0
        predecessor[net] = None
    outputs = frozenset(circuit.outputs)
    index = circuit.fanout_index()
    for gate in circuit.topo_gates():
        load = net_load(index.sinks(gate.output), gate.output in outputs,
                        tech, po_load)
        arrival, pred = gate_arrival(gate, arrivals, tech, load)
        arrivals[gate.output] = arrival
        predecessor[gate.output] = pred
    return build_timing_report(arrivals, predecessor, circuit.outputs)


def circuit_delay(circuit: Circuit, tech: Optional[TechParams] = None,
                  po_load: float = DEFAULT_PO_LOAD) -> float:
    """Longest input-to-output delay (seconds)."""
    return analyze_timing(circuit, tech, po_load).delay
