"""Elmore delay of series-parallel transistor stacks.

The delay of a CMOS gate depends on *where* in the stack the
late-arriving input sits: when it finally turns on, only the diffusion
nodes between its transistor and the output still have to swing (the
nodes below were already discharged through the transistors that were
on).  The classic rule of thumb — critical signal close to the output
for speed — follows, and it is exactly the rule the paper observes
often *conflicts* with the low-power ordering.

For one switching pin we build the conduction path through that pin's
transistor as an RC ladder (other series devices conducting, parallel
side branches off but still loading the junctions with their diffusion
terminals, exactly one branch of each parallel block on the path
conducting) and evaluate

``tau = C_out · R(rail→out) + Σ_{junctions above the pin} C_j · R(rail→j)``

with delay ``ln 2 · tau``.  Nodes below the switching transistor are
pre-discharged and contribute resistance only.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

from ..gates import sptree
from ..gates.capacitance import TechParams
from ..gates.library import GateConfig
from ..gates.network import OUT, CompiledGate
from ..gates.sptree import Leaf, Parallel, Series, SPTree

__all__ = [
    "min_path_resistance",
    "stack_delay_terms",
    "stack_delay",
    "gate_pin_delay",
    "gate_pin_delay_terms",
    "gate_worst_delay",
]

LN2 = math.log(2.0)


def _device_resistance(tech: TechParams, ttype: str) -> float:
    return tech.r_n if ttype == "n" else tech.r_p


def min_path_resistance(tree: SPTree, tech: TechParams, ttype: str) -> float:
    """Resistance of the best single conducting path through the network."""
    if isinstance(tree, Leaf):
        return _device_resistance(tech, ttype)
    if isinstance(tree, Series):
        return sum(min_path_resistance(c, tech, ttype) for c in tree.children)
    return min(min_path_resistance(c, tech, ttype) for c in tree.children)


def _top_terminals(tree: SPTree) -> int:
    """Transistor terminals the network presents at its output-side node."""
    if isinstance(tree, Leaf):
        return 1
    if isinstance(tree, Series):
        return _top_terminals(tree.children[0])
    return sum(_top_terminals(c) for c in tree.children)


def _bottom_terminals(tree: SPTree) -> int:
    if isinstance(tree, Leaf):
        return 1
    if isinstance(tree, Series):
        return _bottom_terminals(tree.children[-1])
    return sum(_bottom_terminals(c) for c in tree.children)


def _ladder(tree: SPTree, pin: Optional[str], tech: TechParams,
            ttype: str) -> Tuple[List[float], List[float], Optional[int]]:
    """RC ladder along the conduction path, output side first.

    Returns ``(resistances, junction_caps, pin_segment_index)`` where
    ``junction_caps[i]`` loads the node between segments ``i`` and
    ``i+1``.  ``pin`` selects which parallel branches are taken; with
    ``pin=None`` the minimum-resistance branch is used.
    """
    if isinstance(tree, Leaf):
        index = 0 if (pin is not None and tree.signal == pin) else None
        return [_device_resistance(tech, ttype)], [], index
    if isinstance(tree, Parallel):
        if pin is not None and pin in sptree.leaves(tree):
            branch = next(c for c in tree.children if pin in sptree.leaves(c))
            return _ladder(branch, pin, tech, ttype)
        branch = min(tree.children, key=lambda c: min_path_resistance(c, tech, ttype))
        return _ladder(branch, None, tech, ttype)
    # Series: concatenate child ladders with junction capacitances.
    resistances: List[float] = []
    caps: List[float] = []
    pin_index: Optional[int] = None
    for position, child in enumerate(tree.children):
        child_pin = pin if (pin is not None and pin in sptree.leaves(child)) else None
        r_child, c_child, p_child = _ladder(child, child_pin, tech, ttype)
        if position > 0:
            previous = tree.children[position - 1]
            junction = (_bottom_terminals(previous) + _top_terminals(child)) * tech.c_diff
            caps.append(junction)
        if p_child is not None:
            pin_index = len(resistances) + p_child
        resistances.extend(r_child)
        caps.extend(c_child)
    return resistances, caps, pin_index


def _mirror(tree: SPTree) -> SPTree:
    """Reverse every series chain (PUN trees are stored vdd-side first)."""
    if isinstance(tree, Leaf):
        return tree
    children = tuple(_mirror(c) for c in tree.children)
    if isinstance(tree, Series):
        children = tuple(reversed(children))
    return type(tree)(children)


def stack_delay_terms(tree: SPTree, pin: str, tech: TechParams,
                      ttype: str) -> Tuple[float, Tuple[float, ...]]:
    """Load-affine decomposition of :func:`stack_delay`.

    Returns ``(path_resistance, junction_terms)`` such that the delay
    for an output capacitance ``C`` is
    ``ln 2 * (C * path_resistance + Σ junction_terms)`` — accumulated
    in exactly the order :func:`stack_delay` uses, so precomputing the
    terms once (as the flat-circuit kernels of :mod:`repro.compiled`
    do, per configuration and pin) reproduces it bit-for-bit for any
    load.
    """
    if pin not in sptree.leaves(tree):
        raise KeyError(f"pin {pin!r} not in network {tree}")
    resistances, caps, pin_index = _ladder(tree, pin, tech, ttype)
    if pin_index is None:  # pragma: no cover - guarded by the check above
        raise KeyError(f"pin {pin!r} not found on conduction path")
    suffix = [0.0] * (len(resistances) + 1)
    for i in range(len(resistances) - 1, -1, -1):
        suffix[i] = suffix[i + 1] + resistances[i]
    # Only junctions above the switching device swing.
    terms = tuple(
        cap * suffix[j + 1] for j, cap in enumerate(caps) if j < pin_index
    )
    return suffix[0], terms


def stack_delay(tree: SPTree, pin: str, output_cap: float,
                tech: TechParams, ttype: str) -> float:
    """Elmore delay (seconds) of the output transition caused by ``pin``.

    ``tree`` must be oriented output-side first (PDN trees already are;
    PUN trees are mirrored by the callers below).
    """
    resistance, terms = stack_delay_terms(tree, pin, tech, ttype)
    tau = output_cap * resistance
    for term in terms:
        tau += term
    return LN2 * tau


def gate_pin_delay(gate: CompiledGate, config: GateConfig, pin: str,
                   tech: TechParams, load: float) -> float:
    """Worst of the falling (PDN) and rising (PUN) output delays for ``pin``."""
    output_cap = gate.terminal_counts[OUT] * tech.c_diff + tech.c_wire + load
    fall = stack_delay(config.pdn, pin, output_cap, tech, "n")
    rise = stack_delay(_mirror(config.pun), pin, output_cap, tech, "p")
    return max(fall, rise)


def gate_pin_delay_terms(gate: CompiledGate, config: GateConfig, pin: str,
                         tech: TechParams):
    """Both sides of :func:`gate_pin_delay` as load-affine terms.

    Returns ``((fall_resistance, fall_terms), (rise_resistance,
    rise_terms))`` for :func:`stack_delay_terms`-style evaluation; the
    output capacitance they apply to is
    ``gate.terminal_counts[OUT] * c_diff + c_wire + load``.
    """
    fall = stack_delay_terms(config.pdn, pin, tech, "n")
    rise = stack_delay_terms(_mirror(config.pun), pin, tech, "p")
    return fall, rise


def gate_worst_delay(gate: CompiledGate, config: GateConfig,
                     tech: TechParams, load: float) -> float:
    """Worst pin-to-output delay of the configuration."""
    return max(
        gate_pin_delay(gate, config, pin, tech, load) for pin in gate.inputs
    )
