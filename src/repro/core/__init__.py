"""The paper's contribution: power model, reordering search, optimiser."""

from .optimizer import (
    CircuitPowerReport,
    GateDecision,
    OptimizeResult,
    circuit_power,
    optimize_circuit,
)
from .power_model import FORMULAS, GatePowerModel, GatePowerReport, NodePowerEntry
from .reorder import (
    ConfigEvaluation,
    enumerate_configurations,
    evaluate_configurations,
    find_best_configuration,
    find_worst_configuration,
    pivot_search,
)

__all__ = [
    "GatePowerModel",
    "GatePowerReport",
    "NodePowerEntry",
    "FORMULAS",
    "enumerate_configurations",
    "pivot_search",
    "evaluate_configurations",
    "find_best_configuration",
    "find_worst_configuration",
    "ConfigEvaluation",
    "optimize_circuit",
    "circuit_power",
    "OptimizeResult",
    "GateDecision",
    "CircuitPowerReport",
]
