"""The paper's circuit optimisation algorithm (§4, Figure 3).

One topological traversal of the mapped netlist.  For each gate it
gathers the (probability, density) statistics of its fanins
(OBTAIN_PROB_AND_DENS), exhaustively evaluates all transistor
reorderings under the extended power model and keeps the best
(FIND_BEST_REORDERING), then computes the output statistics with
Najm's transition density (CALCULATE_DENS) and moves on
(UPDATE_CIRCUIT_INFORMATION).

Because a gate's output function — hence its output (P, D) — does not
depend on the chosen ordering, the greedy per-gate choice is globally
optimal *with respect to the model* in a single pass (the paper's
monotonic-characteristic argument, §4.2).

Three objectives:

``"best"``      minimise each gate's modelled power (the paper's optimiser);
``"worst"``     maximise it (the paper's pessimal reference point — Table 3
                reports best-versus-worst savings);
``"delay-constrained"``  minimise power among the configurations whose
                per-pin delays do not exceed the as-mapped configuration's
                (the paper's future-work direction (b): savings with no
                delay increase).
``"fastest"``   minimise each gate's worst pin-to-output delay — the
                *prior-art baseline* the paper improves on (Carlson &
                Chen, DAC'93, reordered for performance with "no power
                consumption reductions reported").  Deliberately
                power-blind: delay ties (frequent — permutations share
                the worst-case delay) resolve by configuration key, so
                any power effect is incidental, as in the prior art.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from ..circuit.netlist import Circuit, GateInstance
from ..gates.capacitance import TechParams
from ..obs import trace as _trace
from ..obs.metrics import REGISTRY as _METRICS
from ..stochastic.signal import SignalStats
from ..timing.elmore import gate_pin_delay, gate_worst_delay
from ..timing.sta import DEFAULT_PO_LOAD
from .power_model import GatePowerModel, GatePowerReport
from .reorder import ConfigEvaluation, evaluate_configurations

__all__ = [
    "OBJECTIVES",
    "STATS_SOURCES",
    "GateDecision",
    "OptimizeResult",
    "optimize_circuit",
    "circuit_power",
    "CircuitPowerReport",
]

OBJECTIVES = ("best", "worst", "delay-constrained", "fastest")

#: Sources of the per-net (P, D) statistics driving the optimisation.
#: ``"model"`` is the paper's flow (incremental propagation through the
#: power model during the traversal); the others precompute a full map
#: with :func:`repro.stochastic.density.propagate_stats`.
STATS_SOURCES = ("model", "local", "exact", "sampled")

_EPS = 1e-30


@dataclass(frozen=True)
class GateDecision:
    """Outcome of optimising one gate."""

    gate_name: str
    template_name: str
    num_configurations: int
    chosen: ConfigEvaluation
    default_power: float
    """Modelled power of the as-mapped (default) configuration."""

    @property
    def saving_vs_default(self) -> float:
        if self.default_power <= _EPS:
            return 0.0
        return 1.0 - self.chosen.power / self.default_power


@dataclass
class OptimizeResult:
    """A reordered circuit plus the bookkeeping of how it was obtained."""

    circuit: Circuit
    net_stats: Dict[str, SignalStats]
    decisions: List[GateDecision]
    power_before: float
    """Total modelled power with the input circuit's configurations."""

    power_after: float
    """Total modelled power with the chosen configurations."""

    passes_run: int = 1
    """Traversals actually executed (< the requested ``passes`` when the
    configuration assignment reached a fixed point early)."""

    gates_decided: int = 0
    """Per-gate decisions evaluated across all passes.  Pass 1 decides
    every gate; later (cone-aware) passes re-decide only the worklist,
    so with ``passes > 1`` this stays far below ``passes * len(circuit)``."""

    gates_retimed: int = 0
    """Gate arrival recomputations performed by the incremental timing
    worklist (delay-aware objectives with ``passes > 1`` only; 0 when
    no :class:`~repro.incremental.timing.TimingCache` was attached)."""

    @property
    def reduction(self) -> float:
        """Fractional power reduction relative to the input circuit."""
        if self.power_before <= _EPS:
            return 0.0
        return 1.0 - self.power_after / self.power_before


@dataclass(frozen=True)
class CircuitPowerReport:
    """Total and per-gate modelled power of a circuit as configured."""

    total: float
    by_gate: Dict[str, GatePowerReport]
    net_stats: Dict[str, SignalStats]

    @property
    def internal_total(self) -> float:
        return sum(r.internal_power for r in self.by_gate.values())

    @property
    def output_total(self) -> float:
        return sum(r.output_power for r in self.by_gate.values())


def _pin_stats(gate: GateInstance,
               net_stats: Mapping[str, SignalStats]) -> Dict[str, SignalStats]:
    return {pin: net_stats[gate.pin_nets[pin]] for pin in gate.template.pins}


def optimize_circuit(
    circuit: Circuit,
    input_stats: Mapping[str, SignalStats],
    model: Optional[GatePowerModel] = None,
    objective: str = "best",
    po_load: float = DEFAULT_PO_LOAD,
    stats: str = "model",
    stats_kwargs: Optional[Mapping] = None,
    passes: int = 1,
) -> OptimizeResult:
    """Run the Figure 3 algorithm and return a reordered copy of ``circuit``.

    ``stats`` selects where the per-net (P, D) statistics come from:
    ``"model"`` (default) propagates them incrementally through the
    power model exactly as the paper's traversal does, while
    ``"local"``, ``"exact"`` and ``"sampled"`` precompute the full map
    with :func:`repro.stochastic.density.propagate_stats` (the sampled
    source runs the bit-parallel Monte Carlo engine; ``stats_kwargs``
    forwards its ``lanes``/``steps``/``dt``/``seed`` options).

    ``passes`` repeats the traversal up to that many times, stopping
    early at a fixed point.  The paper's single pass is per-gate
    optimal *under the model*, but a gate's external load depends on
    its sinks' pin capacitances — which the same pass may still change
    after the gate was decided.  Later passes are **cone-aware**: a
    gate's decision inputs are its fanin statistics (invariant across
    passes — reordering never changes a net's (P, D), and the
    non-model sources are precomputed once) and its external load, so
    instead of re-traversing the whole circuit each pass, later passes
    re-decide exactly the worklist of gates whose settled sink loads
    the previous pass actually changed: the fanin drivers of every
    re-configured gate.  This reaches the same fixed point as full
    re-traversal (a gate with unchanged decision inputs re-decides
    identically) in cone-sized work per pass
    (``OptimizeResult.gates_decided`` counts the total).

    For the delay-aware objectives (``"delay-constrained"`` and
    ``"fastest"``) the worklist additionally consumes **timing-dirty**
    gates: a :class:`~repro.incremental.timing.TimingCache` rides along
    on the working circuit, and every gate whose output arrival a pass
    actually moved (cone-sized re-propagation with early cut-off, not
    a full STA per pass) is re-verified next pass.  Under the model
    those re-decides are idempotent — a decision reads fanin statistics
    and load, both already covered by the load worklist — so this
    widens the audited set without changing the fixed point;
    ``OptimizeResult.gates_retimed`` counts the extra work.  The
    reported ``power_before`` always refers to the input circuit and
    ``power_after`` to the settled configuration under its settled
    loads.
    """
    if objective not in OBJECTIVES:
        raise ValueError(f"unknown objective {objective!r}; choose from {OBJECTIVES}")
    if stats not in STATS_SOURCES:
        raise ValueError(f"unknown stats source {stats!r}; choose from {STATS_SOURCES}")
    if stats_kwargs and stats == "model":
        # Silently dropping these would mislead a caller who configured
        # a Monte-Carlo run but forgot stats="sampled".
        raise TypeError(
            f"stats_kwargs {sorted(stats_kwargs)} need a non-default stats source"
        )
    if passes < 1:
        raise ValueError("passes must be at least 1")
    model = model if model is not None else GatePowerModel()
    missing = [n for n in circuit.inputs if n not in input_stats]
    if missing:
        raise KeyError(f"missing input statistics for {missing}")

    result_circuit = circuit.copy()
    precomputed: Optional[Dict[str, SignalStats]] = None
    if stats != "model":
        from ..stochastic.density import propagate_stats

        precomputed = propagate_stats(
            circuit, input_stats, method=stats, **dict(stats_kwargs or {})
        )

    power_before: Optional[float] = None
    power_after = 0.0
    net_stats: Dict[str, SignalStats] = {}
    passes_run = 0
    # The process-wide decision counter (repro.obs.metrics); the result
    # field is the delta over this run, so the artifact number and a
    # metrics snapshot always agree.
    _decided = _METRICS.counter("optimize.gates_decided")
    decided_start = _decided.value
    any_changed = False
    topo = result_circuit.topo_gates()
    decisions_by_gate: Dict[str, GateDecision] = {}
    #: Gates to re-decide next pass; ``None`` = full traversal (pass 1).
    pending: Optional[set] = None

    timing = None
    if passes > 1 and objective in ("delay-constrained", "fastest"):
        # Delay-aware objectives: watch the working circuit with an
        # incremental timing cache so later passes can also consume
        # timing-dirty gates (imported lazily — repro.incremental
        # imports this module).
        from ..incremental.timing import TimingCache

        timing = TimingCache(result_circuit, tech=model.tech, po_load=po_load)

    for _ in range(passes):
        passes_run += 1
        changed_gates: set = set()

        if pending is None:
            # Pass 1 — the paper's full traversal, propagating net_stats
            # along the way in the "model" flow.
            pass_power_before = 0.0
            power_after = 0.0
            net_stats = (
                dict(precomputed) if precomputed is not None
                else {n: input_stats[n] for n in circuit.inputs}
            )
            for gate in topo:
                pin_stats = _pin_stats(gate, net_stats)
                load = result_circuit.output_load(gate.output, model.tech, po_load)
                evaluations = evaluate_configurations(
                    gate.template, pin_stats, model, load
                )
                _decided.inc()
                by_key = {e.config.key(): e for e in evaluations}
                entry_key = gate.effective_config().key()
                original_eval = by_key[entry_key]
                default_eval = by_key[gate.template.default_config().key()]
                chosen = _choose(objective, gate, evaluations, default_eval,
                                 model, load)
                if chosen.config.key() != entry_key:
                    changed_gates.add(gate.name)
                    # Through the edit API so an attached TimingCache
                    # hears about it; a plain assignment would not.
                    result_circuit.set_config(gate.name, chosen.config)
                else:
                    gate.config = chosen.config
                decisions_by_gate[gate.name] = GateDecision(
                    gate.name, gate.template.name, len(evaluations),
                    chosen, default_eval.power
                )
                pass_power_before += original_eval.power
                power_after += chosen.power
                if precomputed is None:
                    net_stats[gate.output] = model.output_stats(
                        gate.compiled(), pin_stats
                    )
            if power_before is None:
                power_before = pass_power_before
        else:
            # Cone-aware pass: statistics are pass-invariant, so only
            # the worklist — gates whose external load the previous
            # pass changed — can decide differently.  Topological
            # order and live loads reproduce exactly what a full
            # re-traversal would decide (a gate's sinks come later in
            # topological order, so its load still reflects the
            # previous pass when it is re-decided).
            for gate in topo:
                if gate.name not in pending:
                    continue
                pin_stats = _pin_stats(gate, net_stats)
                load = result_circuit.output_load(gate.output, model.tech, po_load)
                evaluations = evaluate_configurations(
                    gate.template, pin_stats, model, load
                )
                _decided.inc()
                by_key = {e.config.key(): e for e in evaluations}
                entry_key = gate.effective_config().key()
                default_eval = by_key[gate.template.default_config().key()]
                chosen = _choose(objective, gate, evaluations, default_eval,
                                 model, load)
                if chosen.config.key() != entry_key:
                    changed_gates.add(gate.name)
                    result_circuit.set_config(gate.name, chosen.config)
                decisions_by_gate[gate.name] = GateDecision(
                    gate.name, gate.template.name, len(evaluations),
                    chosen, default_eval.power
                )

        tracer = _trace.ACTIVE
        if tracer is not None:
            tracer.instant("optimize.pass", number=passes_run,
                           decided=_decided.since(decided_start),
                           changed=len(changed_gates))
        if not changed_gates:
            break
        any_changed = True
        # The next worklist: a re-configured gate changes only its own
        # pin capacitances — the load its fanin drivers see.
        pending = set()
        for name in changed_gates:
            for pred in result_circuit.fanin_drivers(name):
                if pred.template.num_configurations() > 1:
                    pending.add(pred.name)
        if timing is not None:
            # Timing-dirty consumption (delay-aware objectives): every
            # gate whose output arrival this pass actually moved is
            # re-verified next pass.  refresh() returns exactly those
            # nets — cone-sized work, pruned by early cut-off.
            for net in timing.refresh():
                retimed_gate = result_circuit.driver(net)
                if (retimed_gate is not None
                        and retimed_gate.template.num_configurations() > 1):
                    pending.add(retimed_gate.name)
        if not pending:
            break

    if passes > 1 and any_changed:
        # Settled-load accounting: per-gate decision powers were priced
        # against loads that later decisions may have changed; one
        # cheap sweep (no enumeration) reprices the final configuration
        # consistently.  Matches a converged full pass bit-for-bit.
        power_after = 0.0
        for gate in topo:
            report = model.gate_power(
                gate.compiled(), _pin_stats(gate, net_stats),
                result_circuit.output_load(gate.output, model.tech, po_load),
            )
            power_after += report.total

    gates_retimed = 0
    if timing is not None:
        timing.refresh()  # settle any dirt the final pass left behind
        gates_retimed = timing.gates_retimed
        timing.close()

    decisions = [decisions_by_gate[g.name] for g in topo]
    return OptimizeResult(result_circuit, net_stats, decisions,
                          power_before, power_after, passes_run,
                          _decided.since(decided_start), gates_retimed)


def _choose(
    objective: str,
    gate: GateInstance,
    evaluations: List[ConfigEvaluation],
    default_eval: ConfigEvaluation,
    model: GatePowerModel,
    load: float,
) -> ConfigEvaluation:
    """Pick one configuration under ``objective`` (deterministic ties)."""
    template = gate.template
    candidates = evaluations
    if objective == "delay-constrained":
        candidates = _delay_feasible(
            gate, evaluations, default_eval, model.tech, load
        )
    if objective == "worst":
        return min(candidates, key=lambda e: (-e.power, e.config.key()))
    if objective == "fastest":
        return min(
            candidates,
            key=lambda e: (
                gate_worst_delay(
                    template.compile_config(e.config), e.config,
                    model.tech, load,
                ),
                e.config.key(),
            ),
        )
    return min(candidates, key=lambda e: (e.power, e.config.key()))


def _delay_feasible(
    gate: GateInstance,
    evaluations: List[ConfigEvaluation],
    default_eval: ConfigEvaluation,
    tech: TechParams,
    load: float,
) -> List[ConfigEvaluation]:
    """Configurations whose every pin delay is within the default's."""
    compiled_default = gate.template.compile_config(default_eval.config)
    limits = {
        pin: gate_pin_delay(compiled_default, default_eval.config, pin, tech, load)
        for pin in gate.template.pins
    }
    feasible = []
    for evaluation in evaluations:
        compiled = gate.template.compile_config(evaluation.config)
        ok = all(
            gate_pin_delay(compiled, evaluation.config, pin, tech, load)
            <= limits[pin] * (1.0 + 1e-9)
            for pin in gate.template.pins
        )
        if ok:
            feasible.append(evaluation)
    return feasible or [default_eval]


def circuit_power(
    circuit: Circuit,
    input_stats: Mapping[str, SignalStats],
    model: Optional[GatePowerModel] = None,
    po_load: float = DEFAULT_PO_LOAD,
    net_stats: Optional[Mapping[str, SignalStats]] = None,
) -> CircuitPowerReport:
    """Total modelled power of ``circuit`` with its current configurations.

    ``net_stats`` may be supplied to reuse an existing propagation
    (statistics do not depend on the chosen orderings).
    """
    from ..stochastic.density import local_stats

    model = model if model is not None else GatePowerModel()
    if net_stats is None:
        net_stats = local_stats(circuit, input_stats)
    by_gate: Dict[str, GatePowerReport] = {}
    total = 0.0
    for gate in circuit.gates:
        stats = _pin_stats(gate, net_stats)
        load = circuit.output_load(gate.output, model.tech, po_load)
        report = model.gate_power(gate.compiled(), stats, load)
        by_gate[gate.name] = report
        total += report.total
    return CircuitPowerReport(total, by_gate, dict(net_stats))
