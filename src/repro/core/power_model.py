"""The paper's extended power-consumption model of a static CMOS gate (§3.3).

For every node ``n_k`` (internal and output) of a gate configuration the
model computes, from the equilibrium probabilities ``P(x_i)`` and
transition densities ``D(x_i)`` of the gate inputs:

* the node's steady-state probability
  ``P(n_k) = P(H_nk) / (P(H_nk) + P(G_nk))`` (Markov steady state of the
  charge/discharge process, Hossain et al. as cited by the paper);
* the per-input transition count ``T_{nk,xi}`` through the Boolean
  differences of ``H_nk``/``G_nk`` (DESIGN.md §3.2 documents the exact
  reconstruction; at the output node every variant collapses to Najm's
  transition density ``P(∂F/∂x_i)·D(x_i)``);
* the node power ``W_nk = ½·C_nk·Vdd²·Σ_i T_{nk,xi}``.

Three formula variants are provided for the ablation study:

``"conditioned"`` (default)
    Rising/falling events conditioned on the node being in the opposite
    state *and* undriven — exact at the output node, and the most
    faithful reading of the paper's derivation.
``"independent"``
    Drops the conditioning denominators; still exact at the output.
``"output-only"``
    Ignores internal nodes entirely (the prior art the paper improves
    on); transistor reordering is invisible to this variant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from ..gates.capacitance import TechParams, node_capacitance
from ..gates.network import OUT, CompiledGate
from ..stochastic.signal import SignalStats

__all__ = ["GatePowerModel", "GatePowerReport", "NodePowerEntry", "FORMULAS"]

FORMULAS = ("conditioned", "independent", "output-only")

_EPS = 1e-12


@dataclass(frozen=True)
class NodePowerEntry:
    """Per-node results of one gate-power evaluation."""

    node: str
    capacitance: float
    probability: float
    transitions: float
    """Estimated node transitions per time unit (all inputs summed)."""

    power: float
    """``½·C·Vdd²·transitions`` (W when densities are per second)."""


@dataclass(frozen=True)
class GatePowerReport:
    """Breakdown of one gate's estimated power."""

    entries: Tuple[NodePowerEntry, ...]
    tech: TechParams

    @property
    def total(self) -> float:
        return sum(e.power for e in self.entries)

    @property
    def output_power(self) -> float:
        return sum(e.power for e in self.entries if e.node == OUT)

    @property
    def internal_power(self) -> float:
        return sum(e.power for e in self.entries if e.node != OUT)

    def entry(self, node: str) -> NodePowerEntry:
        for e in self.entries:
            if e.node == node:
                return e
        raise KeyError(node)


class GatePowerModel:
    """Evaluate the extended power model on compiled gate configurations."""

    def __init__(self, tech: Optional[TechParams] = None, formula: str = "conditioned"):
        if formula not in FORMULAS:
            raise ValueError(f"unknown formula {formula!r}; choose from {FORMULAS}")
        self.tech = tech if tech is not None else TechParams()
        self.formula = formula

    # ------------------------------------------------------------------
    # Node-level pieces
    # ------------------------------------------------------------------
    def node_probability(self, gate: CompiledGate, node: str,
                         probs: Mapping[str, float]) -> float:
        """Steady-state probability of node ``n_k`` being charged."""
        ph = gate.h[node].probability(probs)
        pg = gate.g[node].probability(probs)
        if ph + pg <= _EPS:
            return 0.0
        return ph / (ph + pg)

    def node_transitions(self, gate: CompiledGate, node: str,
                         stats: Mapping[str, SignalStats]) -> float:
        """``Σ_i T_{nk,xi}`` — expected node transitions per time unit."""
        probs = {pin: stats[pin].probability for pin in gate.inputs}
        ph = gate.h[node].probability(probs)
        pg = gate.g[node].probability(probs)
        if ph + pg <= _EPS:
            return 0.0
        p_node = ph / (ph + pg)
        total = 0.0
        for pin in gate.inputs:
            density = stats[pin].density
            if density == 0.0:
                continue
            p_dh = gate.dh[(node, pin)].probability(probs)
            p_dg = gate.dg[(node, pin)].probability(probs)
            total += density * self._transition_fraction(
                node, p_dh, p_dg, p_node, ph, pg
            )
        return total

    def _transition_fraction(self, node: str, p_dh: float, p_dg: float,
                             p_node: float, ph: float, pg: float) -> float:
        """Expected node transitions per input transition."""
        if self.formula == "output-only":
            if node != OUT:
                return 0.0
            # At the output ∂H = ∂G = ∂F; use the H-side difference.
            return p_dh
        if self.formula == "independent":
            return p_dh * (1.0 - p_node) + p_dg * p_node
        # "conditioned": a toggling H charges the node iff the node is 0,
        # which can only coincide with H = 0 (a driven node tracks its
        # drive), hence the conditional P(n=0 | H=0); dually for G.
        rise = 0.0
        if 1.0 - ph > _EPS:
            rise = 0.5 * p_dh * min(1.0, (1.0 - p_node) / (1.0 - ph))
        fall = 0.0
        if 1.0 - pg > _EPS:
            fall = 0.5 * p_dg * min(1.0, p_node / (1.0 - pg))
        return rise + fall

    # ------------------------------------------------------------------
    # Gate-level power
    # ------------------------------------------------------------------
    def gate_power(self, gate: CompiledGate, stats: Mapping[str, SignalStats],
                   output_load: float = 0.0) -> GatePowerReport:
        """Estimate the power of one gate configuration.

        ``stats`` maps every input pin to its :class:`SignalStats`;
        ``output_load`` is the external capacitance on the output net
        (fanout pins plus any primary-output load).
        """
        missing = [p for p in gate.inputs if p not in stats]
        if missing:
            raise KeyError(f"missing input statistics for pins {missing}")
        probs = {pin: stats[pin].probability for pin in gate.inputs}
        entries = []
        factor = self.tech.switch_energy_factor
        for node in gate.nodes:
            cap = node_capacitance(gate, node, self.tech, load=output_load)
            p_node = self.node_probability(gate, node, probs)
            transitions = self.node_transitions(gate, node, stats)
            entries.append(
                NodePowerEntry(node, cap, p_node, transitions, factor * cap * transitions)
            )
        return GatePowerReport(tuple(entries), self.tech)

    # ------------------------------------------------------------------
    # Output statistics (for circuit-level propagation)
    # ------------------------------------------------------------------
    def output_probability(self, gate: CompiledGate,
                           stats: Mapping[str, SignalStats]) -> float:
        """``P(y)`` under spatially independent inputs."""
        probs = {pin: stats[pin].probability for pin in gate.inputs}
        return gate.output_tt.probability(probs)

    def output_density(self, gate: CompiledGate,
                       stats: Mapping[str, SignalStats]) -> float:
        """Najm's transition density ``D(y) = Σ_i P(∂F/∂x_i)·D(x_i)``."""
        probs = {pin: stats[pin].probability for pin in gate.inputs}
        density = 0.0
        for pin in gate.inputs:
            d = stats[pin].density
            if d:
                density += gate.dh[(OUT, pin)].probability(probs) * d
        return density

    def output_stats(self, gate: CompiledGate,
                     stats: Mapping[str, SignalStats]) -> SignalStats:
        """(P, D) of the gate output — what the optimiser propagates.

        Every configuration of a gate yields the same output statistics
        (the function is unchanged), which is exactly the monotonicity
        property the paper's greedy traversal relies on (§4.2).
        """
        p = self.output_probability(gate, stats)
        d = self.output_density(gate, stats)
        if d > 0.0:
            p = min(1.0 - _EPS, max(_EPS, p))
        elif p not in (0.0, 1.0):
            p = min(1.0, max(0.0, p))
        return SignalStats(p, d)
