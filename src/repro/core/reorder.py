"""Exhaustive exploration of gate configurations (paper §4.3, Figure 4).

Two independent enumerators are provided:

* :func:`enumerate_configurations` — brute force: every permutation of
  the children of every series composition, for the PDN and the PUN
  independently (parallel branches join the same electrical nodes, so
  only series order matters);
* :func:`pivot_search` — the paper's Figure 4 algorithm: recursively
  *pivot* on an internal node (transpose the two series blocks adjacent
  to it), prune already-visited configurations, and recurse on every
  other internal node.  The test suite proves it generates exactly the
  same configuration set as brute force over the whole Table 2 library.

:func:`find_best_configuration` / :func:`find_worst_configuration`
evaluate all configurations under the power model and return the
extremes — the paper evaluates its savings as best-versus-worst.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from ..gates import sptree
from ..gates.library import GateConfig, GateTemplate
from ..gates.sptree import SPTree
from ..stochastic.signal import SignalStats
from .power_model import GatePowerModel, GatePowerReport

__all__ = [
    "enumerate_configurations",
    "pivot_search",
    "evaluate_configurations",
    "find_best_configuration",
    "find_worst_configuration",
    "ConfigEvaluation",
]

#: A pivot handle: which network ('pdn'/'pun') plus the series gap inside it.
_Handle = Tuple[str, Tuple[int, ...], int]


def enumerate_configurations(template: GateTemplate) -> List[GateConfig]:
    """All distinct transistor orderings of a gate, brute force."""
    return template.configurations()


def _handles(config: GateConfig) -> List[_Handle]:
    handles: List[_Handle] = []
    for net_name, tree in (("pdn", config.pdn), ("pun", config.pun)):
        for path, gap in sptree.series_gaps(tree):
            handles.append((net_name, path, gap))
    return handles


def _pivot(config: GateConfig, handle: _Handle) -> GateConfig:
    net_name, path, gap = handle
    if net_name == "pdn":
        return GateConfig(sptree.swap_gap(config.pdn, path, gap), config.pun)
    return GateConfig(config.pdn, sptree.swap_gap(config.pun, path, gap))


def pivot_search(template_or_config, max_configs: Optional[int] = None) -> List[GateConfig]:
    """FIND_ALL_REORDERINGS of the paper's Figure 4.

    Starting from the gate's current configuration, repeatedly pivot on
    internal nodes; a pivot transposes the two series blocks adjacent to
    the node.  Already-visited configurations prune the recursion, and
    the node just pivoted on is skipped in the recursive call (the
    paper's "except the current one" optimisation).  Returns
    configurations in discovery order, starting configuration first.
    """
    if isinstance(template_or_config, GateTemplate):
        start = template_or_config.default_config()
    else:
        start = template_or_config
    visited: Dict[tuple, GateConfig] = {start.key(): start}
    order: List[GateConfig] = [start]

    def search(config: GateConfig, exclude: Optional[int]) -> None:
        handles = _handles(config)
        for index, handle in enumerate(handles):
            if max_configs is not None and len(order) >= max_configs:
                return
            if index == exclude:
                continue
            candidate = _pivot(config, handle)
            key = candidate.key()
            if key in visited:
                continue
            visited[key] = candidate
            order.append(candidate)
            search(candidate, index)

    search(start, None)
    return order


@dataclass(frozen=True)
class ConfigEvaluation:
    """A configuration together with its modelled power."""

    config: GateConfig
    power: float
    report: GatePowerReport


def evaluate_configurations(
    template: GateTemplate,
    stats: Mapping[str, SignalStats],
    model: GatePowerModel,
    output_load: float = 0.0,
    configs: Optional[List[GateConfig]] = None,
) -> List[ConfigEvaluation]:
    """Model power of every configuration; deterministic order."""
    if configs is None:
        configs = template.configurations()
    evaluations = []
    for config in configs:
        compiled = template.compile_config(config)
        report = model.gate_power(compiled, stats, output_load)
        evaluations.append(ConfigEvaluation(config, report.total, report))
    return evaluations


def _extreme(
    template: GateTemplate,
    stats: Mapping[str, SignalStats],
    model: GatePowerModel,
    output_load: float,
    key: Callable[[ConfigEvaluation], tuple],
) -> ConfigEvaluation:
    evaluations = evaluate_configurations(template, stats, model, output_load)
    # Tie-break on the configuration key for run-to-run reproducibility.
    return min(evaluations, key=key)


def find_best_configuration(
    template: GateTemplate,
    stats: Mapping[str, SignalStats],
    model: GatePowerModel,
    output_load: float = 0.0,
) -> ConfigEvaluation:
    """The minimum-power ordering (FIND_BEST_REORDERING of Figure 3)."""
    return _extreme(
        template, stats, model, output_load, lambda e: (e.power, e.config.key())
    )


def find_worst_configuration(
    template: GateTemplate,
    stats: Mapping[str, SignalStats],
    model: GatePowerModel,
    output_load: float = 0.0,
) -> ConfigEvaluation:
    """The maximum-power ordering (the paper's pessimal reference)."""
    return _extreme(
        template, stats, model, output_load, lambda e: (-e.power, e.config.key())
    )
