#!/usr/bin/env python
"""Quickstart: build a small circuit, reorder it for low power.

Covers the whole public API in ~60 lines:

1. build a mapped netlist by hand (or see ``full_flow.py`` for BLIF +
   technology mapping),
2. describe the input activity with (probability, density) pairs,
3. run the paper's optimisation algorithm,
4. compare the modelled power and the switch-level simulation of the
   best and worst transistor orderings.

Run:  python examples/quickstart.py
"""

from repro.circuit import Circuit
from repro.core import GatePowerModel, optimize_circuit
from repro.gates import default_library
from repro.sim import SwitchLevelSimulator
from repro.sim.stimulus import Stimulus
from repro.stochastic import SignalStats, markov_waveform

import numpy as np


def build_circuit() -> Circuit:
    """y = !((a·b + c) · d) over the Table 2 library."""
    circuit = Circuit("quickstart", default_library())
    for net in ("a", "b", "c", "d"):
        circuit.add_input(net)
    circuit.add_output("y")
    circuit.add_gate("g0", "aoi21", {"a": "a", "b": "b", "c": "c"}, "n0")
    circuit.add_gate("g1", "inv", {"a": "n0"}, "n1")
    circuit.add_gate("g2", "nand2", {"a": "n1", "b": "d"}, "y")
    circuit.validate()
    return circuit


def main() -> None:
    circuit = build_circuit()

    # Input statistics: equal probabilities, very unequal activities.
    stats = {
        "a": SignalStats(0.5, 1.0e4),
        "b": SignalStats(0.5, 5.0e4),
        "c": SignalStats(0.5, 8.0e5),   # a hot signal
        "d": SignalStats(0.5, 2.0e4),
    }

    model = GatePowerModel()
    best = optimize_circuit(circuit, stats, model, objective="best")
    worst = optimize_circuit(circuit, stats, model, objective="worst")

    print(f"circuit: {circuit}")
    print(f"model power, best ordering : {best.power_after * 1e9:8.3f} nW")
    print(f"model power, worst ordering: {worst.power_after * 1e9:8.3f} nW")
    saving = 1.0 - best.power_after / worst.power_after
    print(f"modelled best-vs-worst saving: {saving:.1%}")

    for decision in best.decisions:
        print(f"  {decision.gate_name} ({decision.template_name}): "
              f"{decision.num_configurations} configurations, chose "
              f"{decision.chosen.config}")

    # Validate with the switch-level simulator on a sampled waveform.
    rng = np.random.default_rng(7)
    duration = 2.0e-3
    waveforms = {n: markov_waveform(stats[n], duration, rng) for n in stats}
    stimulus = Stimulus(stats, waveforms, duration)
    power_best = SwitchLevelSimulator(best.circuit).run(stimulus).power
    power_worst = SwitchLevelSimulator(worst.circuit).run(stimulus).power
    print(f"simulated power, best : {power_best * 1e9:8.3f} nW")
    print(f"simulated power, worst: {power_worst * 1e9:8.3f} nW")
    print(f"simulated saving: {1.0 - power_best / power_worst:.1%}")


if __name__ == "__main__":
    main()
