#!/usr/bin/env python
"""The paper's §1.1 motivation example (Figure 1 / Table 1b).

The gate ``y = (a1 + a2)·b`` has four transistor orderings.  With equal
equilibrium probabilities (0.5) but different transition densities, the
*best* ordering changes: a configuration that saves ~20 % in one
activity scenario wastes power in another.  This is why the power model
must include switching activity, not just probabilities.

Run:  python examples/motivation_gate.py
"""

from repro.core import GatePowerModel
from repro.core.reorder import evaluate_configurations, pivot_search
from repro.gates import default_library
from repro.stochastic import SignalStats

#: (label, densities for pins a=a1, b=a2, c=b) — the paper's two cases.
CASES = [
    ("case 1 (Da1=10K, Da2=100K, Db=1M)", (1.0e4, 1.0e5, 1.0e6)),
    ("case 2 (Da1=1M, Da2=100K, Db=10K)", (1.0e6, 1.0e5, 1.0e4)),
]


def main() -> None:
    library = default_library()
    template = library["oai21"]  # pull-down (a | b) & c  ~  (a1 + a2)·b
    model = GatePowerModel()

    configs = pivot_search(template)  # the paper's Figure 4/5 search
    print(f"gate {template}: {len(configs)} transistor orderings "
          f"(paper Figure 5 finds 4)\n")

    for label, densities in CASES:
        stats = {
            pin: SignalStats(0.5, d)
            for pin, d in zip(template.pins, densities)
        }
        evaluations = evaluate_configurations(
            template, stats, model, output_load=10e-15, configs=configs
        )
        worst = max(e.power for e in evaluations)
        best = min(evaluations, key=lambda e: e.power)
        print(label)
        for e in evaluations:
            marker = "  <-- best" if e is best else ""
            print(f"  {str(e.config):45s} {e.power / worst:5.2f}{marker}")
        print(f"  best saves {1.0 - best.power / worst:.1%} vs the worst "
              f"ordering (paper: 19% / 17%)\n")


if __name__ == "__main__":
    main()
