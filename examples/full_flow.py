#!/usr/bin/env python
"""The complete paper flow on one benchmark circuit.

BLIF in -> technology mapping onto the Table 2 library -> transistor
reordering for low power (Scenario A statistics) -> validation by
switch-level simulation -> delay check with static timing analysis.
This mirrors exactly what ``repro.analysis.run_table3_case`` does for
every Table 3 row.

Run:  python examples/full_flow.py [circuit-name]
"""

import sys

from repro.analysis import format_percent, format_si
from repro.bench import benchmark_suite, get_case
from repro.core import GatePowerModel, circuit_power, optimize_circuit
from repro.sim import ScenarioA, SwitchLevelSimulator, check_equivalence
from repro.synth import map_circuit
from repro.timing import circuit_delay


def main(name: str = "rca8") -> None:
    case = get_case(name)
    network = case.network()
    print(f"benchmark      : {case.name} — {case.description}")
    print(f"logic network  : {len(network)} nodes, "
          f"{len(network.inputs)} inputs, {len(network.outputs)} outputs")

    # --- technology mapping ------------------------------------------------
    circuit = map_circuit(network)
    assert check_equivalence(network, circuit), "mapping broke the function!"
    print(f"mapped netlist : {len(circuit)} gates "
          f"({circuit.transistor_count()} transistors)")
    print(f"gate mix       : {circuit.gate_count_by_template()}")

    # --- input statistics (Scenario A) -------------------------------------
    scenario = ScenarioA(seed=42)
    stats = scenario.input_stats(circuit.inputs)

    # --- optimisation -------------------------------------------------------
    model = GatePowerModel()
    best = optimize_circuit(circuit, stats, model, objective="best")
    worst = optimize_circuit(circuit, stats, model, objective="worst")
    improved = sum(1 for d in best.decisions if d.saving_vs_default > 1e-12)
    print(f"reordered gates: {improved} of {len(best.decisions)} "
          f"improve on the as-mapped ordering")
    print(f"model power    : best {format_si(best.power_after, 'W')}, "
          f"worst {format_si(worst.power_after, 'W')} "
          f"(M = {format_percent(1 - best.power_after / worst.power_after)}%)")

    # --- switch-level validation -------------------------------------------
    mean_density = sum(s.density for s in stats.values()) / len(stats)
    stimulus = scenario.generate(circuit.inputs, duration=150.0 / mean_density)
    sim_best = SwitchLevelSimulator(best.circuit).run(stimulus)
    sim_worst = SwitchLevelSimulator(worst.circuit).run(stimulus)
    s = 1.0 - sim_best.power / sim_worst.power
    print(f"simulated power: best {format_si(sim_best.power, 'W')}, "
          f"worst {format_si(sim_worst.power, 'W')} (S = {format_percent(s)}%)")

    # --- timing -------------------------------------------------------------
    d0 = circuit_delay(circuit)
    d1 = circuit_delay(best.circuit)
    print(f"delay          : {format_si(d0, 's')} -> {format_si(d1, 's')} "
          f"(D = {format_percent((d1 - d0) / d0)}%)")

    # --- model accuracy ------------------------------------------------------
    report = circuit_power(best.circuit, stats, model)
    print(f"model/sim ratio: {report.total / sim_best.power:.2f} "
          f"(the paper notes the model overestimates by an offset)")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "rca8")
