#!/usr/bin/env python
"""Carry-chain activity in a ripple-carry adder (paper §1.1).

All primary inputs of the adder have equilibrium probability 0.5 — so a
probability-only power model sees nothing to optimise.  The *transition
density* of the carry chain, however, grows towards the most
significant bits because useless transitions are generated and
propagated.  The example shows the modelled densities, verifies them
against switch-level simulation, and then optimises the adder.

Run:  python examples/adder_activity.py
"""

from repro.analysis import format_table, run_adder_activity
from repro.bench import ripple_carry_adder
from repro.core import optimize_circuit
from repro.sim import ScenarioB, SwitchLevelSimulator
from repro.synth import map_circuit


def main() -> None:
    width = 8

    # 1. Model: propagated transition densities along the carry chain.
    profile = run_adder_activity(width)
    rows = [(name, f"{d:.3f}") for name, d in profile.items()]
    print(format_table(("signal", "D (trans/cycle)"), rows,
                       title=f"{width}-bit ripple-carry adder, model"))
    print()

    # 2. Simulation: measure the same densities at switch level.
    network = ripple_carry_adder(width, expose_carries=True)
    circuit = map_circuit(network)
    scenario = ScenarioB(seed=5)
    stimulus = scenario.generate(circuit.inputs, cycles=400)
    # Delay-aware simulation: the carry-chain excess over 0.5/cycle is
    # useless transitions from the rippling carry, so path delays matter.
    report = SwitchLevelSimulator(circuit, delay_mode="elmore").run(stimulus)
    rows = []
    for i in range(width - 1):
        net = f"c{i}"
        measured = report.measured_stats(net)
        rows.append((net, f"{measured.density * scenario.clock_period:.3f}",
                     f"{measured.probability:.3f}"))
    print(format_table(("carry", "D (trans/cycle)", "P"), rows,
                       title="switch-level measurement (Elmore delays)"))
    print()

    # 3. Optimise: the skewed carry activity is what reordering exploits.
    stats = scenario.input_stats(circuit.inputs)
    best = optimize_circuit(circuit, stats, objective="best")
    worst = optimize_circuit(circuit, stats, objective="worst")
    saving = 1.0 - best.power_after / worst.power_after
    print(f"mapped gates: {len(circuit)}")
    print(f"modelled best-vs-worst power saving: {saving:.1%}")


if __name__ == "__main__":
    main()
