"""Acceptance benchmark: dirty-cone re-propagation vs full recompute.

The claim under test (this PR's tentpole): after a single-gate edit,
:class:`repro.incremental.StatsCache` re-propagates only the edited
gate's transitive fanout cone, making the refresh at least 10x faster
than recomputing the whole circuit from scratch — on the largest suite
circuit, for both the analytic and the sampled backend — while
returning bit-identical statistics.

Run with::

    pytest -m bench benchmarks/bench_incremental.py -s

(the ``bench`` marker is deselected by default so tier-1 stays fast).
Environment knobs: ``REPRO_INCR_BENCH_EDITS`` (edits per backend,
default 40), ``REPRO_INCR_BENCH_OUT`` (write the canonical JSON
artifact there, ``repro bench`` style).
"""

import os
import time

import numpy as np
import pytest

pytestmark = pytest.mark.bench

from repro.bench.runner import SCHEMA_VERSION, environment_meta, \
    write_artifact
from repro.bench.suite import benchmark_suite, get_case
from repro.incremental import SampledBackend, StatsCache
from repro.incremental.backends import AnalyticBackend
from repro.sim.stimulus import ScenarioA
from repro.stochastic.density import local_stats
from repro.synth.mapper import map_circuit

EDITS = int(os.environ.get("REPRO_INCR_BENCH_EDITS", "40"))
REQUIRED_SPEEDUP = 10.0
LANES = 256
STEPS = 32


def largest_case_name() -> str:
    sizes = [
        (len(map_circuit(case.network())), case.name)
        for case in benchmark_suite("full")
    ]
    return max(sizes)[1]


def _random_single_gate_edits(circuit, count, seed=0):
    """(gate_name, config) reorder edits over random multi-config gates."""
    rng = np.random.default_rng(seed)
    gates = [g for g in circuit.gates if g.template.num_configurations() > 1]
    edits = []
    for _ in range(count):
        gate = gates[int(rng.integers(len(gates)))]
        configurations = gate.template.configurations()
        edits.append((gate.name, configurations[int(rng.integers(len(configurations)))]))
    return edits


def _measure(circuit, input_stats, edits, cache, full_recompute):
    """Per-edit incremental refresh vs from-scratch recompute times."""
    incremental_s = 0.0
    full_s = 0.0
    cones = []
    for gate_name, config in edits:
        circuit.set_config(gate_name, config)
        cones.append(len(cache.dirty_gates))
        start = time.perf_counter()
        cache.refresh()
        incremental_s += time.perf_counter() - start
        start = time.perf_counter()
        reference = full_recompute()
        full_s += time.perf_counter() - start
        assert cache.stats() == reference, f"divergence after editing {gate_name}"
    return incremental_s, full_s, cones


@pytest.fixture(scope="module")
def setting():
    name = largest_case_name()
    circuit = map_circuit(get_case(name).network())
    input_stats = ScenarioA(seed=0).input_stats(circuit.inputs)
    return name, circuit, input_stats


def _report(label, name, circuit, edits, incremental_s, full_s, cones):
    speedup = full_s / incremental_s
    print(f"\n{name}: {len(circuit)} gates, {len(edits)} single-gate edits "
          f"[{label}]")
    print(f"  full recompute : {full_s:8.3f}s")
    print(f"  dirty-cone     : {incremental_s:8.3f}s "
          f"(mean cone {sum(cones) / len(cones):.1f} gates)")
    print(f"  speedup: {speedup:.1f}x (required >= {REQUIRED_SPEEDUP:.0f}x)")
    return {
        "backend": label,
        "edits": len(edits),
        "mean_cone_gates": sum(cones) / len(cones),
        "full_s": full_s,
        "incremental_s": incremental_s,
        "speedup": speedup,
    }


RESULTS = []


def test_analytic_incremental_speedup(setting):
    name, circuit, input_stats = setting
    circuit = circuit.copy()
    edits = _random_single_gate_edits(circuit, EDITS, seed=1)
    cache = StatsCache(circuit, input_stats, backend=AnalyticBackend())
    incremental_s, full_s, cones = _measure(
        circuit, input_stats, edits, cache,
        lambda: local_stats(circuit, input_stats),
    )
    cache.close()
    row = _report("analytic", name, circuit, edits, incremental_s, full_s, cones)
    RESULTS.append((name, len(circuit), row))
    assert row["speedup"] >= REQUIRED_SPEEDUP


def test_sampled_incremental_speedup(setting):
    name, circuit, input_stats = setting
    circuit = circuit.copy()
    edits = _random_single_gate_edits(circuit, EDITS, seed=2)
    cache = StatsCache(circuit, input_stats, backend="sampled",
                       lanes=LANES, steps=STEPS, seed=0)
    dt = cache.backend.dt  # frozen at full(); reuse for the reference runs

    def full_recompute():
        return SampledBackend(lanes=LANES, steps=STEPS, dt=dt,
                              seed=0).full(circuit, input_stats)

    incremental_s, full_s, cones = _measure(
        circuit, input_stats, edits, cache, full_recompute,
    )
    cache.close()
    row = _report("sampled", name, circuit, edits, incremental_s, full_s, cones)
    RESULTS.append((name, len(circuit), row))
    assert row["speedup"] >= REQUIRED_SPEEDUP


def test_write_artifact():
    """Emit the canonical JSON artifact when REPRO_INCR_BENCH_OUT is set."""
    out_path = os.environ.get("REPRO_INCR_BENCH_OUT")
    if not RESULTS:
        pytest.skip("speedup tests did not run")
    if not out_path:
        pytest.skip("set REPRO_INCR_BENCH_OUT to write the artifact")
    name, gates, _ = RESULTS[0]
    artifact = {
        "schema": SCHEMA_VERSION,
        "bench": {
            "name": "incremental",
            "circuit": name,
            "gates": gates,
            "required_speedup": REQUIRED_SPEEDUP,
        },
        "meta": environment_meta(),
        "results": [row for _, _, row in RESULTS],
    }
    write_artifact(artifact, out_path)
    print(f"\nwrote JSON artifact to {out_path}")
