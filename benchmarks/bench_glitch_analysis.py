"""Companion to §1 — the useless-transition claim.

"The power consumption of useless signal transitions ... accounts for a
large fraction of the overall dynamic power consumption of the
circuit."  This bench quantifies that fraction on latched (Scenario B)
workloads by diffing the delay-aware and settled simulations of each
circuit.
"""

import pytest

from repro.analysis.glitches import analyze_glitches
from repro.analysis.report import format_percent, format_table
from repro.analysis.stats import mean
from repro.bench.suite import benchmark_suite
from repro.sim.stimulus import ScenarioB
from repro.synth.mapper import map_circuit

CYCLES = 120


@pytest.fixture(scope="module")
def glitch_rows():
    rows = []
    for case in benchmark_suite("quick"):
        network = case.network()
        circuit = map_circuit(network)
        stimulus = ScenarioB(seed=6).generate(circuit.inputs, cycles=CYCLES)
        report = analyze_glitches(circuit, stimulus)
        rows.append((case.name, len(circuit),
                     report.useless_transition_fraction,
                     report.useless_energy_fraction))
    return rows


def test_useless_transition_fraction(benchmark, glitch_rows):
    rows = benchmark.pedantic(lambda: glitch_rows, rounds=1, iterations=1)
    print()
    print(format_table(
        ("Circuit", "G", "useless trans %", "useless energy %"),
        [(n, g, format_percent(t), format_percent(e)) for n, g, t, e in rows],
        title="Useless transitions under Scenario B",
        footer=("average", "",
                format_percent(mean([t for _, _, t, _ in rows])),
                format_percent(mean([e for _, _, _, e in rows]))),
    ))
    fractions = [t for _, _, t, _ in rows]
    energies = [e for _, _, _, e in rows]
    # Multi-level circuits glitch; the fraction is material on average.
    assert mean(fractions) > 0.02
    assert mean(energies) >= 0.0
    # Deeper arithmetic circuits (ripple carry) glitch hardest.
    by_name = {n: t for n, _, t, _ in rows}
    assert by_name["rca4"] > by_name["c17"] * 0.5
