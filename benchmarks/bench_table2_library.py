"""E2 — paper Table 2: the gate library and its configuration counts.

Regenerates the (gate, #configurations) table by running the exhaustive
reordering enumeration on every library cell and checks it against the
counts printed in the paper.
"""

from repro.analysis.experiments import run_table2
from repro.analysis.report import format_table

#: Counts as printed in the paper's Table 2 (nand4/nor2 are the obvious
#: family companions; the paper's scan garbles a few rows — values here
#: follow the series-permutation combinatorics the paper describes).
PAPER_TABLE2 = {
    "inv": 1,
    "nand2": 2,
    "nand3": 6,
    "nand4": 24,
    "nor2": 2,
    "nor3": 6,
    "nor4": 24,
    "aoi21": 4,
    "aoi22": 8,
    "aoi211": 12,
    "aoi221": 24,
    "aoi222": 48,
    "oai21": 4,
    "oai22": 8,
    "oai211": 12,
    "oai221": 24,
    "oai222": 48,
}


#: Instance letters visible in the paper's Table 2 row labels.
PAPER_INSTANCES = {
    "aoi21": 2, "oai21": 2,          # gate[A,B] (discussed in §5.1)
    "aoi211": 3, "oai211": 3,        # gate[A,B,C]
    "aoi221": 3, "oai221": 3,        # gate[A,B,C]
}


def test_table2_library(benchmark):
    rows = benchmark.pedantic(run_table2, rounds=1, iterations=1)
    print()
    print(format_table(("Gate", "#C"), rows, title="Table 2 - gate library"))
    assert dict(rows) == PAPER_TABLE2
    # 17 cells, total 273 configurations across the library.
    assert len(rows) == 17
    assert sum(c for _, c in rows) == sum(PAPER_TABLE2.values())


def test_table2_instance_labels(benchmark):
    """The paper's gate[A,B,...] layout-instance notation (§5.1)."""
    from repro.analysis.experiments import run_table2_instances

    rows = benchmark.pedantic(run_table2_instances, rounds=1, iterations=1)
    print()
    print(format_table(
        ("Gate", "Instances", "#C"),
        [(g, n, c) for g, n, c in rows],
        title="Table 2 with layout instances",
    ))
    by_gate = {g: n for g, n, _ in rows}
    for gate, count in PAPER_INSTANCES.items():
        labels = by_gate[gate].split("[", 1)[1].rstrip("]").split(",")
        assert len(labels) == count, gate
    # NAND/NOR families need no extra instances: input reordering covers
    # every configuration with a single layout.
    for gate in ("nand2", "nand3", "nand4", "nor2", "nor3", "nor4", "inv"):
        assert "[" not in by_gate[gate], gate
