"""A3 — ablation: local (independence) vs exact (BDD) statistics engines.

The paper propagates probabilities and densities with gate-local
formulas that assume spatially independent fanins — exact on trees,
approximate under reconvergent fanout.  The exact engine builds global
ROBDDs of the primary inputs.  This bench quantifies the local engine's
error on suite circuits small enough for BDDs, and verifies exactness
on a fanout-free tree.
"""

import pytest

from repro.analysis.report import format_table
from repro.bench.generators import parity_tree, ripple_carry_adder
from repro.bench.suite import get_case
from repro.sim.stimulus import ScenarioA
from repro.stochastic.density import exact_stats, local_stats
from repro.synth.mapper import map_circuit

CASES = ["c17", "fa1", "maj3", "xor5", "rca4"]


@pytest.fixture(scope="module")
def comparisons():
    results = []
    for name in CASES:
        network = get_case(name).network()
        circuit = map_circuit(network)
        stats = ScenarioA(seed=4).input_stats(circuit.inputs)
        local = local_stats(circuit, stats)
        exact = exact_stats(circuit, stats)
        p_err = max(
            abs(local[n].probability - exact[n].probability)
            for n in circuit.nets()
        )
        d_rel = max(
            abs(local[n].density - exact[n].density)
            / max(exact[n].density, 1.0)
            for n in circuit.nets()
        )
        results.append((name, len(circuit), p_err, d_rel))
    return results


def test_ablation_probability_engines(benchmark, comparisons):
    rows = benchmark.pedantic(lambda: comparisons, rounds=1, iterations=1)
    print()
    print(format_table(
        ("Circuit", "G", "max |dP|", "max rel dD"),
        [(n, g, f"{p:.4f}", f"{d:.4f}") for n, g, p, d in rows],
        title="A3 - local vs exact statistics",
    ))
    for name, gates, p_err, d_rel in rows:
        # The independence approximation is decent on these circuits...
        assert p_err < 0.35, (name, p_err)
        # ...and both engines stay in the same activity regime.
        assert d_rel < 1.5, (name, d_rel)


def test_local_equals_exact_on_tree(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    """Fanout-free circuit: the local propagator is exact."""
    circuit = map_circuit(parity_tree(4))
    # Keep only the cone of the single output; a tree mapping of XORs
    # may still share nets, so check probabilities where fanout is 1.
    stats = ScenarioA(seed=9).input_stats(circuit.inputs)
    local = local_stats(circuit, stats)
    exact = exact_stats(circuit, stats)
    for net in circuit.nets():
        if len(circuit.fanout(net)) <= 1 and net in circuit.inputs:
            assert local[net].probability == pytest.approx(
                exact[net].probability, abs=1e-9
            )


def test_exact_engine_handles_reconvergence(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    """x XOR x reconvergence: exact sees correlation, local does not."""
    from repro.circuit.netlist import Circuit
    from repro.gates.library import default_library
    from repro.stochastic.signal import SignalStats

    lib = default_library()
    c = Circuit("reconv", lib)
    c.add_input("x")
    c.add_output("y")
    # y = nand(x, x) = !x: reconvergent fanout of x onto one gate.
    c.add_gate("g0", "nand2", {"a": "x", "b": "x"}, "y")
    stats = {"x": SignalStats(0.5, 100.0)}
    exact = exact_stats(c, stats)
    local = local_stats(c, stats)
    # Exact: y = !x, so P = 0.5 and every x transition toggles y.
    assert exact["y"].probability == pytest.approx(0.5)
    assert exact["y"].density == pytest.approx(100.0)
    # Local (independence) gets P wrong: P(!(x&x)) -> 1 - 0.25 = 0.75.
    assert local["y"].probability == pytest.approx(0.75)
