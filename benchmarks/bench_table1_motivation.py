"""E1 — paper Table 1(b) / Figure 1: the motivation gate.

Regenerates the relative power of the four configurations of
``y = (a1 + a2)·b`` under the two activity cases and checks the
paper's two claims: the optimum *moves* between cases, and choosing
the right ordering saves on the order of 10-20 %.
"""

import pytest

from repro.analysis.experiments import run_table1
from repro.analysis.report import format_percent, format_table


def _print_rows(rows):
    table = []
    for row in rows:
        table.append((
            f"case {row.case}",
            " ".join(f"{p:.2f}" for p in row.relative_powers),
            f"#{row.best_index}",
            format_percent(row.reduction_vs_worst),
        ))
    print()
    print(format_table(
        ("Case", "relative power per config", "best", "saving%"),
        table, title="Table 1(b) - motivation gate y=(a1+a2)b",
    ))


def test_table1_motivation(benchmark):
    rows = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    _print_rows(rows)
    case1, case2 = rows

    # Four configurations exist (Figure 1a).
    assert len(case1.relative_powers) == 4
    # The optimum depends on the activity profile (the paper's point).
    assert case1.best_index != case2.best_index
    # Savings are in the paper's ballpark (19% and 17%): demand 5%..40%.
    assert 0.05 <= case1.reduction_vs_worst <= 0.40
    assert 0.05 <= case2.reduction_vs_worst <= 0.40
    # Relative powers are normalised to the worst configuration.
    assert max(case1.relative_powers) == pytest.approx(1.0)
    assert max(case2.relative_powers) == pytest.approx(1.0)
