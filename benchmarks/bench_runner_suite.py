"""E4 via the parallel runner: the Table-3 sweep as a JSON artifact.

Exercises the full ``repro.bench.runner`` path — fan the suite out over
worker processes, write the canonical JSON artifact, read it back — and
re-asserts the paper's shape claims from the artifact alone, proving
the JSON carries everything downstream analyses need.

Run with::

    pytest -m bench benchmarks/bench_runner_suite.py

(the ``bench`` marker is deselected by default so these sweeps never
slow tier-1 down).  Environment knobs: ``REPRO_BENCH_SUBSET``
(``quick``/``full``, default quick), ``REPRO_BENCH_JOBS`` (default 2).
"""

import os

import pytest

pytestmark = pytest.mark.bench

from repro.analysis.report import format_percent, format_table
from repro.analysis.stats import mean
from repro.bench.runner import load_artifact, run_suite
from repro.bench.suite import benchmark_suite

SUBSET = os.environ.get("REPRO_BENCH_SUBSET", "quick")
JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "2"))


@pytest.fixture(scope="module")
def artifact(tmp_path_factory):
    path = tmp_path_factory.mktemp("bench") / f"table3_{SUBSET}.json"
    run_suite(subset=SUBSET, scenarios=("A", "B"), jobs=JOBS, seed=0,
              out_path=str(path))
    # Everything below consumes the serialised artifact, not the
    # in-memory result — the JSON file is the interface under test.
    return load_artifact(str(path))


def _scenario_rows(artifact, scenario):
    return [r for r in artifact["results"] if r["scenario"] == scenario]


def test_artifact_covers_the_suite(artifact):
    expected = [case.name for case in benchmark_suite(SUBSET)]
    assert artifact["suite"]["cases"] == expected
    for scenario in ("A", "B"):
        assert [r["circuit"] for r in _scenario_rows(artifact, scenario)] == expected


def test_artifact_reproduces_table3_shape_claims(artifact):
    rows_a = _scenario_rows(artifact, "A")
    rows_b = _scenario_rows(artifact, "B")
    for scenario, rows in (("A", rows_a), ("B", rows_b)):
        table = [
            (r["circuit"], r["gates"], format_percent(r["model_reduction"]),
             format_percent(r["sim_reduction"]),
             format_percent(r["delay_increase"]), f"{r['elapsed_s']:.2f}s")
            for r in rows
        ]
        print()
        print(format_table(("Circuit", "G", "M%", "S%", "D%", "t"), table,
                           title=f"runner artifact - scenario {scenario} "
                                 f"({SUBSET}, jobs={JOBS})"))
    avg_sim_a = mean([r["sim_reduction"] for r in rows_a])
    avg_sim_b = mean([r["sim_reduction"] for r in rows_b])
    avg_delay = mean([r["delay_increase"] for r in rows_a + rows_b])
    # Paper §5: scenario A around 12 % simulated savings, scenario B
    # clearly below it, delay impact small (same bounds as E4).
    assert 0.04 <= avg_sim_a <= 0.25
    assert avg_sim_b < avg_sim_a
    assert abs(avg_delay) <= 0.15


def test_artifact_timings_present(artifact):
    assert artifact["elapsed_s"] > 0.0
    assert all(r["elapsed_s"] > 0.0 for r in artifact["results"])
    assert artifact["jobs"] == JOBS
