"""Acceptance benchmark: incremental timing vs full STA per edit.

The claim under test (this PR's tentpole): the
:class:`repro.incremental.timing.TimingCache` re-propagates arrival
times only through the timing-dirty cone (edited gate + fanout + fanin
drivers, pruned by early cut-off), making

* a per-edit delay refresh at least **10x faster** than a from-scratch
  :func:`repro.timing.sta.analyze_timing` run, and
* a cone-priced ``power-delay`` search at least **10x cheaper in gate
  arrival computations** than the pre-TimingCache behaviour (a full
  STA per candidate trial),

on the largest suite circuit — while staying bit-identical to batch
STA, with byte-stable canonical JSON artifacts.

Run with::

    pytest -m bench benchmarks/bench_incremental_timing.py -s

(the ``bench`` marker is deselected by default so tier-1 stays fast).
Environment knobs: ``REPRO_TIMING_BENCH_EDITS`` (edits for the refresh
comparison, default 60), ``REPRO_TIMING_BENCH_OUT`` (write the
canonical JSON artifact there, ``repro bench`` style).
"""

import os
import time

import numpy as np
import pytest

pytestmark = pytest.mark.bench

from repro.bench.runner import (
    SCHEMA_VERSION,
    environment_meta,
    dumps_artifact,
    strip_timing,
    write_artifact,
)
from repro.bench.suite import benchmark_suite, get_case
from repro.incremental import TimingCache, search_circuit
from repro.sim.stimulus import ScenarioA
from repro.synth.mapper import map_circuit
from repro.timing.sta import analyze_timing

EDITS = int(os.environ.get("REPRO_TIMING_BENCH_EDITS", "60"))
REQUIRED_SPEEDUP = 10.0


def largest_case_name() -> str:
    sizes = [
        (len(map_circuit(case.network())), case.name)
        for case in benchmark_suite("full")
    ]
    return max(sizes)[1]


@pytest.fixture(scope="module")
def setting():
    name = largest_case_name()
    circuit = map_circuit(get_case(name).network())
    input_stats = ScenarioA(seed=0).input_stats(circuit.inputs)
    return name, circuit, input_stats


def _random_single_gate_edits(circuit, count, seed=0):
    """(gate_name, config) reorder edits over random multi-config gates."""
    rng = np.random.default_rng(seed)
    gates = [g for g in circuit.gates if g.template.num_configurations() > 1]
    edits = []
    for _ in range(count):
        gate = gates[int(rng.integers(len(gates)))]
        configurations = gate.template.configurations()
        edits.append(
            (gate.name, configurations[int(rng.integers(len(configurations)))])
        )
    return edits


RESULTS = []


def test_per_edit_refresh_speedup(setting):
    name, circuit, _ = setting
    work = circuit.copy()
    edits = _random_single_gate_edits(work, EDITS, seed=3)
    incremental_s = 0.0
    full_s = 0.0
    retimed_before = 0
    with TimingCache(work) as tcache:
        tcache.delay()  # settle the initial sweep outside the timed loop
        for gate_name, config in edits:
            work.set_config(gate_name, config)
            start = time.perf_counter()
            delay = tcache.delay()
            incremental_s += time.perf_counter() - start
            start = time.perf_counter()
            reference = analyze_timing(work)
            full_s += time.perf_counter() - start
            assert tcache.arrivals() == reference.arrivals, \
                f"divergence after editing {gate_name}"
            assert delay == reference.delay
            assert tcache.critical_path() == reference.critical_path
        retimed = tcache.gates_retimed - retimed_before

    speedup = full_s / incremental_s
    print(f"\n{name}: {len(work)} gates, {len(edits)} single-gate edits")
    print(f"  full STA       : {full_s:8.3f}s")
    print(f"  dirty-cone     : {incremental_s:8.3f}s "
          f"(mean {retimed / len(edits):.1f} arrivals/edit vs "
          f"{len(work)} for full STA)")
    print(f"  speedup: {speedup:.1f}x (required >= {REQUIRED_SPEEDUP:.0f}x)")
    RESULTS.append({
        "mode": "per-edit-refresh",
        "circuit": name,
        "gates": len(work),
        "edits": len(edits),
        "mean_retimed_per_edit": retimed / len(edits),
        "full_s": full_s,
        "incremental_s": incremental_s,
        "speedup": speedup,
    })
    assert speedup >= REQUIRED_SPEEDUP


def test_power_delay_search_trial_pricing(setting):
    name, circuit, input_stats = setting
    gates = len(circuit)

    start = time.perf_counter()
    result = search_circuit(circuit, input_stats, objective="power-delay",
                            seed=0)
    search_s = time.perf_counter() - start

    # The pre-TimingCache search paid one full STA — `gates` arrival
    # computations — per candidate trial; the live cache pays only the
    # timing-dirty cone (early cut-off included) per trial plus the
    # accepted-move bookkeeping.
    naive_arrivals = result.trials * gates
    speedup = naive_arrivals / result.gates_retimed

    # Wall-clock sanity sample: a few full STA runs put a seconds
    # figure next to the arrival counts.
    start = time.perf_counter()
    for _ in range(10):
        analyze_timing(result.circuit)
    sta_s_per_run = (time.perf_counter() - start) / 10

    print(f"\n{name}: {gates} gates [greedy search, power-delay objective]")
    print(f"  trials          : {result.trials} candidate moves, "
          f"{len(result.accepted)} accepted")
    print(f"  arrival computes: {result.gates_retimed} (dirty-cone) vs "
          f"{naive_arrivals} (full STA per trial)")
    print(f"  speedup         : {speedup:.1f}x "
          f"(required >= {REQUIRED_SPEEDUP:.0f}x)")
    print(f"  search wall     : {search_s:.1f}s (naive would spend "
          f"~{result.trials * sta_s_per_run:.1f}s on STA alone)")
    RESULTS.append({
        "mode": "power-delay-search",
        "circuit": name,
        "gates": gates,
        "trials": result.trials,
        "accepted": len(result.accepted),
        "gates_retimed": result.gates_retimed,
        "naive_arrivals": naive_arrivals,
        "speedup": speedup,
        "search_s": search_s,
    })
    assert speedup >= REQUIRED_SPEEDUP
    # the delay trace is real: the final delay matches a batch STA
    assert result.delay_after == analyze_timing(result.circuit).delay


def test_power_delay_artifact_byte_stable(setting):
    name, circuit, input_stats = setting
    one = search_circuit(circuit, input_stats, objective="power-delay", seed=4)
    two = search_circuit(circuit, input_stats, objective="power-delay", seed=4)
    blob_one = dumps_artifact(strip_timing(one.to_artifact()))
    blob_two = dumps_artifact(strip_timing(two.to_artifact()))
    assert blob_one == blob_two, "power-delay artifact drifted across runs"
    print(f"\n{name}: power-delay artifact byte-stable "
          f"({len(blob_one)} bytes, {len(one.accepted)} moves, "
          f"{one.gates_retimed} arrivals retimed)")


def test_write_artifact():
    """Emit the canonical JSON artifact when REPRO_TIMING_BENCH_OUT is set."""
    out_path = os.environ.get("REPRO_TIMING_BENCH_OUT")
    if not RESULTS:
        pytest.skip("the speedup tests did not run")
    if not out_path:
        pytest.skip("set REPRO_TIMING_BENCH_OUT to write the artifact")
    artifact = {
        "schema": SCHEMA_VERSION,
        "bench": {
            "name": "incremental_timing",
            "required_speedup": REQUIRED_SPEEDUP,
        },
        "meta": environment_meta(),
        "results": RESULTS,
    }
    write_artifact(artifact, out_path)
    print(f"\nwrote JSON artifact to {out_path}")
