"""Acceptance benchmark: delta-driven ECO search vs naive re-optimization.

The claim under test (this PR's tentpole): the local-search engine
(:func:`repro.incremental.search.search_circuit`) prices every
candidate move through `WhatIf` trials against a live `StatsCache`, so
scoring a move costs cone-sized re-propagation — at least **10x fewer
gate stat re-propagations** than a naive re-optimizer that recomputes
the full circuit per candidate, on the largest suite circuit — while
the searched netlist **matches or beats** the single-pass
`optimize_circuit` power, and the canonical JSON artifacts are
**byte-identical across runs** with seeds held fixed.

Run with::

    pytest -m bench benchmarks/bench_eco_search.py -s

(the ``bench`` marker is deselected by default so tier-1 stays fast).
Environment knobs: ``REPRO_SEARCH_BENCH_NAIVE_SAMPLE`` (naive
evaluations to wall-clock for the printed time comparison, default
25), ``REPRO_SEARCH_BENCH_OUT`` (write the canonical JSON artifact
there, ``repro bench`` style).
"""

import os
import time

import pytest

pytestmark = pytest.mark.bench

from repro.bench.runner import dumps_artifact, environment_meta, \
    strip_timing, write_artifact
from repro.bench.suite import benchmark_suite, get_case
from repro.core.optimizer import circuit_power, optimize_circuit
from repro.incremental import search_circuit
from repro.sim.stimulus import ScenarioA
from repro.stochastic.density import local_stats
from repro.synth.mapper import map_circuit

REQUIRED_SPEEDUP = 10.0
NAIVE_SAMPLE = int(os.environ.get("REPRO_SEARCH_BENCH_NAIVE_SAMPLE", "25"))


def largest_case_name() -> str:
    sizes = [
        (len(map_circuit(case.network())), case.name)
        for case in benchmark_suite("full")
    ]
    return max(sizes)[1]


@pytest.fixture(scope="module")
def setting():
    name = largest_case_name()
    circuit = map_circuit(get_case(name).network())
    input_stats = ScenarioA(seed=0).input_stats(circuit.inputs)
    return name, circuit, input_stats


RESULTS = []


def test_search_repropagation_floor_and_power(setting):
    name, circuit, input_stats = setting
    gates = len(circuit)

    start = time.perf_counter()
    result = search_circuit(circuit, input_stats, seed=0)
    search_s = time.perf_counter() - start

    # A naive re-optimizer scores each candidate move by re-propagating
    # the whole circuit; the delta-driven engine pays only dirty cones.
    naive_propagations = result.trials * gates
    speedup = naive_propagations / result.gates_repropagated

    # Wall-clock sanity sample: time a handful of naive full recomputes
    # to put a seconds figure next to the propagation counts.
    start = time.perf_counter()
    for _ in range(NAIVE_SAMPLE):
        local_stats(circuit, input_stats)
    naive_s_per_eval = (time.perf_counter() - start) / NAIVE_SAMPLE

    single = optimize_circuit(circuit, input_stats)
    search_power = circuit_power(result.circuit, input_stats).total
    single_power = circuit_power(single.circuit, input_stats).total

    print(f"\n{name}: {gates} gates [greedy search, power objective]")
    print(f"  trials            : {result.trials} candidate moves, "
          f"{len(result.accepted)} accepted, {result.rounds} rounds")
    print(f"  re-propagations   : {result.gates_repropagated} (dirty-cone) vs "
          f"{naive_propagations} (naive full-circuit)")
    print(f"  speedup           : {speedup:.1f}x "
          f"(required >= {REQUIRED_SPEEDUP:.0f}x)")
    print(f"  search wall-clock : {search_s:.1f}s "
          f"(naive would spend ~{result.trials * naive_s_per_eval:.1f}s on "
          f"stat propagation alone)")
    print(f"  power             : {search_power:.4e} W (search) vs "
          f"{single_power:.4e} W (single-pass optimize)")

    RESULTS.append({
        "circuit": name,
        "gates": gates,
        "trials": result.trials,
        "accepted": len(result.accepted),
        "gates_repropagated": result.gates_repropagated,
        "naive_propagations": naive_propagations,
        "speedup": speedup,
        "search_power": search_power,
        "single_pass_power": single_power,
        "search_s": search_s,
    })

    assert speedup >= REQUIRED_SPEEDUP
    assert search_power <= single_power * (1.0 + 1e-9)


def test_multipass_worklist_is_cone_sized(setting):
    name, circuit, input_stats = setting
    gates = len(circuit)
    result = optimize_circuit(circuit, input_stats, passes=10)
    full_work = result.passes_run * gates
    print(f"\n{name}: optimize_circuit(passes=10) converged in "
          f"{result.passes_run} passes, {result.gates_decided} decisions "
          f"vs {full_work} for full re-traversals")
    if result.passes_run > 1:
        assert result.gates_decided < full_work
    assert result.power_after == pytest.approx(
        circuit_power(result.circuit, input_stats).total, rel=1e-12
    )


def test_artifacts_byte_identical_across_runs(setting):
    name, circuit, input_stats = setting
    for strategy, kwargs in (
        ("greedy", {}),
        ("anneal", {"seed": 7, "anneal_trials": 200}),
    ):
        one = search_circuit(circuit, input_stats, strategy=strategy, **kwargs)
        two = search_circuit(circuit, input_stats, strategy=strategy, **kwargs)
        blob_one = dumps_artifact(strip_timing(one.to_artifact()))
        blob_two = dumps_artifact(strip_timing(two.to_artifact()))
        assert blob_one == blob_two, f"{strategy} artifact drifted across runs"
        print(f"\n{name}: {strategy} artifact byte-stable "
              f"({len(blob_one)} bytes, {len(one.accepted)} moves)")


def test_write_artifact():
    """Emit the canonical JSON artifact when REPRO_SEARCH_BENCH_OUT is set."""
    out_path = os.environ.get("REPRO_SEARCH_BENCH_OUT")
    if not RESULTS:
        pytest.skip("the speedup test did not run")
    if not out_path:
        pytest.skip("set REPRO_SEARCH_BENCH_OUT to write the artifact")
    from repro.bench.runner import SCHEMA_VERSION

    artifact = {
        "schema": SCHEMA_VERSION,
        "bench": {
            "name": "eco_search",
            "required_speedup": REQUIRED_SPEEDUP,
        },
        "meta": environment_meta(),
        "results": RESULTS,
    }
    write_artifact(artifact, out_path)
    print(f"\nwrote JSON artifact to {out_path}")
