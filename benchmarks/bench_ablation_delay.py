"""A2 — ablation: delay-constrained reordering (paper future work (b)).

The paper observes the low-power rule (critical transistor near ground)
often *contradicts* the low-delay rule (critical transistor near the
output), and proposes as future work achieving "power reductions
without increasing the delay of the circuit".  The
``delay-constrained`` objective restricts each gate to configurations
whose per-pin Elmore delays do not exceed the as-mapped ones.

Claims: the constrained circuit never gets slower, and still captures a
useful part of the unconstrained power saving.
"""

import pytest

from repro.analysis.report import format_percent, format_table
from repro.analysis.stats import mean, relative_reduction
from repro.bench.suite import benchmark_suite
from repro.core.optimizer import optimize_circuit
from repro.core.power_model import GatePowerModel
from repro.sim.stimulus import ScenarioA
from repro.synth.mapper import map_circuit
from repro.timing.sta import circuit_delay


@pytest.fixture(scope="module")
def results():
    model = GatePowerModel()
    rows = []
    for case in benchmark_suite("quick"):
        network = case.network()
        circuit = map_circuit(network)
        stats = ScenarioA(seed=2).input_stats(circuit.inputs)
        worst = optimize_circuit(circuit, stats, model, objective="worst")
        free = optimize_circuit(circuit, stats, model, objective="best")
        constrained = optimize_circuit(
            circuit, stats, model, objective="delay-constrained"
        )
        d0 = circuit_delay(circuit)
        rows.append({
            "name": case.name,
            "free": relative_reduction(worst.power_after, free.power_after),
            "constrained": relative_reduction(
                worst.power_after, constrained.power_after
            ),
            "delay_free": (circuit_delay(free.circuit) - d0) / d0,
            "delay_constrained": (circuit_delay(constrained.circuit) - d0) / d0,
        })
    return rows


def test_ablation_delay_constrained(benchmark, results):
    rows = benchmark.pedantic(lambda: results, rounds=1, iterations=1)
    table = [
        (r["name"], format_percent(r["free"]), format_percent(r["constrained"]),
         format_percent(r["delay_free"]), format_percent(r["delay_constrained"]))
        for r in rows
    ]
    footer = ("average",
              format_percent(mean([r["free"] for r in rows])),
              format_percent(mean([r["constrained"] for r in rows])),
              format_percent(mean([r["delay_free"] for r in rows])),
              format_percent(mean([r["delay_constrained"] for r in rows])))
    print()
    print(format_table(
        ("Circuit", "free M%", "constr M%", "free dD%", "constr dD%"),
        table, title="A2 - delay-constrained reordering", footer=footer,
    ))
    for r in rows:
        # The constraint is honoured: never slower than the mapped netlist.
        assert r["delay_constrained"] <= 1e-9, r
        # Constrained saving cannot beat the unconstrained one.
        assert r["constrained"] <= r["free"] + 1e-9, r
        assert r["constrained"] >= -1e-9, r
    # On average the constrained flow still captures a useful share.
    avg_free = mean([r["free"] for r in rows])
    avg_constrained = mean([r["constrained"] for r in rows])
    assert avg_constrained > 0.3 * avg_free
