"""E5 — paper Figure 6 / §5.1: the two input scenarios.

There is no number to match in the figure itself (it is a block
diagram), so the reproducible claim is the *stimulus specification*:

* Scenario A inputs have uniformly random P in (0,1) and D in
  (0, 1M trans/s), realised as exponential-interval waveforms;
* Scenario B inputs are latched, P = 0.5, D = 0.5 transitions/cycle.

This bench samples both generators and verifies the waveforms actually
deliver the advertised statistics.
"""

import numpy as np
import pytest

from repro.analysis.report import format_table
from repro.sim.stimulus import ScenarioA, ScenarioB
from repro.stochastic.signal import measure_waveform

INPUTS = [f"x{i}" for i in range(12)]


def test_scenario_a_statistics(benchmark):
    scenario = ScenarioA(seed=7)

    def generate():
        stats = scenario.input_stats(INPUTS)
        duration = 400.0 / np.mean([s.density for s in stats.values()])
        return scenario.generate(INPUTS, duration)

    stimulus = benchmark.pedantic(generate, rounds=1, iterations=1)
    rows = []
    for name in INPUTS:
        spec = stimulus.stats[name]
        meas = measure_waveform(stimulus.waveforms[name], stimulus.duration)
        rows.append((name, f"{spec.probability:.2f}", f"{meas.probability:.2f}",
                     f"{spec.density:.3g}", f"{meas.density:.3g}"))
        # Measured statistics track the specification.
        assert meas.probability == pytest.approx(spec.probability, abs=0.12)
        assert meas.density == pytest.approx(spec.density, rel=0.25)
    print()
    print(format_table(("input", "P spec", "P meas", "D spec", "D meas"),
                       rows, title="Scenario A stimulus"))
    # The draw really spans the specified ranges.
    probs = [stimulus.stats[n].probability for n in INPUTS]
    densities = [stimulus.stats[n].density for n in INPUTS]
    assert max(probs) - min(probs) > 0.3
    assert max(densities) / max(1.0, min(densities)) > 2.0
    assert max(densities) <= scenario.density_max


def test_scenario_b_statistics(benchmark):
    scenario = ScenarioB(clock_period=10e-9, seed=3)
    cycles = 2000

    stimulus = benchmark.pedantic(
        lambda: scenario.generate(INPUTS, cycles), rounds=1, iterations=1
    )
    for name in INPUTS:
        spec = stimulus.stats[name]
        assert spec.probability == 0.5
        assert spec.density == pytest.approx(0.5 / scenario.clock_period)
        meas = measure_waveform(stimulus.waveforms[name], stimulus.duration)
        # A fresh Bernoulli(1/2) per cycle: 0.5 transitions/cycle.
        assert meas.density * scenario.clock_period == pytest.approx(0.5, abs=0.06)
        assert meas.probability == pytest.approx(0.5, abs=0.06)
        # Transitions happen only on clock edges.
        _, times = stimulus.waveforms[name]
        for t in times:
            phase = (t / scenario.clock_period) % 1.0
            assert min(phase, 1.0 - phase) < 1e-9
