"""E4 + E7 — paper Table 3: the main evaluation.

For every suite circuit and both scenarios, runs the complete flow
(map -> optimise best/worst -> switch-level simulate both -> STA) and
prints the paper's columns: G (gates), M (model best-vs-worst power
reduction), S (simulated reduction), D (delay increase of the
power-optimised circuit).

Shape claims under test (paper §5 / conclusions):

* scenario A average simulated reduction ≈ 12 % (we accept 4-25 %);
* the scenario B average is clearly below scenario A (paper: roughly
  half);
* the average delay change is small (|D| below ~15 %, paper: +4 %);
* the model average tracks the simulated average within a few points.

Set ``REPRO_TABLE3_SUBSET=full`` for the full 30-circuit run (the
default "quick" subset keeps CI fast).
"""

import os

import pytest

from repro.analysis.experiments import run_table3
from repro.analysis.report import format_percent, format_table
from repro.analysis.stats import mean

SUBSET = os.environ.get("REPRO_TABLE3_SUBSET", "quick")


@pytest.fixture(scope="module")
def table3_results(request):
    return run_table3(subset=SUBSET, scenarios=("A", "B"), seed=0)


def _print_scenario(rows, scenario):
    table = [
        (r.name, r.gates, format_percent(r.model_reduction),
         format_percent(r.sim_reduction), format_percent(r.delay_increase))
        for r in rows
    ]
    footer = ("average", "",
              format_percent(mean([r.model_reduction for r in rows])),
              format_percent(mean([r.sim_reduction for r in rows])),
              format_percent(mean([r.delay_increase for r in rows])))
    print()
    print(format_table(("Circuit", "G", "M%", "S%", "D%"), table,
                       title=f"Table 3 - scenario {scenario} ({SUBSET} subset)",
                       footer=footer))


def test_table3_runs(benchmark, table3_results):
    # The heavy work happens in the fixture; benchmark the re-aggregation
    # so pytest-benchmark still reports a timing row for E4.
    benchmark.pedantic(
        lambda: {sc: len(rows) for sc, rows in table3_results.items()},
        rounds=1, iterations=1,
    )
    for scenario, rows in table3_results.items():
        _print_scenario(rows, scenario)
        assert len(rows) >= 8


def test_table3_scenario_a_average(benchmark, table3_results):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = table3_results["A"]
    avg_sim = mean([r.sim_reduction for r in rows])
    avg_model = mean([r.model_reduction for r in rows])
    # Paper: 12% simulated / 9% estimated average in scenario A.
    assert 0.04 <= avg_sim <= 0.25, f"scenario A avg S = {avg_sim:.3f}"
    assert 0.04 <= avg_model <= 0.25, f"scenario A avg M = {avg_model:.3f}"
    # Model and simulation agree on the trend.
    assert abs(avg_model - avg_sim) < 0.08


def test_table3_scenario_b_below_a(benchmark, table3_results):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    avg_a = mean([r.sim_reduction for r in table3_results["A"]])
    avg_b = mean([r.sim_reduction for r in table3_results["B"]])
    # Paper: "the power reduction in scenario B is roughly half of A".
    assert avg_b < avg_a
    assert avg_b >= 0.0
    assert avg_b / avg_a < 0.85


def test_table3_delay_impact_small(benchmark, table3_results):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = table3_results["A"]
    avg_delay = mean([r.delay_increase for r in rows])
    # Paper: +4% average; sign may differ with our Elmore model, but the
    # impact must stay small relative to the power savings.
    assert abs(avg_delay) < 0.15, f"avg delay change = {avg_delay:.3f}"


def test_table3_model_positive_everywhere(benchmark, table3_results):
    """Best-vs-worst is non-negative by construction of the model."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for rows in table3_results.values():
        for r in rows:
            assert r.model_reduction >= -1e-9, r
            assert r.model_power_best > 0.0
            assert r.sim_power_best > 0.0
