"""Acceptance benchmark: checkpointing costs under 5% of search wall time.

The claim under test (see ``src/repro/robust/README.md``): running
``search_circuit`` with ``--checkpoint`` at the default cadence
(:data:`repro.robust.checkpoint.DEFAULT_CHECKPOINT_EVERY` accepted
moves between snapshots) adds **less than 5%** to the wall time of the
``bench_eco_search.py`` workload — the largest suite circuit under the
default greedy search — while leaving the canonical artifact
byte-identical.

Methodology (robust to machine noise, same approach as
``bench_obs_overhead.py``): instead of A/B-ing two whole runs, this
measures the two factors of the overhead directly and multiplies them:

* the per-snapshot cost (payload build + canonical JSON + CRC + atomic
  write to a tmpfs-backed temp dir), timed over repeated saves of the
  run's own final checkpoint payload;
* the number of snapshots the workload actually writes at the default
  cadence, counted by running the checkpointed search itself.

Run with::

    pytest -m bench benchmarks/bench_checkpoint_overhead.py -s

(the ``bench`` marker is deselected by default so tier-1 stays fast).
Environment knobs: ``REPRO_CKPT_BENCH_SAVE_LOOPS`` (save-cost timing
loop length, default 50), ``REPRO_CKPT_BENCH_OUT`` (write the
canonical JSON artifact there, ``repro bench`` style).
"""

import os
import tempfile
import time

import pytest

pytestmark = pytest.mark.bench

from repro.bench.runner import SCHEMA_VERSION, dumps_artifact, \
    environment_meta, strip_timing, write_artifact
from repro.bench.suite import benchmark_suite, get_case
from repro.incremental import search_circuit
from repro.robust import DEFAULT_CHECKPOINT_EVERY, load_checkpoint, \
    save_checkpoint
from repro.sim.stimulus import ScenarioA
from repro.synth.mapper import map_circuit

#: The robustness contract: default-cadence checkpointing must cost
#: less than this fraction of the uncheckpointed search's wall time.
MAX_OVERHEAD = 0.05

SAVE_LOOPS = int(os.environ.get("REPRO_CKPT_BENCH_SAVE_LOOPS", "50"))

RESULTS = []


def largest_case_name() -> str:
    sizes = [
        (len(map_circuit(case.network())), case.name)
        for case in benchmark_suite("full")
    ]
    return max(sizes)[1]


def test_checkpoint_overhead_under_five_percent(tmp_path):
    name = largest_case_name()
    circuit = map_circuit(get_case(name).network())
    input_stats = ScenarioA(seed=0).input_stats(circuit.inputs)
    gates = len(circuit)
    ck_path = str(tmp_path / "ck.json")

    # Warm caches, then time the uncheckpointed run — the denominator.
    search_circuit(circuit, input_stats, seed=0)
    start = time.perf_counter()
    plain = search_circuit(circuit, input_stats, seed=0)
    search_s = time.perf_counter() - start

    # The checkpointed run: counts snapshots at the default cadence and
    # proves byte-identity along the way.
    start = time.perf_counter()
    checkpointed = search_circuit(circuit, input_stats, seed=0,
                                  checkpoint_path=ck_path)
    checkpointed_s = time.perf_counter() - start
    assert dumps_artifact(strip_timing(checkpointed.to_artifact())) == \
        dumps_artifact(strip_timing(plain.to_artifact()))

    # Per-snapshot cost: repeatedly save the final (largest) payload.
    payload = load_checkpoint(ck_path)
    snapshots = max(1, len(plain.accepted) // DEFAULT_CHECKPOINT_EVERY)
    with tempfile.TemporaryDirectory() as save_dir:
        target = os.path.join(save_dir, "save.json")
        start = time.perf_counter()
        for _ in range(SAVE_LOOPS):
            save_checkpoint(target, payload)
        save_s = (time.perf_counter() - start) / SAVE_LOOPS

    overhead_s = snapshots * save_s
    fraction = overhead_s / search_s

    print(f"\n{name}: {gates} gates [checkpoint overhead]")
    print(f"  search wall-clock : {search_s:.2f}s plain, "
          f"{checkpointed_s:.2f}s checkpointed "
          f"({snapshots} snapshot(s) at the default cadence)")
    print(f"  snapshot cost     : {save_s * 1e3:.2f} ms/save "
          f"({SAVE_LOOPS} loops)")
    print(f"  checkpoint cost   : {overhead_s * 1e3:.2f} ms upper bound = "
          f"{fraction * 100:.3f}% of the search "
          f"(required < {MAX_OVERHEAD * 100:.0f}%)")

    RESULTS.append({
        "circuit": name,
        "gates": gates,
        "accepted": len(plain.accepted),
        "snapshots": snapshots,
        "save_ms": save_s * 1e3,
        "overhead_s": overhead_s,
        "search_s": search_s,
        "checkpointed_s": checkpointed_s,
        "overhead_fraction": fraction,
    })

    assert fraction < MAX_OVERHEAD


def test_write_artifact():
    """Emit the canonical JSON artifact when REPRO_CKPT_BENCH_OUT is set."""
    out_path = os.environ.get("REPRO_CKPT_BENCH_OUT")
    if not RESULTS:
        pytest.skip("the overhead test did not run")
    if not out_path:
        pytest.skip("set REPRO_CKPT_BENCH_OUT to write the artifact")
    artifact = {
        "schema": SCHEMA_VERSION,
        "suite": {"benchmark": "checkpoint_overhead"},
        "meta": environment_meta(),
        "results": RESULTS,
    }
    write_artifact(artifact, out_path)
    print(f"wrote {out_path}")
