"""Acceptance benchmark: vectorized sampled kernel + batch move pricing.

The claims under test (this PR's tentpole): the uint64-blocked sampled
kernel (:mod:`repro.compiled.sampled`) makes the cone refresh after an
edit at least **5x faster** than the big-int backend — the compiled
path settles whole word streams per gate where the object path loops
Python big-int ops per time step — and batch move pricing in the
greedy search (:mod:`repro.incremental.search`) makes a full candidate
pass at least **5x faster** than per-move ``WhatIf`` trials.  Both
stay **bit-identical**: same statistics, same power, and (for the
search) a byte-identical artifact modulo run timing and the cone-work
counter the batch path exists to shrink.

Run with::

    pytest -m bench benchmarks/bench_compiled_sampler.py -s

(the ``bench`` marker is deselected by default so tier-1 stays fast).
Environment knobs: ``REPRO_SAMPLER_BENCH_NODES`` (random-logic node
count for the refresh circuit, default 600),
``REPRO_SAMPLER_BENCH_LANES``/``REPRO_SAMPLER_BENCH_STEPS`` (stream
shape, default 256 x 256 — the step count is the vectorisation axis),
``REPRO_SAMPLER_BENCH_EDITS`` (timed edits, default 15),
``REPRO_SAMPLER_BENCH_SEARCH_NODES`` (node count for the greedy-pass
circuit, default 250), ``REPRO_SAMPLER_BENCH_OUT`` (write the
canonical JSON artifact there, ``repro bench`` style).
"""

import os
import time

import pytest

pytestmark = pytest.mark.bench

from repro.bench.generators import random_logic
from repro.bench.runner import SCHEMA_VERSION, dumps_artifact, \
    environment_meta, strip_timing, write_artifact
from repro.incremental import StatsCache, search_circuit
from repro.sim.stimulus import ScenarioA
from repro.synth.mapper import map_circuit

NODES = int(os.environ.get("REPRO_SAMPLER_BENCH_NODES", "600"))
LANES = int(os.environ.get("REPRO_SAMPLER_BENCH_LANES", "256"))
STEPS = int(os.environ.get("REPRO_SAMPLER_BENCH_STEPS", "256"))
EDITS = int(os.environ.get("REPRO_SAMPLER_BENCH_EDITS", "15"))
SEARCH_NODES = int(os.environ.get("REPRO_SAMPLER_BENCH_SEARCH_NODES", "250"))
REQUIRED_SPEEDUP = 5.0

RESULTS = []


def strip_cone(value):
    if isinstance(value, dict):
        return {k: strip_cone(v) for k, v in value.items()
                if k != "gates_repropagated"}
    if isinstance(value, list):
        return [strip_cone(v) for v in value]
    return value


def test_sampled_refresh_speedup():
    circuit = map_circuit(random_logic(24, NODES, seed=7))
    input_stats = ScenarioA(seed=0).input_stats(circuit.inputs)

    def run(compiled):
        work = circuit.copy()
        cache = StatsCache(work, dict(input_stats), backend="sampled",
                           compiled=compiled, lanes=LANES, steps=STEPS,
                           seed=4)
        cache.stats()  # warm: streams drawn, circuit settled
        gates = [g for g in work.gates
                 if g.template.num_configurations() > 1]
        elapsed = 0.0
        for gate in gates[:EDITS]:
            work.set_config(gate.name,
                            gate.template.configurations()[1])
            start = time.perf_counter()
            cache.stats()
            elapsed += time.perf_counter() - start
        stats = dict(cache.stats())
        power = cache.total_power()
        reprop = cache.gates_repropagated
        cache.close()
        return elapsed / EDITS, stats, power, reprop

    object_s, ref_stats, ref_power, ref_reprop = run(False)
    compiled_s, flat_stats, flat_power, flat_reprop = run(True)
    assert flat_stats == ref_stats, "compiled sampled refresh drifted bit-wise"
    assert flat_power == ref_power
    assert flat_reprop == ref_reprop  # same cones, faster per gate
    speedup = object_s / compiled_s
    print(f"\n{circuit.name}: {len(circuit)} gates, {LANES} lanes x "
          f"{STEPS} steps [sampled cone refresh]")
    print(f"  big-int backend : {object_s * 1e3:8.2f}ms/edit")
    print(f"  compiled        : {compiled_s * 1e3:8.2f}ms/edit")
    print(f"  speedup: {speedup:.1f}x (required >= {REQUIRED_SPEEDUP:.0f}x)")
    RESULTS.append({
        "mode": "sampled-refresh",
        "circuit": circuit.name,
        "gates": len(circuit),
        "lanes": LANES,
        "steps": STEPS,
        "edits": EDITS,
        "object_s": object_s,
        "compiled_s": compiled_s,
        "speedup": speedup,
    })
    assert speedup >= REQUIRED_SPEEDUP


def test_batch_pricing_pass_speedup():
    circuit = map_circuit(random_logic(20, SEARCH_NODES, seed=7))
    input_stats = ScenarioA(seed=0).input_stats(circuit.inputs)

    def run(compiled):
        start = time.perf_counter()
        result = search_circuit(circuit, input_stats, objective="power",
                                seed=3, max_rounds=1, compiled=compiled)
        return time.perf_counter() - start, result

    object_s, reference = run(False)
    compiled_s, batched = run(True)
    # byte-identical artifact modulo run timing and the cone counter
    assert dumps_artifact(strip_cone(strip_timing(batched.to_artifact()))) \
        == dumps_artifact(strip_cone(strip_timing(reference.to_artifact()))), \
        "batch pricing drifted from the per-trial path"
    assert batched.gates_repropagated < reference.gates_repropagated
    speedup = object_s / compiled_s
    print(f"\n{circuit.name}: {len(circuit)} gates, {reference.trials} "
          f"trials [greedy candidate pass]")
    print(f"  per-move WhatIf : {object_s:8.2f}s/pass")
    print(f"  batch priced    : {compiled_s:8.2f}s/pass")
    print(f"  speedup: {speedup:.1f}x (required >= {REQUIRED_SPEEDUP:.0f}x)")
    RESULTS.append({
        "mode": "batch-pricing-pass",
        "circuit": circuit.name,
        "gates": len(circuit),
        "trials": reference.trials,
        "object_s": object_s,
        "compiled_s": compiled_s,
        "object_repropagated": reference.gates_repropagated,
        "compiled_repropagated": batched.gates_repropagated,
        "speedup": speedup,
    })
    assert speedup >= REQUIRED_SPEEDUP


def test_write_artifact():
    """Emit the canonical JSON artifact when REPRO_SAMPLER_BENCH_OUT is set."""
    out_path = os.environ.get("REPRO_SAMPLER_BENCH_OUT")
    if not RESULTS:
        pytest.skip("the speedup tests did not run")
    if not out_path:
        pytest.skip("set REPRO_SAMPLER_BENCH_OUT to write the artifact")
    artifact = {
        "schema": SCHEMA_VERSION,
        "bench": {
            "name": "compiled_sampler",
            "required_speedup": REQUIRED_SPEEDUP,
            "nodes": NODES,
            "lanes": LANES,
            "steps": STEPS,
            "search_nodes": SEARCH_NODES,
        },
        "meta": environment_meta(),
        "results": RESULTS,
    }
    write_artifact(artifact, out_path)
    print(f"\nwrote JSON artifact to {out_path}")
