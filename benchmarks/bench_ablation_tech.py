"""A5 — ablation: technology-parameter sensitivity of the savings.

The paper's savings hinge on internal-node capacitance being a material
share of a gate's switched capacitance.  This bench sweeps the
diffusion-to-gate capacitance ratio and the output load, and records
the model's best-vs-worst spread on a fixed workload.  Expectations:

* savings grow with ``c_diff`` (more internal capacitance to optimise);
* savings shrink as the external load grows (the fixed output term
  dominates);
* at (near-)zero diffusion capacitance reordering buys (near) nothing.

This quantifies *when* transistor reordering pays — the reason the
technique faded as interconnect/load capacitance grew relative to
diffusion in later process generations.
"""

import pytest

from repro.analysis.report import format_percent, format_table
from repro.analysis.stats import mean, relative_reduction
from repro.bench.suite import get_case
from repro.core.optimizer import optimize_circuit
from repro.core.power_model import GatePowerModel
from repro.gates.capacitance import TechParams
from repro.sim.stimulus import ScenarioA
from repro.synth.mapper import map_circuit

CIRCUITS = ["rca4", "mux8", "rnd_a"]


def _spread(circuit, stats, tech, po_load=10e-15):
    model = GatePowerModel(tech)
    best = optimize_circuit(circuit, stats, model, objective="best",
                            po_load=po_load)
    worst = optimize_circuit(circuit, stats, model, objective="worst",
                             po_load=po_load)
    return relative_reduction(worst.power_after, best.power_after)


@pytest.fixture(scope="module")
def workloads():
    items = []
    for name in CIRCUITS:
        circuit = map_circuit(get_case(name).network())
        stats = ScenarioA(seed=14).input_stats(circuit.inputs)
        items.append((name, circuit, stats))
    return items


def test_sensitivity_to_diffusion_capacitance(benchmark, workloads):
    ratios = [0.02, 0.5, 1.0, 2.0]  # c_diff as multiple of the default

    def sweep():
        rows = []
        for factor in ratios:
            tech = TechParams(c_diff=2.0e-15 * factor)
            spreads = [_spread(c, s, tech) for _, c, s in workloads]
            rows.append((factor, mean(spreads)))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(format_table(
        ("c_diff x", "avg spread %"),
        [(f, format_percent(s)) for f, s in rows],
        title="A5 - savings vs diffusion capacitance",
    ))
    spreads = [s for _, s in rows]
    # Monotone growth with diffusion capacitance.
    for lo, hi in zip(spreads, spreads[1:]):
        assert hi >= lo - 1e-3
    # Near-zero diffusion: reordering buys almost nothing.
    assert spreads[0] < 0.25 * spreads[-1] + 1e-3


def test_sensitivity_to_output_load(benchmark, workloads):
    loads = [0.0, 10e-15, 40e-15, 160e-15]

    def sweep():
        tech = TechParams()
        rows = []
        for load in loads:
            spreads = [_spread(c, s, tech, po_load=load) for _, c, s in workloads]
            rows.append((load, mean(spreads)))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(format_table(
        ("PO load (F)", "avg spread %"),
        [(f"{l:.0e}", format_percent(s)) for l, s in rows],
        title="A5 - savings vs primary-output load",
    ))
    spreads = [s for _, s in rows]
    # Heavier external load dilutes the reordering benefit.
    assert spreads[-1] < spreads[0]
