"""A1 — ablation: variants of the T_{nk,xi} transition-count formula.

DESIGN.md §3.2 reconstructs the paper's per-input node transition count.
This bench compares the three implemented variants on the quick suite:

* ``conditioned`` (default) — the faithful reconstruction;
* ``independent`` — no conditioning denominators;
* ``output-only`` — internal nodes ignored (pre-paper state of the art).

Claims: the output-only model sees a much smaller best-vs-worst spread
(the residue comes from ordering-dependent *output diffusion
capacitance*, not from activity) — internal nodes are where reordering
mainly acts — while both internal-node variants see the paper-sized
spread and agree with each other on direction.
"""

import pytest

from repro.analysis.report import format_percent, format_table
from repro.analysis.stats import mean, relative_reduction
from repro.bench.suite import benchmark_suite
from repro.core.optimizer import optimize_circuit
from repro.core.power_model import GatePowerModel
from repro.sim.stimulus import ScenarioA
from repro.synth.mapper import map_circuit

FORMULAS = ("conditioned", "independent", "output-only")


def _spread(circuit, stats, formula):
    model = GatePowerModel(formula=formula)
    best = optimize_circuit(circuit, stats, model, objective="best")
    worst = optimize_circuit(circuit, stats, model, objective="worst")
    return relative_reduction(worst.power_after, best.power_after)


@pytest.fixture(scope="module")
def spreads():
    results = {f: [] for f in FORMULAS}
    names = []
    for case in benchmark_suite("quick"):
        network = case.network()
        circuit = map_circuit(network)
        stats = ScenarioA(seed=1).input_stats(circuit.inputs)
        names.append(case.name)
        for formula in FORMULAS:
            results[formula].append(_spread(circuit, stats, formula))
    return names, results


def test_ablation_model_formulas(benchmark, spreads):
    names, results = benchmark.pedantic(lambda: spreads, rounds=1, iterations=1)
    rows = [
        (name,) + tuple(format_percent(results[f][i]) for f in FORMULAS)
        for i, name in enumerate(names)
    ]
    footer = ("average",) + tuple(
        format_percent(mean(results[f])) for f in FORMULAS
    )
    print()
    print(format_table(("Circuit",) + FORMULAS, rows,
                       title="A1 - best-vs-worst spread per model formula",
                       footer=footer))

    # Internal-node formulas expose a paper-sized spread...
    assert mean(results["conditioned"]) > 0.04
    assert mean(results["independent"]) > 0.04
    # ...while ignoring internal-node *activity* loses most of it (the
    # remainder is the ordering-dependent output diffusion capacitance).
    assert mean(results["output-only"]) < 0.5 * mean(results["conditioned"])
    # The two internal-node variants agree within a few points on average.
    assert abs(mean(results["conditioned"]) - mean(results["independent"])) < 0.06
