"""Prior-art baseline — delay-driven reordering (Carlson & Chen, DAC'93).

The paper's §2: Carlson reordered transistors for *performance* and
"no power consumption reductions are reported".  The ``fastest``
optimiser objective reproduces that policy (each gate takes its
minimum-worst-delay ordering).  Comparing it with the paper's
power-driven objective quantifies the gap the paper's contribution
opens:

* the delay-driven circuit is at least as fast as the power-driven one;
* the power-driven circuit consumes less under the model — delay-driven
  reordering leaves most of the power saving on the table.
"""

import pytest

from repro.analysis.report import format_percent, format_si, format_table
from repro.analysis.stats import mean, relative_reduction
from repro.bench.suite import benchmark_suite
from repro.core.optimizer import optimize_circuit
from repro.core.power_model import GatePowerModel
from repro.sim.stimulus import ScenarioA
from repro.synth.mapper import map_circuit
from repro.timing.sta import circuit_delay


@pytest.fixture(scope="module")
def comparison():
    model = GatePowerModel()
    rows = []
    for case in benchmark_suite("quick"):
        circuit = map_circuit(case.network())
        stats = ScenarioA(seed=19).input_stats(circuit.inputs)
        power_opt = optimize_circuit(circuit, stats, model, objective="best")
        delay_opt = optimize_circuit(circuit, stats, model, objective="fastest")
        worst = optimize_circuit(circuit, stats, model, objective="worst")
        rows.append({
            "name": case.name,
            "power_saving_power_driven": relative_reduction(
                worst.power_after, power_opt.power_after
            ),
            "power_saving_delay_driven": relative_reduction(
                worst.power_after, delay_opt.power_after
            ),
            "delay_power_driven": circuit_delay(power_opt.circuit),
            "delay_delay_driven": circuit_delay(delay_opt.circuit),
        })
    return rows


def test_baseline_carlson_comparison(benchmark, comparison):
    rows = benchmark.pedantic(lambda: comparison, rounds=1, iterations=1)
    print()
    print(format_table(
        ("Circuit", "power-driven M%", "delay-driven M%",
         "delay (power-driven)", "delay (delay-driven)"),
        [(r["name"],
          format_percent(r["power_saving_power_driven"]),
          format_percent(r["power_saving_delay_driven"]),
          format_si(r["delay_power_driven"], "s"),
          format_si(r["delay_delay_driven"], "s"))
         for r in rows],
        title="Power-driven (this paper) vs delay-driven (Carlson, prior art)",
        footer=("average",
                format_percent(mean([r["power_saving_power_driven"] for r in rows])),
                format_percent(mean([r["power_saving_delay_driven"] for r in rows])),
                "", ""),
    ))
    avg_power_driven = mean([r["power_saving_power_driven"] for r in rows])
    avg_delay_driven = mean([r["power_saving_delay_driven"] for r in rows])
    # The paper's objective dominates the prior art on power...
    assert avg_power_driven > avg_delay_driven
    assert avg_delay_driven < 0.75 * avg_power_driven
    # ...while the delay-driven circuits stay at least as fast on average.
    # (Per-gate worst-delay greed is not per-circuit optimal, so single
    # rows may deviate; the aggregate must not.)
    avg_delay_fast = mean([r["delay_delay_driven"] for r in rows])
    avg_delay_power = mean([r["delay_power_driven"] for r in rows])
    assert avg_delay_fast <= avg_delay_power * 1.02


def test_fastest_objective_is_fastest_per_gate(benchmark):
    """Every gate in the 'fastest' result takes its min-delay ordering."""
    from repro.gates.capacitance import TechParams
    from repro.timing.elmore import gate_worst_delay

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    tech = TechParams()
    circuit = map_circuit(benchmark_suite("quick")[0].network())
    stats = ScenarioA(seed=3).input_stats(circuit.inputs)
    result = optimize_circuit(circuit, stats, objective="fastest")
    for gate in result.circuit.gates:
        load = result.circuit.output_load(gate.output, tech)
        chosen = gate_worst_delay(gate.compiled(), gate.effective_config(),
                                  tech, load)
        for config in gate.template.configurations():
            alt = gate_worst_delay(gate.template.compile_config(config),
                                   config, tech, load)
            assert chosen <= alt * (1 + 1e-9)
