"""Acceptance benchmark: incremental structural refresh vs full rebuild.

The claim under test (the structural-ECO PR's tentpole): after a
structural edit (``AddGate`` / ``RewireNet`` / ``RemoveGate``), the
:class:`repro.incremental.StatsCache` rebuilds the circuit structure
(fanout index, topological order) and re-propagates only the affected
cone — making the refresh at least 5x faster than rebuilding the
statistics from scratch on the largest suite circuit, while staying
bit-identical to the from-scratch map after every edit.

Structural refreshes are cheaper per-edit than the ≥ 10x local-edit
floor of ``bench_incremental.py`` would suggest only in the cone
arithmetic: each one also pays an O(V+E) structure rebuild, hence the
lower 5x floor.

Run with::

    pytest -m bench benchmarks/bench_structural_eco.py -s

(the ``bench`` marker is deselected by default so tier-1 stays fast).
Environment knobs: ``REPRO_STRUCT_BENCH_EDITS`` (add/rewire/remove
cycles, default 25), ``REPRO_STRUCTURAL_BENCH_OUT`` (write the
canonical JSON artifact there, ``repro bench`` style).
"""

import os
import time

import pytest

pytestmark = pytest.mark.bench

from repro.bench.runner import SCHEMA_VERSION, environment_meta, \
    write_artifact
from repro.bench.suite import benchmark_suite, get_case
from repro.circuit.netlist import AddGate, RemoveGate, RewireNet
from repro.incremental import StatsCache
from repro.sim.stimulus import ScenarioA
from repro.stochastic.density import local_stats
from repro.synth.mapper import map_circuit

CYCLES = int(os.environ.get("REPRO_STRUCT_BENCH_EDITS", "25"))
REQUIRED_SPEEDUP = 5.0


def largest_case_name() -> str:
    sizes = [
        (len(map_circuit(case.network())), case.name)
        for case in benchmark_suite("full")
    ]
    return max(sizes)[1]


@pytest.fixture(scope="module")
def setting():
    name = largest_case_name()
    circuit = map_circuit(get_case(name).network())
    input_stats = ScenarioA(seed=0).input_stats(circuit.inputs)
    return name, circuit, input_stats


RESULTS = []


def _timed_refresh(circuit, input_stats, cache, edit, incremental_s, full_s):
    """Apply one structural edit; time cone refresh vs from-scratch map."""
    circuit.apply_edit(edit)
    start = time.perf_counter()
    cache.refresh()
    incremental_s[0] += time.perf_counter() - start
    start = time.perf_counter()
    reference = local_stats(circuit, input_stats)
    full_s[0] += time.perf_counter() - start
    assert cache.stats() == reference, f"divergence after {edit}"


def test_structural_incremental_speedup(setting):
    name, circuit, input_stats = setting
    circuit = circuit.copy()
    cache = StatsCache(circuit, input_stats)

    # Deterministic edit sites: round-robin over the heaviest-fanout
    # nets (the buffer-insertion family's natural targets).
    index = circuit.fanout_index()
    nets = sorted(
        (net for net in ([g.output for g in circuit.gates]
                         + list(circuit.inputs))
         if len(index.sinks(net)) >= 2),
        key=lambda net: -len(index.sinks(net)),
    )
    assert nets, "largest suite circuit has no multi-fanout net?"

    incremental_s, full_s, edits = [0.0], [0.0], 0
    for i in range(CYCLES):
        source = nets[i % len(nets)]
        other = nets[(i + 1) % len(nets)]
        name_i = f"bench_buf{i}"
        # add a (dead) inverter on the net, swing its pin to another
        # net, then sweep it away — one full structural life cycle
        cycle = (
            AddGate(name_i, "inv", (("a", source),), f"{name_i}_n"),
            RewireNet(name_i, "a", other),
            RemoveGate(name_i),
        )
        for edit in cycle:
            _timed_refresh(circuit, input_stats, cache, edit,
                           incremental_s, full_s)
            edits += 1
    cache.close()

    speedup = full_s[0] / incremental_s[0]
    print(f"\n{name}: {len(circuit)} gates, {edits} structural edits")
    print(f"  full rebuild   : {full_s[0]:8.3f}s")
    print(f"  structural incr: {incremental_s[0]:8.3f}s")
    print(f"  speedup: {speedup:.1f}x (required >= {REQUIRED_SPEEDUP:.0f}x)")
    RESULTS.append((name, len(circuit), {
        "edits": edits,
        "full_s": full_s[0],
        "incremental_s": incremental_s[0],
        "speedup": speedup,
    }))
    assert speedup >= REQUIRED_SPEEDUP


def test_write_artifact():
    """Emit the canonical JSON artifact when REPRO_STRUCTURAL_BENCH_OUT is set."""
    out_path = os.environ.get("REPRO_STRUCTURAL_BENCH_OUT")
    if not RESULTS:
        pytest.skip("speedup test did not run")
    if not out_path:
        pytest.skip("set REPRO_STRUCTURAL_BENCH_OUT to write the artifact")
    name, gates, row = RESULTS[0]
    artifact = {
        "schema": SCHEMA_VERSION,
        "bench": {
            "name": "structural_eco",
            "circuit": name,
            "gates": gates,
            "required_speedup": REQUIRED_SPEEDUP,
        },
        "meta": environment_meta(),
        "results": [row],
    }
    write_artifact(artifact, out_path)
    print(f"\nwrote JSON artifact to {out_path}")
