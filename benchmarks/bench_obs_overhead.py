"""Acceptance benchmark: the obs layer's zero-overhead-when-off contract.

The claim under test (see ``src/repro/obs/README.md``): with tracing
disabled, every instrumentation touchpoint in the hot paths costs one
module-global read, one ``is not None`` test and a no-op context
manager — **under 2% of the ECO-search wall time** on the largest
suite circuit (the ``bench_eco_search.py`` workload).

Methodology (robust to machine noise): instead of A/B-ing two whole
search runs — whose run-to-run jitter easily exceeds 2% — this measures
the two factors of the overhead directly and multiplies them:

* the per-call cost of the disabled guard pattern, timed over a tight
  loop of the exact idiom the hot paths use;
* the number of touchpoints the workload actually executes, counted by
  running the same search with a tracer sinking to ``os.devnull``
  (every guard that fires emits at least one record, and spans emit
  two, so ``Tracer.records`` is a conservative upper bound).

Run with::

    pytest -m bench benchmarks/bench_obs_overhead.py -s

(the ``bench`` marker is deselected by default so tier-1 stays fast).
Environment knobs: ``REPRO_OBS_BENCH_GUARD_LOOPS`` (guard-cost timing
loop length, default 200000), ``REPRO_OBS_BENCH_OUT`` (write the
canonical JSON artifact there, ``repro bench`` style).
"""

import os
import time

import pytest

pytestmark = pytest.mark.bench

from repro.bench.runner import SCHEMA_VERSION, environment_meta, \
    write_artifact
from repro.bench.suite import benchmark_suite, get_case
from repro.incremental import search_circuit
from repro.obs import trace
from repro.sim.stimulus import ScenarioA
from repro.synth.mapper import map_circuit

#: The zero-overhead contract: disabled instrumentation must cost less
#: than this fraction of the search's wall time.
MAX_OVERHEAD = 0.02

GUARD_LOOPS = int(os.environ.get("REPRO_OBS_BENCH_GUARD_LOOPS", "200000"))

RESULTS = []


def largest_case_name() -> str:
    sizes = [
        (len(map_circuit(case.network())), case.name)
        for case in benchmark_suite("full")
    ]
    return max(sizes)[1]


def disabled_guard_cost(loops: int = GUARD_LOOPS) -> float:
    """Per-call seconds of the hot-path guard while tracing is off.

    Times the exact idiom the hot paths use (global read, ``is not
    None`` test, ``with NULL_SPAN``); no baseline loop is subtracted,
    keeping the estimate conservative.
    """
    assert trace.ACTIVE is None, "guard cost must be timed with tracing off"
    start = time.perf_counter()
    for _ in range(loops):
        tracer = trace.ACTIVE
        span = tracer.span("x") if tracer is not None else trace.NULL_SPAN
        with span:
            pass
    return (time.perf_counter() - start) / loops


def test_disabled_overhead_under_two_percent():
    name = largest_case_name()
    circuit = map_circuit(get_case(name).network())
    input_stats = ScenarioA(seed=0).input_stats(circuit.inputs)
    gates = len(circuit)

    # Warm caches (template compilation, memoised indexes), then time
    # the untraced run — the denominator of the overhead fraction.
    search_circuit(circuit, input_stats, seed=0)
    start = time.perf_counter()
    result = search_circuit(circuit, input_stats, seed=0)
    search_s = time.perf_counter() - start

    # Touchpoint count: run the identical search with a tracer sinking
    # to devnull and read how many records it emitted.  Spans emit two
    # records per guard hit, so this over-counts the touchpoints.
    with open(os.devnull, "w") as sink:
        tracer = trace.enable(sink)
        try:
            start = time.perf_counter()
            search_circuit(circuit, input_stats, seed=0)
            traced_s = time.perf_counter() - start
            touchpoints = tracer.records
        finally:
            trace.disable()

    guard_s = disabled_guard_cost()
    overhead_s = touchpoints * guard_s
    fraction = overhead_s / search_s

    print(f"\n{name}: {gates} gates [disabled-tracing overhead]")
    print(f"  search wall-clock : {search_s:.2f}s untraced, "
          f"{traced_s:.2f}s traced to devnull ({touchpoints} records)")
    print(f"  guard cost        : {guard_s * 1e9:.0f} ns/call "
          f"({GUARD_LOOPS} loops)")
    print(f"  disabled overhead : {overhead_s * 1e3:.2f} ms upper bound = "
          f"{fraction * 100:.3f}% of the search "
          f"(required < {MAX_OVERHEAD * 100:.0f}%)")

    RESULTS.append({
        "circuit": name,
        "gates": gates,
        "trials": result.trials,
        "touchpoints": touchpoints,
        "guard_ns": guard_s * 1e9,
        "overhead_s": overhead_s,
        "search_s": search_s,
        "traced_s": traced_s,
        "overhead_fraction": fraction,
    })

    assert fraction < MAX_OVERHEAD


def test_write_artifact():
    """Emit the canonical JSON artifact when REPRO_OBS_BENCH_OUT is set."""
    out_path = os.environ.get("REPRO_OBS_BENCH_OUT")
    if not RESULTS:
        pytest.skip("the overhead test did not run")
    if not out_path:
        pytest.skip("set REPRO_OBS_BENCH_OUT to write the artifact")

    artifact = {
        "schema": SCHEMA_VERSION,
        "bench": {
            "name": "obs_overhead",
            "max_overhead": MAX_OVERHEAD,
        },
        "meta": environment_meta(),
        "results": RESULTS,
    }
    write_artifact(artifact, out_path)
    print(f"\nwrote JSON artifact to {out_path}")
