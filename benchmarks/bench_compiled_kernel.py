"""Acceptance benchmark: compiled flat-circuit kernels vs the object graph.

The claim under test (this PR's tentpole): lowering a circuit once
into :class:`repro.compiled.CompiledCircuit` structure-of-arrays form
makes from-scratch hot loops at least **5x faster** than the
object-graph path on large generated circuits —

* analytic (P, D) propagation (`propagate_stats(method="local")`), and
* the STA arrival sweep (`analyze_timing`) including its net-load
  summations —

while staying **bit-identical** (exact float equality on every net).

Run with::

    pytest -m bench benchmarks/bench_compiled_kernel.py -s

(the ``bench`` marker is deselected by default so tier-1 stays fast).
Environment knobs: ``REPRO_COMPILED_BENCH_NODES`` (random-logic node
count before mapping, default 1200), ``REPRO_COMPILED_BENCH_REPS``
(timed repetitions, default 5), ``REPRO_COMPILED_BENCH_OUT`` (write
the canonical JSON artifact there, ``repro bench`` style).
"""

import os
import time

import pytest

pytestmark = pytest.mark.bench

from repro.bench.generators import random_logic
from repro.bench.runner import SCHEMA_VERSION, environment_meta, \
    write_artifact
from repro.compiled import get_compiled
from repro.sim.stimulus import ScenarioA
from repro.stochastic.density import local_stats, propagate_stats
from repro.synth.mapper import map_circuit
from repro.timing.sta import analyze_timing

NODES = int(os.environ.get("REPRO_COMPILED_BENCH_NODES", "1200"))
REPS = int(os.environ.get("REPRO_COMPILED_BENCH_REPS", "5"))
REQUIRED_SPEEDUP = 5.0

RESULTS = []


@pytest.fixture(scope="module")
def setting():
    circuit = map_circuit(random_logic(28, NODES, seed=7))
    input_stats = ScenarioA(seed=0).input_stats(circuit.inputs)
    compiled = get_compiled(circuit)  # lowering happens once, up front
    return circuit, input_stats, compiled


def _timed(fn, reps):
    fn()  # warm: caches, compile-once tables
    start = time.perf_counter()
    for _ in range(reps):
        result = fn()
    return (time.perf_counter() - start) / reps, result


def test_stats_propagation_speedup(setting):
    circuit, input_stats, compiled = setting
    object_s, reference = _timed(lambda: local_stats(circuit, input_stats),
                                 REPS)
    compiled_s, flat = _timed(
        lambda: propagate_stats(circuit, input_stats, "local",
                                compiled=True),
        REPS,
    )
    assert flat == reference, "compiled propagation drifted bit-wise"
    speedup = object_s / compiled_s
    print(f"\n{circuit.name}: {len(circuit)} gates, "
          f"{len(compiled._levels)} levels [(P, D) propagation]")
    print(f"  object graph : {object_s * 1e3:8.1f}ms/run")
    print(f"  compiled     : {compiled_s * 1e3:8.1f}ms/run")
    print(f"  speedup: {speedup:.1f}x (required >= {REQUIRED_SPEEDUP:.0f}x)")
    RESULTS.append({
        "mode": "stats-propagation",
        "circuit": circuit.name,
        "gates": len(circuit),
        "reps": REPS,
        "object_s": object_s,
        "compiled_s": compiled_s,
        "speedup": speedup,
    })
    assert speedup >= REQUIRED_SPEEDUP


def test_timing_sweep_speedup(setting):
    circuit, _, compiled = setting
    object_s, reference = _timed(
        lambda: analyze_timing(circuit, compiled=False), REPS)
    compiled_s, flat = _timed(
        lambda: analyze_timing(circuit, compiled=True), REPS)
    assert flat.arrivals == reference.arrivals
    assert flat.delay == reference.delay
    assert flat.critical_path == reference.critical_path
    speedup = object_s / compiled_s
    print(f"\n{circuit.name}: {len(circuit)} gates [STA arrival sweep]")
    print(f"  object graph : {object_s * 1e3:8.1f}ms/run")
    print(f"  compiled     : {compiled_s * 1e3:8.1f}ms/run")
    print(f"  speedup: {speedup:.1f}x (required >= {REQUIRED_SPEEDUP:.0f}x)")
    RESULTS.append({
        "mode": "timing-sweep",
        "circuit": circuit.name,
        "gates": len(circuit),
        "reps": REPS,
        "object_s": object_s,
        "compiled_s": compiled_s,
        "speedup": speedup,
    })
    assert speedup >= REQUIRED_SPEEDUP


def test_write_artifact():
    """Emit the canonical JSON artifact when REPRO_COMPILED_BENCH_OUT is set."""
    out_path = os.environ.get("REPRO_COMPILED_BENCH_OUT")
    if not RESULTS:
        pytest.skip("the speedup tests did not run")
    if not out_path:
        pytest.skip("set REPRO_COMPILED_BENCH_OUT to write the artifact")
    artifact = {
        "schema": SCHEMA_VERSION,
        "bench": {
            "name": "compiled_kernel",
            "required_speedup": REQUIRED_SPEEDUP,
            "nodes": NODES,
        },
        "meta": environment_meta(),
        "results": RESULTS,
    }
    write_artifact(artifact, out_path)
    print(f"\nwrote JSON artifact to {out_path}")
