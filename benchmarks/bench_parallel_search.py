"""Acceptance benchmark: multi-process portfolio search scaling.

The claim under test (this PR's tentpole, parallel half): fanning the
annealing restart portfolio out over worker processes
(``search_circuit(restarts=R, jobs=N)`` / ``repro search --jobs N``)
scales — ``jobs=4`` beats ``jobs=1`` wall-clock by at least **2x** on
four restarts — while the merged result stays **byte-identical**: the
canonical JSON artifact (timing fields stripped) must not change with
the worker count.

The byte-stability half always runs; the wall-clock floor needs real
parallel hardware and is skipped below four CPUs (the weekly CI
runners have them).

Run with::

    pytest -m bench benchmarks/bench_parallel_search.py -s

(the ``bench`` marker is deselected by default so tier-1 stays fast).
Environment knobs: ``REPRO_PARALLEL_BENCH_NODES`` (random-logic node
count before mapping, default 180), ``REPRO_PARALLEL_BENCH_TRIALS``
(annealing trials per restart for the wall-clock floor, default 1200),
``REPRO_PARALLEL_BENCH_OUT`` (write the canonical JSON artifact there,
``repro bench`` style).
"""

import os
import time

import pytest

pytestmark = pytest.mark.bench

from repro.bench.generators import random_logic
from repro.bench.runner import (
    SCHEMA_VERSION,
    environment_meta,
    dumps_artifact,
    strip_timing,
    write_artifact,
)
from repro.incremental import search_circuit
from repro.sim.stimulus import ScenarioA
from repro.synth.mapper import map_circuit

NODES = int(os.environ.get("REPRO_PARALLEL_BENCH_NODES", "180"))
TRIALS = int(os.environ.get("REPRO_PARALLEL_BENCH_TRIALS", "1200"))
RESTARTS = 4
REQUIRED_SPEEDUP = 2.0
CPUS = os.cpu_count() or 1

RESULTS = []


@pytest.fixture(scope="module")
def setting():
    circuit = map_circuit(random_logic(20, NODES, seed=11))
    input_stats = ScenarioA(seed=0).input_stats(circuit.inputs)
    return circuit, input_stats


def _run(circuit, input_stats, jobs, trials):
    start = time.perf_counter()
    result = search_circuit(
        circuit, input_stats, strategy="anneal", objective="power",
        seed=0, restarts=RESTARTS, jobs=jobs, anneal_trials=trials,
    )
    return time.perf_counter() - start, result


def test_artifact_byte_stable_across_jobs(setting):
    """jobs=1 and jobs=4 must emit the identical canonical artifact."""
    circuit, input_stats = setting
    trials = max(50, TRIALS // 8)  # stability needs moves, not wall-clock
    _, serial = _run(circuit, input_stats, jobs=1, trials=trials)
    _, parallel = _run(circuit, input_stats, jobs=4, trials=trials)
    blob_serial = dumps_artifact(strip_timing(serial.to_artifact()))
    blob_parallel = dumps_artifact(strip_timing(parallel.to_artifact()))
    assert blob_serial == blob_parallel, \
        "portfolio artifact depends on the worker count"
    print(f"\n{circuit.name}: {len(circuit)} gates — jobs=1 and jobs=4 "
          f"artifacts byte-identical ({len(blob_serial)} bytes, "
          f"winner restart #{serial.restart_index})")
    RESULTS.append({
        "mode": "byte-stability",
        "circuit": circuit.name,
        "gates": len(circuit),
        "restarts": RESTARTS,
        "anneal_trials": trials,
        "artifact_bytes": len(blob_serial),
        "winner": serial.restart_index,
    })


@pytest.mark.skipif(
    CPUS < 4, reason=f"wall-clock floor needs >= 4 CPUs (have {CPUS})")
def test_parallel_portfolio_speedup(setting):
    circuit, input_stats = setting
    serial_s, serial = _run(circuit, input_stats, jobs=1, trials=TRIALS)
    parallel_s, parallel = _run(circuit, input_stats, jobs=4, trials=TRIALS)
    assert dumps_artifact(strip_timing(serial.to_artifact())) \
        == dumps_artifact(strip_timing(parallel.to_artifact()))

    speedup = serial_s / parallel_s
    print(f"\n{circuit.name}: {len(circuit)} gates, {RESTARTS} restarts x "
          f"{TRIALS} trials [portfolio annealing]")
    print(f"  jobs=1 : {serial_s:8.1f}s")
    print(f"  jobs=4 : {parallel_s:8.1f}s")
    print(f"  winner : restart #{serial.restart_index}, "
          f"{serial.reduction * 100:.1f}% power reduction "
          f"({len(serial.accepted)} moves)")
    print(f"  speedup: {speedup:.1f}x (required >= {REQUIRED_SPEEDUP:.0f}x)")
    RESULTS.append({
        "mode": "portfolio-anneal",
        "circuit": circuit.name,
        "gates": len(circuit),
        "restarts": RESTARTS,
        "anneal_trials": TRIALS,
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "speedup": speedup,
        "winner": serial.restart_index,
        "reduction": serial.reduction,
    })
    assert speedup >= REQUIRED_SPEEDUP


def test_write_artifact():
    """Emit the canonical JSON artifact when REPRO_PARALLEL_BENCH_OUT is set."""
    out_path = os.environ.get("REPRO_PARALLEL_BENCH_OUT")
    if not RESULTS:
        pytest.skip("the portfolio tests did not run")
    if not out_path:
        pytest.skip("set REPRO_PARALLEL_BENCH_OUT to write the artifact")
    artifact = {
        "schema": SCHEMA_VERSION,
        "bench": {
            "name": "parallel_search",
            "required_speedup": REQUIRED_SPEEDUP,
            "restarts": RESTARTS,
            "anneal_trials": TRIALS,
            "cpus": CPUS,
        },
        "meta": environment_meta(),
        "results": RESULTS,
    }
    write_artifact(artifact, out_path)
    print(f"\nwrote JSON artifact to {out_path}")
