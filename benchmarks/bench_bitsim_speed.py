"""Acceptance benchmark: bit-parallel sampling vs the event-driven
simulator for 10k-vector density estimation on the largest suite circuit.

The claim under test (this PR's tentpole): packing 1024 sample lanes per
Python big int makes Monte-Carlo (P, D) estimation at least 10x faster
than driving the zero-delay :class:`SwitchLevelSimulator` with the same
number of vectors — in practice the gap is two orders of magnitude.

Run with::

    pytest -m bench benchmarks/bench_bitsim_speed.py -s

(the ``bench`` marker is deselected by default so tier-1 stays fast;
``REPRO_BITSIM_BENCH_VECTORS`` shrinks the workload if needed).
"""

import os
import time

import pytest

from repro.bench.suite import benchmark_suite, get_case
from repro.sim.bitsim import BitParallelSimulator
from repro.sim.stimulus import ScenarioB
from repro.sim.switchsim import SwitchLevelSimulator
from repro.synth.mapper import map_circuit

VECTORS = int(os.environ.get("REPRO_BITSIM_BENCH_VECTORS", "10000"))
LANES = 1000
REQUIRED_SPEEDUP = 10.0


def largest_case_name() -> str:
    sizes = [
        (len(map_circuit(case.network())), case.name)
        for case in benchmark_suite("full")
    ]
    return max(sizes)[1]


@pytest.mark.bench
def test_bitsim_speedup_on_largest_circuit():
    name = largest_case_name()
    circuit = map_circuit(get_case(name).network())
    generator = ScenarioB(seed=0)
    input_stats = generator.input_stats(circuit.inputs)

    # Event-driven reference: settle the circuit at VECTORS clock edges.
    stimulus = generator.generate(circuit.inputs, cycles=VECTORS)
    start = time.perf_counter()
    settled = SwitchLevelSimulator(circuit, delay_mode="zero").run(stimulus)
    switchsim_s = time.perf_counter() - start

    # Bit-parallel: the same number of sampled vectors, LANES at a time.
    steps = max(2, VECTORS // LANES)
    start = time.perf_counter()
    simulator = BitParallelSimulator(circuit, lanes=LANES)
    report = simulator.run(input_stats, steps=steps, seed=0)
    bitsim_s = time.perf_counter() - start

    speedup = switchsim_s / bitsim_s
    print(f"\n{name}: {len(circuit)} gates, {VECTORS} vectors")
    print(f"  switch-level (zero delay): {switchsim_s:8.3f}s")
    print(f"  bit-parallel ({LANES}x{steps}):  {bitsim_s:8.3f}s")
    print(f"  speedup: {speedup:.1f}x (required >= {REQUIRED_SPEEDUP:.0f}x)")
    assert speedup >= REQUIRED_SPEEDUP

    # Both engines estimate the same settled activity: compare total
    # toggle mass (per-net Monte Carlo noise cancels in the sum).
    switch_total = sum(settled.net_transitions.values()) / VECTORS
    bit_total = sum(report.toggles.values()) / (LANES * (steps - 1))
    assert bit_total == pytest.approx(switch_total, rel=0.10)
