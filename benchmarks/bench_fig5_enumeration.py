"""E3 — paper Figures 4/5: the pivoting exploration of gate configurations.

Runs FIND_ALL_REORDERINGS on the Figure 5 gate (4 reorderings) and on
the whole library, asserting the pivot search discovers exactly the
brute-force configuration set — the property proved in the paper's
technical-report reference [5].
"""

from repro.analysis.report import format_table
from repro.core.reorder import enumerate_configurations, pivot_search
from repro.gates.library import default_library


def test_fig5_pivot_execution(benchmark):
    library = default_library()
    template = library["oai21"]

    configs = benchmark.pedantic(
        lambda: pivot_search(template), rounds=1, iterations=1
    )
    print()
    rows = [(i, str(c.pdn), str(c.pun)) for i, c in enumerate(configs)]
    print(format_table(("#", "PDN", "PUN"), rows,
                       title="Figure 5 - pivot search on y=(a1+a2)b"))
    # The paper's execution example discovers all four reorderings.
    assert len(configs) == 4
    assert configs[0].key() == template.default_config().key()


def test_pivot_search_complete_over_library(benchmark):
    library = default_library()

    def explore_all():
        return {
            t.name: {c.key() for c in pivot_search(t)} for t in library
        }

    discovered = benchmark.pedantic(explore_all, rounds=1, iterations=1)
    for template in library:
        brute = {c.key() for c in enumerate_configurations(template)}
        assert discovered[template.name] == brute, template.name
