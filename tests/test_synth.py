"""Tests for the synthesis substrates: SOP, AIG, cuts, mapper."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.generators import parity_tree, ripple_carry_adder
from repro.circuit.blif import parse_blif
from repro.circuit.logic import LogicNetwork
from repro.circuit.netlist import CircuitError
from repro.gates.library import default_library
from repro.sim.logicsim import check_equivalence, random_vectors
from repro.synth.aig import AIG, aig_from_logic_network, lit_node, lit_not, lit_phase
from repro.synth.cuts import enumerate_cuts
from repro.synth.mapper import PatternIndex, TechMapper, map_circuit
from repro.synth.sop import (
    cover_to_expr,
    cube_contains,
    cube_distance,
    merge_cubes,
    simplify_cover,
)

LIB = default_library()


class TestSop:
    def test_cube_contains(self):
        assert cube_contains("1--", "110")
        assert not cube_contains("110", "1--")
        assert cube_contains("---", "010")

    def test_cube_distance(self):
        assert cube_distance("1--", "11-") == 0  # '-' never opposes
        assert cube_distance("10-", "01-") == 2
        assert cube_distance("111", "110") == 1

    def test_merge_adjacent(self):
        assert merge_cubes("10-", "11-") == "1--"
        assert merge_cubes("111", "110") == "11-"
        assert merge_cubes("1--", "0-1") is None
        assert merge_cubes("abc"[:2] * 0 + "11", "11") == "11"  # identical

    def test_simplify_removes_contained(self):
        assert set(simplify_cover(["1--", "110"])) == {"1--"}

    def test_simplify_merges(self):
        result = simplify_cover(["100", "101", "110", "111"])
        assert set(result) == {"1--"}

    @given(st.lists(
        st.text(alphabet="01-", min_size=3, max_size=3), min_size=1, max_size=6
    ))
    @settings(max_examples=60, deadline=None)
    def test_simplify_preserves_function(self, patterns):
        variables = ("a", "b", "c")
        before = cover_to_expr(patterns, variables).to_truthtable(variables)
        after_cover = simplify_cover(patterns)
        after = cover_to_expr(after_cover, variables).to_truthtable(variables)
        assert before == after
        assert len(after_cover) <= len(set(patterns))


class TestAIG:
    def test_constant_folding(self):
        aig = AIG()
        a = aig.add_pi("a")
        assert aig.and_(a, 0) == 0
        assert aig.and_(a, 1) == a
        assert aig.and_(a, a) == a
        assert aig.and_(a, lit_not(a)) == 0

    def test_strashing_shares_nodes(self):
        aig = AIG()
        a, b = aig.add_pi("a"), aig.add_pi("b")
        assert aig.and_(a, b) == aig.and_(b, a)
        assert aig.num_ands == 1

    def test_or_xor_semantics(self):
        aig = AIG()
        a, b = aig.add_pi("a"), aig.add_pi("b")
        aig.add_po("or", aig.or_(a, b))
        aig.add_po("xor", aig.xor_(a, b))
        for va, vb in itertools.product([False, True], repeat=2):
            out = aig.evaluate({"a": va, "b": vb})
            assert out["or"] == (va or vb)
            assert out["xor"] == (va != vb)

    def test_balanced_many(self):
        aig = AIG()
        lits = [aig.add_pi(f"x{i}") for i in range(5)]
        aig.add_po("all", aig.and_many(lits))
        aig.add_po("any", aig.or_many(lits))
        env = {f"x{i}": True for i in range(5)}
        assert aig.evaluate(env) == {"all": True, "any": True}
        env["x3"] = False
        assert aig.evaluate(env) == {"all": False, "any": True}

    def test_from_logic_network_equivalent(self):
        network = ripple_carry_adder(3)
        aig = aig_from_logic_network(network)
        rng = np.random.default_rng(0)
        for vector in random_vectors(list(network.inputs), 40, rng):
            assert aig.evaluate(vector) == network.evaluate_outputs(vector)

    def test_cone_truthtable(self):
        aig = AIG()
        a, b, c = (aig.add_pi(x) for x in "abc")
        n1 = aig.and_(a, b)
        n2 = aig.and_(lit_not(n1), c)
        tt = aig.cone_truthtable(lit_node(n2), (lit_node(a) // 1, lit_node(b), lit_node(c)),
                                 ("x0", "x1", "x2"))
        # f = !(a&b) & c
        for m in range(8):
            va, vb, vc = bool(m & 1), bool(m & 2), bool(m & 4)
            assert tt.evaluate_index(m) == ((not (va and vb)) and vc)

    def test_cone_escape_detected(self):
        aig = AIG()
        a, b = aig.add_pi("a"), aig.add_pi("b")
        n = aig.and_(a, b)
        with pytest.raises(ValueError):
            aig.cone_truthtable(lit_node(n), (lit_node(a),), ("x0",))


class TestCuts:
    def test_pi_trivial_cut(self):
        aig = AIG()
        a = aig.add_pi("a")
        cuts = enumerate_cuts(aig)
        assert cuts[lit_node(a)] == [(lit_node(a),)]

    def test_and_cut_contains_fanin_pair(self):
        aig = AIG()
        a, b = aig.add_pi("a"), aig.add_pi("b")
        n = aig.and_(a, b)
        cuts = enumerate_cuts(aig)
        node = lit_node(n)
        assert (lit_node(a), lit_node(b)) in cuts[node]
        assert (node,) in cuts[node]

    def test_cut_size_bounded(self):
        network = ripple_carry_adder(4)
        aig = aig_from_logic_network(network)
        cuts = enumerate_cuts(aig, k=4, max_cuts=10)
        for node, node_cuts in cuts.items():
            for cut in node_cuts:
                assert len(cut) <= 4
            assert len(node_cuts) <= 11  # max_cuts + trivial

    def test_k_validation(self):
        with pytest.raises(ValueError):
            enumerate_cuts(AIG(), k=1)


class TestPatternIndex:
    def test_nand2_matches_with_phases(self):
        index = PatternIndex(LIB, {"nand2", "inv"})
        # f = !(x0 & x1): plain nand2 match.
        from repro.boolean.expr import parse_expr

        tt = parse_expr("!(x0 & x1)").to_truthtable(("x0", "x1"))
        match = index.lookup(2, tt.bits)
        assert match is not None and match.template.name == "nand2"
        # f = !(x0 & !x1): nand2 with one complemented pin.
        tt2 = parse_expr("!(x0 & !x1)").to_truthtable(("x0", "x1"))
        match2 = index.lookup(2, tt2.bits)
        assert match2 is not None and match2.template.name == "nand2"
        assert sum(match2.phases) == 1

    def test_aoi_matches_under_permutation(self):
        index = PatternIndex(LIB)
        from repro.boolean.expr import parse_expr

        # aoi21 with shuffled leaves: !((x2 & x0) | x1)
        tt = parse_expr("!((x2 & x0) | x1)").to_truthtable(("x0", "x1", "x2"))
        match = index.lookup(3, tt.bits)
        assert match is not None and match.template.name == "aoi21"

    def test_no_match_for_xor(self):
        index = PatternIndex(LIB)
        from repro.boolean.expr import parse_expr

        tt = parse_expr("x0 ^ x1 ^ x2").to_truthtable(("x0", "x1", "x2"))
        assert index.lookup(3, tt.bits) is None
        assert index.lookup(3, (~tt).bits) is None


class TestMapper:
    @pytest.mark.parametrize("builder", [
        lambda: ripple_carry_adder(2),
        lambda: parity_tree(4),
    ])
    def test_mapping_is_equivalent(self, builder):
        network = builder()
        circuit = map_circuit(network)
        assert check_equivalence(network, circuit)

    def test_po_names_preserved(self):
        network = ripple_carry_adder(2)
        circuit = map_circuit(network)
        assert set(circuit.outputs) == set(network.outputs)
        assert set(circuit.inputs) == set(network.inputs)

    def test_buffer_output_handled(self):
        """A PO that is just a copy of a PI needs a double inverter."""
        text = ".model buf\n.inputs a\n.outputs y\n.names a y\n1 1\n.end\n"
        network = parse_blif(text)
        circuit = map_circuit(network)
        assert check_equivalence(network, circuit)
        assert len(circuit) == 2  # two inverters

    def test_shared_output_functions(self):
        """Two POs computing the same function both get driven."""
        text = (".model twin\n.inputs a b\n.outputs y z\n"
                ".names a b y\n11 1\n.names a b z\n11 1\n.end\n")
        network = parse_blif(text)
        circuit = map_circuit(network)
        assert check_equivalence(network, circuit)

    def test_constant_output_rejected(self):
        text = ".model k\n.inputs a\n.outputs y\n.names y\n1\n.end\n"
        network = parse_blif(text)
        with pytest.raises(CircuitError):
            map_circuit(network)

    def test_inverted_output(self):
        text = ".model n\n.inputs a\n.outputs y\n.names a y\n0 1\n.end\n"
        network = parse_blif(text)
        circuit = map_circuit(network)
        assert check_equivalence(network, circuit)
        assert len(circuit) == 1
        assert circuit.gates[0].template.name == "inv"

    def test_restricted_library_naive_mapping(self):
        """nand2/inv-only mapping still works (the guaranteed fallback)."""
        network = ripple_carry_adder(2)
        circuit = map_circuit(network, k=2, gate_names={"nand2", "inv"})
        assert check_equivalence(network, circuit)
        assert set(circuit.gate_count_by_template()) <= {"nand2", "inv"}

    def test_rich_library_maps_smaller(self):
        network = ripple_carry_adder(4)
        rich = map_circuit(network)
        naive = map_circuit(network, k=2, gate_names={"nand2", "inv"})
        assert rich.transistor_count() < naive.transistor_count()

    def test_aoi_gates_actually_used(self):
        network = ripple_carry_adder(8)
        circuit = map_circuit(network)
        mix = circuit.gate_count_by_template()
        assert any(name.startswith(("aoi", "oai")) for name in mix)

    @given(st.integers(min_value=0, max_value=2**20 - 1))
    @settings(max_examples=15, deadline=None)
    def test_random_two_level_functions_map_correctly(self, bits):
        """Any 3-input single-output function maps and stays equivalent."""
        variables = ("a", "b", "c")
        cubes = []
        for m in range(8):
            if (bits >> m) & 1:
                cubes.append("".join(
                    "1" if (m >> j) & 1 else "0" for j in range(3)
                ))
        if not cubes or len(cubes) == 8:
            return  # constant functions are rejected by design
        network = LogicNetwork("rand")
        for v in variables:
            network.add_input(v)
        network.add_cover("y", variables, tuple(cubes))
        network.add_output("y")
        circuit = map_circuit(network)
        assert check_equivalence(network, circuit)
