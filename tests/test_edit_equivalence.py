"""Property test: edit-sequence equivalence (incremental vs from-scratch).

Drives random sequences of the three supported ECO edits — gate
reorderings, same-arity template swaps, and input-statistics changes —
through a :class:`repro.incremental.StatsCache` and asserts after
**every** edit that the incrementally maintained statistics are
bit-identical (exact float equality) to a from-scratch recomputation of
the edited circuit, for both backends.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.suite import get_case
from repro.gates.library import default_library
from repro.incremental import SampledBackend, StatsCache
from repro.sim.stimulus import ScenarioA
from repro.stochastic.density import propagate_stats
from repro.stochastic.signal import SignalStats
from repro.synth.mapper import map_circuit

#: Same-pin-tuple template groups — the swap candidates for retemplate
#: edits (positional rebinding keeps any same-arity pair valid; using
#: identical pin tuples keeps the scenario realistic).
_SWAP_GROUPS = {}
for _template in default_library():
    _SWAP_GROUPS.setdefault(_template.pins, []).append(_template.name)
_SWAP_GROUPS = {
    pins: names for pins, names in _SWAP_GROUPS.items() if len(names) > 1
}


@pytest.fixture(scope="module")
def master():
    circuit = map_circuit(get_case("rca4").network())
    stats = ScenarioA(seed=5).input_stats(circuit.inputs)
    return circuit, stats


def edit_specs():
    """One abstract edit: (kind, selector, value) integer triples.

    Kept abstract (plain integers) so hypothesis shrinks well; they are
    resolved against the concrete circuit inside the test.
    """
    return st.tuples(
        st.sampled_from(["reorder", "retemplate", "input-stats"]),
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=0, max_value=10_000),
    )


def apply_spec(circuit, cache, input_stats, spec):
    """Resolve and apply one abstract edit; returns the live input map."""
    kind, selector, value = spec
    if kind == "reorder":
        gates = [g for g in circuit.gates if g.template.num_configurations() > 1]
        gate = gates[selector % len(gates)]
        configurations = gate.template.configurations()
        circuit.set_config(gate.name, configurations[value % len(configurations)])
    elif kind == "retemplate":
        gates = [g for g in circuit.gates if g.template.pins in _SWAP_GROUPS]
        gate = gates[selector % len(gates)]
        group = _SWAP_GROUPS[gate.template.pins]
        others = [name for name in group if name != gate.template.name]
        circuit.set_template(gate.name, others[value % len(others)])
    else:
        net = circuit.inputs[selector % len(circuit.inputs)]
        probability = 0.05 + 0.9 * ((value % 97) / 96.0)
        density = 1.0e4 * (1 + value % 89)
        input_stats[net] = SignalStats(probability, density)
        cache.set_input_stats(net, input_stats[net])
    return input_stats


class TestAnalyticEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(edit_specs(), min_size=1, max_size=8))
    def test_incremental_matches_scratch_after_every_edit(self, master, specs):
        circuit_master, stats = master
        circuit = circuit_master.copy()
        current = dict(stats)
        with StatsCache(circuit, current) as cache:
            for spec in specs:
                current = apply_spec(circuit, cache, current, spec)
                assert cache.stats() == propagate_stats(circuit, current, "local")


class TestSampledEquivalence:
    LANES, STEPS, SEED = 64, 12, 2

    @settings(max_examples=8, deadline=None)
    @given(st.lists(edit_specs(), min_size=1, max_size=5))
    def test_incremental_matches_scratch_after_every_edit(self, master, specs):
        circuit_master, stats = master
        circuit = circuit_master.copy()
        current = dict(stats)
        # dt fixed below any dwell the edit vocabulary can produce
        # (P in [0.05, 0.95], D <= 8.9e5 -> dwell >= 2*0.05/8.9e5).
        dt = 1.0e-8
        with StatsCache(circuit, current, backend="sampled", lanes=self.LANES,
                        steps=self.STEPS, dt=dt, seed=self.SEED) as cache:
            for spec in specs:
                current = apply_spec(circuit, cache, current, spec)
                reference = SampledBackend(
                    lanes=self.LANES, steps=self.STEPS, dt=dt, seed=self.SEED,
                ).full(circuit, current)
                assert cache.stats() == reference
