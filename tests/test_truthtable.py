"""Unit and property tests for the dense truth-table engine."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.boolean.truthtable import MAX_VARS, TruthTable

VARS3 = ("a", "b", "c")


def tt_strategy(variables=VARS3):
    n = 1 << len(variables)
    return st.integers(min_value=0, max_value=(1 << n) - 1).map(
        lambda bits: TruthTable(variables, bits)
    )


class TestConstruction:
    def test_constant_false(self):
        tt = TruthTable.constant(VARS3, False)
        assert tt.bits == 0
        assert tt.is_constant() and tt.constant_value() is False

    def test_constant_true(self):
        tt = TruthTable.constant(VARS3, True)
        assert tt.bits == 0xFF
        assert tt.is_constant() and tt.constant_value() is True

    def test_variable_projection(self):
        for j, name in enumerate(VARS3):
            tt = TruthTable.variable(VARS3, name)
            for i in range(8):
                assert tt.evaluate_index(i) == bool((i >> j) & 1)

    def test_from_function_majority(self):
        tt = TruthTable.from_function(
            VARS3, lambda env: (env["a"] + env["b"] + env["c"]) >= 2
        )
        assert tt.count_minterms() == 4
        assert tt.evaluate({"a": True, "b": True, "c": False})
        assert not tt.evaluate({"a": True, "b": False, "c": False})

    def test_duplicate_vars_rejected(self):
        with pytest.raises(ValueError):
            TruthTable(("a", "a"), 0)

    def test_too_many_vars_rejected(self):
        with pytest.raises(ValueError):
            TruthTable(tuple(f"v{i}" for i in range(MAX_VARS + 1)), 0)

    def test_immutable(self):
        tt = TruthTable.constant(VARS3, True)
        with pytest.raises(AttributeError):
            tt.bits = 0

    def test_bits_masked_to_width(self):
        tt = TruthTable(("a",), 0b111)  # only 2 bits are meaningful
        assert tt.bits == 0b11


class TestConnectives:
    def test_demorgan(self):
        a = TruthTable.variable(VARS3, "a")
        b = TruthTable.variable(VARS3, "b")
        assert ~(a & b) == (~a | ~b)
        assert ~(a | b) == (~a & ~b)

    def test_xor_as_or_of_ands(self):
        a = TruthTable.variable(VARS3, "a")
        b = TruthTable.variable(VARS3, "b")
        assert (a ^ b) == ((a & ~b) | (~a & b))

    def test_mismatched_vars_raise(self):
        a = TruthTable.variable(("a",), "a")
        b = TruthTable.variable(("b",), "b")
        with pytest.raises(ValueError):
            _ = a & b

    @given(tt_strategy(), tt_strategy())
    def test_and_is_intersection(self, f, g):
        for i in range(8):
            assert (f & g).evaluate_index(i) == (
                f.evaluate_index(i) and g.evaluate_index(i)
            )

    @given(tt_strategy())
    def test_double_negation(self, f):
        assert ~~f == f


class TestCofactorsAndDifference:
    def test_cofactor_shannon_expansion(self):
        f = TruthTable.from_function(VARS3, lambda e: e["a"] and (e["b"] or e["c"]))
        a = TruthTable.variable(VARS3, "a")
        expansion = (a & f.cofactor("a", True)) | (~a & f.cofactor("a", False))
        assert expansion == f

    def test_cofactor_removes_dependence(self):
        f = TruthTable.from_function(VARS3, lambda e: e["a"] != e["b"])
        assert not f.cofactor("a", True).depends_on("a")

    def test_boolean_difference_xor(self):
        f = TruthTable.from_function(VARS3, lambda e: e["a"] != e["b"])
        # XOR propagates every transition: difference is constant 1.
        assert f.boolean_difference("a").is_constant()
        assert f.boolean_difference("a").constant_value() is True

    def test_boolean_difference_and(self):
        f = TruthTable.from_function(VARS3, lambda e: e["a"] and e["b"])
        diff = f.boolean_difference("a")
        assert diff == TruthTable.variable(VARS3, "b")

    def test_support(self):
        f = TruthTable.from_function(VARS3, lambda e: e["a"] and e["c"])
        assert f.support() == ("a", "c")

    @given(tt_strategy())
    def test_difference_independent_of_variable(self, f):
        diff = f.boolean_difference("b")
        assert not diff.depends_on("b")

    @given(tt_strategy())
    @settings(max_examples=50)
    def test_shannon_expansion_property(self, f):
        for name in VARS3:
            v = TruthTable.variable(VARS3, name)
            assert ((v & f.cofactor(name, True)) | (~v & f.cofactor(name, False))) == f


class TestExpandRename:
    def test_expand_to_superset(self):
        f = TruthTable.from_function(("a", "b"), lambda e: e["a"] and e["b"])
        g = f.expand(("a", "b", "c"))
        for env in itertools.product([False, True], repeat=3):
            assignment = dict(zip(("a", "b", "c"), env))
            assert g.evaluate(assignment) == (assignment["a"] and assignment["b"])

    def test_expand_reorder(self):
        f = TruthTable.from_function(("a", "b"), lambda e: e["a"] and not e["b"])
        g = f.expand(("b", "a"))
        for env in itertools.product([False, True], repeat=2):
            assignment = dict(zip(("a", "b"), env))
            assert g.evaluate(assignment) == f.evaluate(assignment)

    def test_expand_drop_essential_raises(self):
        f = TruthTable.variable(("a", "b"), "a")
        with pytest.raises(ValueError):
            f.expand(("b",))

    def test_expand_drop_inessential_ok(self):
        f = TruthTable.variable(("a", "b"), "a")
        g = f.expand(("a",))
        assert g == TruthTable.variable(("a",), "a")

    def test_rename(self):
        f = TruthTable.variable(("a", "b"), "a")
        g = f.rename({"a": "x", "b": "y"})
        assert g.vars == ("x", "y")
        assert g == TruthTable.variable(("x", "y"), "x")

    def test_permute(self):
        f = TruthTable.from_function(("a", "b"), lambda e: e["a"] and not e["b"])
        g = f.permute((1, 0))
        assert g.vars == ("b", "a")
        assert g.evaluate({"a": True, "b": False}) is True


class TestProbability:
    def test_constant_probabilities(self):
        assert TruthTable.constant(VARS3, True).probability({v: 0.3 for v in VARS3}) == 1.0
        assert TruthTable.constant(VARS3, False).probability({v: 0.3 for v in VARS3}) == 0.0

    def test_variable_probability(self):
        tt = TruthTable.variable(VARS3, "b")
        assert tt.probability({"a": 0.1, "b": 0.7, "c": 0.9}) == pytest.approx(0.7)

    def test_and_probability_independent(self):
        f = TruthTable.from_function(VARS3, lambda e: e["a"] and e["b"])
        assert f.probability({"a": 0.5, "b": 0.4, "c": 0.9}) == pytest.approx(0.2)

    def test_or_probability(self):
        f = TruthTable.from_function(VARS3, lambda e: e["a"] or e["b"])
        p = f.probability({"a": 0.5, "b": 0.5, "c": 0.1})
        assert p == pytest.approx(0.75)

    def test_out_of_range_raises(self):
        tt = TruthTable.variable(VARS3, "a")
        with pytest.raises(ValueError):
            tt.probability({"a": 1.5, "b": 0.5, "c": 0.5})

    @given(
        tt_strategy(),
        st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=3, max_size=3),
    )
    @settings(max_examples=50)
    def test_probability_matches_enumeration(self, f, ps):
        probs = dict(zip(VARS3, ps))
        expected = 0.0
        for i in range(8):
            w = 1.0
            for j, v in enumerate(VARS3):
                w *= probs[v] if (i >> j) & 1 else 1.0 - probs[v]
            if f.evaluate_index(i):
                expected += w
        assert f.probability(probs) == pytest.approx(expected, abs=1e-12)

    @given(tt_strategy(), st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=40)
    def test_complement_probability(self, f, p):
        probs = {v: p for v in VARS3}
        assert f.probability(probs) + (~f).probability(probs) == pytest.approx(1.0)
