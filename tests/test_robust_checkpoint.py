"""Tests for the crash-safe primitives (`repro.robust.atomic` / `.checkpoint`)."""

import json
import os

import pytest

from repro.robust import (
    CHECKPOINT_SCHEMA,
    CheckpointError,
    FaultInjected,
    atomic_write_text,
    dumps_checkpoint,
    load_checkpoint,
    save_checkpoint,
)


class TestAtomicWrite:
    def test_writes_text(self, tmp_path):
        path = tmp_path / "out.json"
        atomic_write_text(str(path), "hello\n")
        assert path.read_text() == "hello\n"

    def test_replaces_existing(self, tmp_path):
        path = tmp_path / "out.json"
        path.write_text("old")
        atomic_write_text(str(path), "new\n")
        assert path.read_text() == "new\n"

    def test_creates_directories(self, tmp_path):
        path = tmp_path / "a" / "b" / "out.json"
        atomic_write_text(str(path), "x\n")
        assert path.read_text() == "x\n"

    def test_no_temp_file_left_behind(self, tmp_path):
        path = tmp_path / "out.json"
        atomic_write_text(str(path), "x\n")
        assert os.listdir(tmp_path) == ["out.json"]


class TestCheckpointContainer:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "ck.json")
        payload = {"kind": "search", "accepted": [1, 2, 3], "power": 0.125}
        save_checkpoint(path, payload)
        assert load_checkpoint(path) == payload

    def test_floats_round_trip_exactly(self, tmp_path):
        path = str(tmp_path / "ck.json")
        values = [0.1, 1.0 / 3.0, 2.2250738585072014e-308, 1e300]
        save_checkpoint(path, {"kind": "x", "values": values})
        assert load_checkpoint(path)["values"] == values

    def test_container_shape(self):
        text = dumps_checkpoint({"kind": "search"})
        container = json.loads(text)
        assert container["schema"] == CHECKPOINT_SCHEMA
        assert container["payload"] == {"kind": "search"}
        assert isinstance(container["crc"], int)

    def test_missing_file_is_oserror(self, tmp_path):
        with pytest.raises(OSError):
            load_checkpoint(str(tmp_path / "nope.json"))

    def test_kind_mismatch_rejected(self, tmp_path):
        path = str(tmp_path / "ck.json")
        save_checkpoint(path, {"kind": "portfolio"})
        with pytest.raises(CheckpointError, match="kind"):
            load_checkpoint(path, expect_kind="search")

    def test_schema_mismatch_rejected(self, tmp_path):
        path = str(tmp_path / "ck.json")
        container = json.loads(dumps_checkpoint({"kind": "search"}))
        container["schema"] = 99
        (tmp_path / "ck.json").write_text(json.dumps(container))
        with pytest.raises(CheckpointError, match="schema"):
            load_checkpoint(path)

    def test_corrupted_payload_rejected(self, tmp_path):
        path = str(tmp_path / "ck.json")
        container = json.loads(dumps_checkpoint({"kind": "search", "n": 1}))
        container["payload"]["n"] = 2  # CRC now stale
        (tmp_path / "ck.json").write_text(json.dumps(container))
        with pytest.raises(CheckpointError, match="checksum"):
            load_checkpoint(path)

    def test_non_container_rejected(self, tmp_path):
        path = str(tmp_path / "ck.json")
        (tmp_path / "ck.json").write_text("[1, 2, 3]\n")
        with pytest.raises(CheckpointError):
            load_checkpoint(path)


class TestTornCheckpoint:
    """The tear-checkpoint fault: a non-atomic writer dying mid-write."""

    @pytest.mark.parametrize("torn_at", [0, 1, 10, 40])
    def test_torn_file_rejected(self, tmp_path, monkeypatch, torn_at):
        path = str(tmp_path / "ck.json")
        monkeypatch.setenv("REPRO_FAULTS", f"tear-checkpoint={torn_at}")
        with pytest.raises(FaultInjected):
            save_checkpoint(path, {"kind": "search", "accepted": [1, 2]})
        assert os.path.exists(path)
        with pytest.raises((CheckpointError, OSError)):
            load_checkpoint(path)

    def test_atomic_writer_never_tears(self, tmp_path, monkeypatch):
        """Without the fault the same payload lands whole."""
        path = str(tmp_path / "ck.json")
        payload = {"kind": "search", "accepted": [1, 2]}
        save_checkpoint(path, payload)
        assert load_checkpoint(path) == payload
