"""Cross-engine equivalence: sampled vs analytic (P, D) estimators.

The bit-parallel Monte Carlo engine must converge, within binomial
confidence bounds, to :func:`local_probabilities` on fanout-free
circuits (where the independence assumption is exact) and to
:func:`exact_probabilities` on reconvergent circuits; its density
estimates must track the event-driven simulator's zero-delay activity.
All runs are seeded and deterministic.
"""

import functools
import math

import pytest

from repro.bench.suite import benchmark_suite, get_case
from repro.sim.bitsim import BitParallelSimulator, sampled_stats
from repro.sim.stimulus import ScenarioA, ScenarioB
from repro.sim.switchsim import SwitchLevelSimulator
from repro.stochastic.probability import exact_probabilities, local_probabilities
from repro.stochastic.signal import SignalStats
from repro.synth.mapper import map_circuit

#: Small suite circuits (kept cheap to map and BDD-able for the exact
#: engine); the fanout-free ones are asserted against the local engine,
#: the reconvergent ones against the exact engine.
SMALL_CASES = ("c17", "maj3", "xor5", "fa1", "dec3", "mux8", "parity8", "rca4")

LANES = 4096


@functools.lru_cache(maxsize=None)
def mapped(name):
    """Technology mapping is the slow part of these tests; share it."""
    return map_circuit(get_case(name).network())


def is_fanout_free(circuit) -> bool:
    """True when every net drives at most one gate pin."""
    return all(len(circuit.fanout(net)) <= 1 for net in circuit.nets())


def binomial_bound(p: float, samples: int, sigmas: float = 3.0) -> float:
    """``sigmas``-sigma half-width of a binomial proportion estimate."""
    return max(sigmas * math.sqrt(p * (1.0 - p) / samples), sigmas / samples)


def sampled_probabilities(circuit, input_probs, seed):
    """One stationary bit-parallel settle: P estimates on LANES samples."""
    stats = {
        net: SignalStats(input_probs[net], 0.0) for net in circuit.inputs
    }
    report = BitParallelSimulator(circuit, lanes=LANES).run(
        stats, steps=1, seed=seed
    )
    return {net: report.probability(net) for net in circuit.nets()}


@pytest.mark.parametrize("name", SMALL_CASES)
def test_sampled_probability_matches_analytic_engine(name):
    circuit = mapped(name)
    input_probs = {
        net: stats.probability
        for net, stats in ScenarioA(seed=17).input_stats(circuit.inputs).items()
    }
    if is_fanout_free(circuit):
        reference = local_probabilities(circuit, input_probs)
    else:
        reference = exact_probabilities(circuit, input_probs)
    measured = sampled_probabilities(circuit, input_probs, seed=23)
    for net in circuit.nets():
        bound = binomial_bound(reference[net], LANES)
        assert abs(measured[net] - reference[net]) <= bound, (
            f"{name}:{net} sampled {measured[net]:.4f} vs "
            f"reference {reference[net]:.4f} (3-sigma bound {bound:.4f})"
        )


def fanout_free_tree(depth: int, gate: str = "nand2"):
    """A balanced fanout-free tree of two-input library gates.

    Technology mapping shares logic, so no mapped suite circuit stays
    fanout-free; these gate-level trees exercise the branch where the
    local engine is exact (and would cover any suite circuit that maps
    fanout-free in the future — the parametrised test above routes on
    :func:`is_fanout_free` automatically).
    """
    from repro.circuit.netlist import Circuit
    from repro.gates.library import default_library

    circuit = Circuit(f"tree{depth}", default_library())
    leaves = 1 << depth
    for k in range(leaves):
        circuit.add_input(f"x{k}")
    level = [f"x{k}" for k in range(leaves)]
    counter = 0
    while len(level) > 1:
        nxt = []
        for a, b in zip(level[::2], level[1::2]):
            net = f"t{counter}"
            circuit.add_gate(f"g{counter}", gate, {"a": a, "b": b}, net)
            nxt.append(net)
            counter += 1
        level = nxt
    circuit.add_output(level[0])
    return circuit


@pytest.mark.parametrize("depth,gate", [(2, "nand2"), (3, "nand2"), (3, "nor2")])
def test_sampled_matches_local_on_fanout_free_trees(depth, gate):
    circuit = fanout_free_tree(depth, gate)
    assert is_fanout_free(circuit)
    input_probs = {
        net: stats.probability
        for net, stats in ScenarioA(seed=41).input_stats(circuit.inputs).items()
    }
    reference = local_probabilities(circuit, input_probs)
    measured = sampled_probabilities(circuit, input_probs, seed=101)
    for net in circuit.nets():
        bound = binomial_bound(reference[net], LANES)
        assert abs(measured[net] - reference[net]) <= bound


def test_local_equals_exact_on_fanout_free():
    """Sanity of the reference split: local is exact without fanout."""
    circuit = fanout_free_tree(3)
    probs = {net: 0.4 for net in circuit.inputs}
    local = local_probabilities(circuit, probs)
    exact = exact_probabilities(circuit, probs)
    for net in circuit.nets():
        assert local[net] == pytest.approx(exact[net], abs=1e-9)


def test_no_mapped_suite_circuit_is_fanout_free():
    """Documents why the tree circuits above exist: mapping shares logic,
    so the suite's small circuits all reconverge (and are therefore
    checked against the exact engine instead)."""
    assert not any(is_fanout_free(mapped(name)) for name in SMALL_CASES)


@pytest.mark.parametrize("name", ("c17", "fa1", "rca4"))
def test_sampled_density_tracks_zero_delay_simulator(name):
    """Acceptance check: bitsim densities agree with the event-driven
    simulator in zero-delay mode on identical vectors (c17 + generator
    circuits)."""
    circuit = mapped(name)
    stimulus = ScenarioB(seed=31).generate(circuit.inputs, cycles=300)
    settled = SwitchLevelSimulator(circuit, delay_mode="zero").run(stimulus)
    report = BitParallelSimulator(circuit, lanes=1).run_stimulus(stimulus)
    assert report.toggles == settled.net_transitions
    for net in circuit.nets():
        measured = settled.measured_stats(net)
        # Identical toggle counts over the same observation window mean
        # identical densities up to the window-length convention.
        assert report.toggles[net] / stimulus.duration == pytest.approx(
            measured.density, rel=1e-9, abs=1e-9
        )
        # Replay probabilities are time-weighted over the inter-event
        # intervals, so they match the event-driven measurement too.
        assert report.measured_stats(net).probability == pytest.approx(
            measured.probability, rel=1e-9, abs=1e-9
        )


@pytest.mark.slow
def test_sampled_stats_full_quick_subset_consistency():
    """sampled_stats stays within loose MC bounds of local_stats on the
    whole quick subset (a smoke-level sweep across circuit families)."""
    from repro.stochastic.density import local_stats

    for case in benchmark_suite("quick"):
        circuit = map_circuit(case.network())
        input_stats = ScenarioB(seed=5).input_stats(circuit.inputs)
        sampled = sampled_stats(circuit, input_stats, lanes=1024, steps=24, seed=13)
        local = local_stats(circuit, input_stats)
        for net in circuit.inputs:
            assert sampled[net].probability == pytest.approx(
                local[net].probability, abs=0.06
            )
            assert sampled[net].density == pytest.approx(
                local[net].density, rel=0.25
            )
