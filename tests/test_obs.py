"""Tests for the observability layer (:mod:`repro.obs`).

The two contracts that make instrumentation safe to leave in hot paths:

* **off means off** — with no tracer enabled the guard pattern touches
  nothing and the engine behaves identically;
* **tracing never touches artifacts** — enabling a tracer must not
  perturb a single byte of any result artifact (timestamps exist only
  in the trace stream).

Plus the mechanics: span nesting depths, exception-safe span closure
(a raising WhatIf body must still emit the E record), fork-safety via
the pid guard, byte-stable metrics snapshots, and the summarizer's
deterministic reduction.
"""

import io
import json

import pytest

from repro.bench.generators import ripple_carry_adder
from repro.bench.runner import dumps_artifact, strip_timing
from repro.incremental import StatsCache, WhatIf, search_circuit
from repro.incremental.eco import resolve_edit
from repro.obs import metrics, progress, trace
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.summarize import (
    render_summary,
    summarize_file,
    summarize_records,
)
from repro.sim.stimulus import ScenarioA
from repro.synth.mapper import map_circuit


@pytest.fixture(autouse=True)
def _no_leaked_tracer():
    """Every test starts and ends with tracing and progress off."""
    trace.disable()
    progress.disable()
    yield
    trace.disable()
    progress.disable()


@pytest.fixture(scope="module")
def setting():
    circuit = map_circuit(ripple_carry_adder(3))
    input_stats = ScenarioA(seed=0).input_stats(circuit.inputs)
    return circuit, input_stats


def _records(sink: io.StringIO):
    return [json.loads(line) for line in sink.getvalue().splitlines()]


def _reorderable_gates(circuit):
    """Names of gates whose template offers at least one reordering."""
    return [gate.name for gate in circuit.gates
            if len(gate.template.configurations()) > 1]


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
class TestMetrics:
    def test_counter_inc_and_since(self):
        counter = Counter("work")
        counter.inc()
        counter.inc(41)
        assert counter.value == 42
        checkpoint = counter.value
        counter.inc(8)
        assert counter.since(checkpoint) == 8
        assert counter.snapshot() == 50

    def test_gauge_tracks_last_value(self):
        gauge = Gauge("depth")
        gauge.set(3.0)
        gauge.set(1.5)
        assert gauge.snapshot() == 1.5

    def test_histogram_fixed_edges_byte_stable(self):
        one = Histogram("sizes", edges=(1.0, 2.0, 4.0))
        two = Histogram("sizes", edges=(1.0, 2.0, 4.0))
        for h in (one, two):
            for value in (0.5, 1.0, 3.0, 100.0):
                h.observe(value)
        assert json.dumps(one.snapshot(), sort_keys=True) == \
            json.dumps(two.snapshot(), sort_keys=True)
        # bisect_right: 1.0 lands above the 1.0 edge; 100.0 overflows.
        assert one.counts == [1, 1, 1, 1]
        assert one.count == 4

    def test_histogram_rejects_bad_edges(self):
        with pytest.raises(ValueError):
            Histogram("bad", edges=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("bad", edges=())

    def test_registry_get_or_create_and_kind_clash(self):
        registry = MetricsRegistry()
        counter = registry.counter("a")
        assert registry.counter("a") is counter
        with pytest.raises(TypeError):
            registry.gauge("a")
        registry.histogram("h")
        assert list(registry) == ["a", "h"]
        snapshot = registry.snapshot()
        assert list(snapshot) == ["a", "h"]

    def test_cache_counters_back_result_fields(self, setting):
        circuit, input_stats = setting
        with StatsCache(circuit.copy(), input_stats) as cache:
            cache.total_power()
            gate = _reorderable_gates(cache.circuit)[0]
            with WhatIf(cache) as trial:
                trial.apply(resolve_edit(cache.circuit,
                                         {"op": "reorder", "gate": gate,
                                          "config": 1}))
                trial.power()
            assert cache.gates_repropagated == \
                cache.metrics.counter("stats.gates_repropagated").value
            assert cache.refresh_count == \
                cache.metrics.counter("stats.refresh_count").value
            assert cache.gates_repropagated > 0


# ----------------------------------------------------------------------
# Tracer mechanics
# ----------------------------------------------------------------------
class TestTracer:
    def test_disabled_is_null(self):
        assert trace.ACTIVE is None
        assert not trace.enabled()
        assert trace.span("anything", key=1) is trace.NULL_SPAN
        trace.instant("anything")  # no-op, no error

    def test_span_records_and_nesting_depths(self):
        sink = io.StringIO()
        trace.enable(sink)
        with trace.span("outer", kind="test"):
            with trace.span("inner"):
                pass
            with trace.span("inner"):
                trace.instant("tick", n=1)
        trace.disable()
        records = _records(sink)
        events = [(r["ev"], r["name"], r["depth"]) for r in records]
        assert events == [
            ("B", "outer", 0),
            ("B", "inner", 1), ("E", "inner", 1),
            ("B", "inner", 1), ("I", "tick", 2), ("E", "inner", 1),
            ("E", "outer", 0),
        ]
        assert records[0]["attrs"] == {"kind": "test"}
        assert all(r["ts_ns"] >= 0 for r in records)
        ends = [r for r in records if r["ev"] == "E"]
        assert all(r["dur_ns"] >= 0 for r in ends)

    def test_note_lands_on_end_record(self):
        sink = io.StringIO()
        trace.enable(sink)
        with trace.span("work") as span:
            span.note(route="batch")
            span.note(extra=2)
        trace.disable()
        begin, end = _records(sink)
        assert "attrs" not in begin
        assert end["attrs"] == {"route": "batch", "extra": 2}

    def test_raising_body_still_closes_span(self):
        sink = io.StringIO()
        trace.enable(sink)
        with pytest.raises(RuntimeError):
            with trace.span("doomed"):
                raise RuntimeError("boom")
        trace.disable()
        begin, end = _records(sink)
        assert end["ev"] == "E" and end["error"] is True
        summary = summarize_records([begin, end])
        assert summary.unclosed == []
        assert summary.spans[0].errors == 1

    def test_raising_whatif_trial_closes_spans(self, setting):
        """A raising WhatIf body rolls back AND the trace stays balanced."""
        circuit, input_stats = setting
        sink = io.StringIO()
        with StatsCache(circuit.copy(), input_stats) as cache:
            baseline = cache.total_power()
            gate = _reorderable_gates(cache.circuit)[0]
            edit = resolve_edit(cache.circuit,
                                {"op": "reorder", "gate": gate, "config": 1})
            trace.enable(sink)
            with pytest.raises(RuntimeError):
                with trace.span("trial"):
                    with WhatIf(cache) as trial:
                        trial.apply(edit)
                        trial.power()
                        raise RuntimeError("abort trial")
            trace.disable()
            assert cache.total_power() == baseline  # rolled back
        summary = summarize_records(_records(sink))
        assert summary.unclosed == []
        by_name = {entry.name: entry for entry in summary.spans}
        assert by_name["trial"].errors == 1
        assert "stats.refresh" in by_name  # the trial's refresh was traced

    def test_nested_whatif_trials_nest_depths(self, setting):
        circuit, input_stats = setting
        sink = io.StringIO()
        with StatsCache(circuit.copy(), input_stats) as cache:
            cache.total_power()
            gates = _reorderable_gates(cache.circuit)[:2]
            trace.enable(sink)
            with WhatIf(cache) as outer:
                outer.apply(resolve_edit(cache.circuit,
                                         {"op": "reorder", "gate": gates[0],
                                          "config": 1}))
                outer.power()
                with WhatIf(cache) as inner:
                    inner.apply(resolve_edit(cache.circuit,
                                             {"op": "reorder",
                                              "gate": gates[1], "config": 1}))
                    inner.power()
            trace.disable()
        records = _records(sink)
        refreshes = [r for r in records
                     if r["ev"] == "B" and r["name"] == "stats.refresh"]
        assert len(refreshes) >= 2
        assert all(r["depth"] == 0 for r in refreshes)
        assert summarize_records(records).unclosed == []

    def test_forked_child_goes_silent(self):
        sink = io.StringIO()
        tracer = trace.enable(sink)
        tracer._pid = tracer._pid + 1  # simulate running in a forked child
        assert tracer.span("x") is trace.NULL_SPAN
        tracer.instant("x")
        tracer.metrics({"a": 1})
        trace.disable()
        assert sink.getvalue() == ""

    def test_enable_path_and_start_env(self, tmp_path, monkeypatch):
        path = tmp_path / "deep" / "t.jsonl"
        tracer = trace.enable(str(path))
        trace.instant("hello")
        trace.disable()
        assert tracer.path == str(path)
        assert summarize_file(str(path)).instants == 1

        monkeypatch.delenv(trace.ENV_VAR, raising=False)
        assert trace.start() is None
        monkeypatch.setenv(trace.ENV_VAR, "")
        assert trace.start() is None
        env_path = tmp_path / "env.jsonl"
        monkeypatch.setenv(trace.ENV_VAR, str(env_path))
        tracer = trace.start()
        assert tracer is not None and tracer.path == str(env_path)
        trace.disable()
        assert env_path.exists()


# ----------------------------------------------------------------------
# Artifact byte-identity with tracing on
# ----------------------------------------------------------------------
class TestArtifactIdentity:
    @pytest.mark.parametrize("kwargs", [
        {"strategy": "greedy"},
        {"strategy": "anneal", "seed": 7, "anneal_trials": 40},
        {"strategy": "anneal", "seed": 3, "restarts": 2, "jobs": 1,
         "anneal_trials": 20},
    ])
    def test_search_artifact_unperturbed_by_tracing(self, setting, tmp_path,
                                                    kwargs):
        circuit, input_stats = setting
        untraced = search_circuit(circuit, input_stats, **kwargs)
        trace.enable(str(tmp_path / "t.jsonl"))
        traced = search_circuit(circuit, input_stats, **kwargs)
        trace.disable()
        assert dumps_artifact(strip_timing(traced.to_artifact())) == \
            dumps_artifact(strip_timing(untraced.to_artifact()))
        summary = summarize_file(str(tmp_path / "t.jsonl"))
        assert summary.records > 0
        assert summary.unclosed == []

    def test_search_trace_carries_metrics_snapshot(self, setting, tmp_path):
        circuit, input_stats = setting
        path = tmp_path / "t.jsonl"
        trace.enable(str(path))
        search_circuit(circuit, input_stats, strategy="greedy")
        trace.disable()
        summary = summarize_file(str(path))
        assert summary.metrics is not None
        assert summary.metrics["stats.refresh_count"] > 0
        assert summary.metrics["timing.refresh_count"] > 0
        names = {entry.name for entry in summary.spans}
        assert {"search", "search.round", "search.score_batch",
                "stats.refresh"} <= names


# ----------------------------------------------------------------------
# Summarize
# ----------------------------------------------------------------------
class TestSummarize:
    def test_self_time_excludes_children(self):
        records = [
            {"ev": "B", "name": "outer", "ts_ns": 0, "depth": 0},
            {"ev": "B", "name": "inner", "ts_ns": 10, "depth": 1},
            {"ev": "E", "name": "inner", "ts_ns": 40, "depth": 1,
             "dur_ns": 30},
            {"ev": "E", "name": "outer", "ts_ns": 100, "depth": 0,
             "dur_ns": 100},
        ]
        summary = summarize_records(records)
        by_name = {entry.name: entry for entry in summary.spans}
        assert by_name["outer"].total_ns == 100
        assert by_name["outer"].self_ns == 70
        assert by_name["inner"].self_ns == 30
        assert summary.slowest[0][2] == "outer"

    def test_percentiles_nearest_rank(self):
        records = []
        for dur in (10, 20, 30, 40, 50, 60, 70, 80, 90, 100):
            records.append({"ev": "B", "name": "s", "ts_ns": 0, "depth": 0})
            records.append({"ev": "E", "name": "s", "ts_ns": dur, "depth": 0,
                            "dur_ns": dur})
        entry = summarize_records(records).spans[0]
        assert entry.percentile(0.50) == 50
        assert entry.percentile(0.95) == 100
        assert entry.percentile(1.00) == 100

    def test_unclosed_and_malformed_lines(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(
            json.dumps({"ev": "B", "name": "open", "ts_ns": 0, "depth": 0})
            + "\nnot json\n"
            + '{"ev": "I", "name": "tick", "ts_ns": 5, "depth": 1}\n'
            + '{"ev": "B", "name": "trunc'  # cut mid-line
        )
        summary = summarize_file(str(path))
        assert summary.unclosed == ["open"]
        assert summary.instants == 1
        assert summary.records == 2
        # The two unparseable lines (garbage + the cut-short B) are
        # counted, not fatal.
        assert summary.truncated_records == 2

    def test_dangling_open_span_does_not_steal_self_time(self):
        """A B with no E is closed synthetically at the last-seen ts.

        Before that fix, ``inner`` stayed on the stack forever: its 90 ns
        were charged to nobody and ``outer`` kept all 100 ns as self
        time, mis-attributing the hot path.
        """
        records = [
            {"ev": "B", "name": "outer", "ts_ns": 0, "depth": 0},
            {"ev": "B", "name": "inner", "ts_ns": 10, "depth": 1},
            # inner's E was lost (crash, truncation) ...
            {"ev": "E", "name": "outer", "ts_ns": 100, "depth": 0,
             "dur_ns": 100},
        ]
        summary = summarize_records(records)
        by_name = {entry.name: entry for entry in summary.spans}
        assert summary.unclosed == ["inner"]
        assert by_name["inner"].unclosed == 1
        assert by_name["inner"].total_ns == 90  # closed at outer's E ts
        assert by_name["outer"].self_ns == 10   # 100 minus inner's 90
        assert by_name["outer"].unclosed == 0
        # Synthetic durations are estimates: keep them out of "slowest".
        assert all(name != "inner" for _, _, name, _ in summary.slowest)

    def test_dangling_span_at_end_of_stream_closes_at_last_ts(self):
        records = [
            {"ev": "B", "name": "outer", "ts_ns": 0, "depth": 0},
            {"ev": "I", "name": "tick", "ts_ns": 60, "depth": 1},
            # stream ends: trace cut off mid-run
        ]
        summary = summarize_records(records)
        entry = summary.spans[0]
        assert summary.unclosed == ["outer"]
        assert entry.unclosed == 1
        assert entry.total_ns == 60  # last-seen timestamp
        rendered = render_summary(summary)
        assert "never closed" in rendered

    def test_render_is_deterministic(self, setting, tmp_path):
        circuit, input_stats = setting
        path = tmp_path / "t.jsonl"
        trace.enable(str(path))
        search_circuit(circuit, input_stats, strategy="greedy")
        trace.disable()
        one = render_summary(summarize_file(str(path)), top=5)
        two = render_summary(summarize_file(str(path)), top=5)
        assert one == two
        assert "trace summary" in one and "slowest spans" in one

    def test_truncated_trace_renders_warning(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"ev": "I", "name": "ok", "ts_ns": 1, "depth": 0}\n'
                        '{"ev": "B", "na')
        rendered = render_summary(summarize_file(str(path)))
        assert "malformed line(s) dropped" in rendered

    def test_metrics_module_registry_roundtrip(self):
        registry = metrics.MetricsRegistry()
        registry.counter("c").inc(3)
        registry.histogram("h").observe(5.0)
        sink = io.StringIO()
        trace.enable(sink)
        trace.ACTIVE.metrics(registry.snapshot())
        trace.disable()
        summary = summarize_records(_records(sink))
        assert summary.metrics["c"] == 3
        assert summary.metrics["h"]["count"] == 1


# ----------------------------------------------------------------------
# Live progress streaming
# ----------------------------------------------------------------------
class TestProgress:
    def test_disabled_module_emit_is_noop(self):
        assert progress.ACTIVE is None
        progress.emit("anything", n=1)  # no sink, no error

    def test_emit_format_and_rate_limit(self):
        sink = io.StringIO()
        p = progress.Progress(sink, interval=3600.0)
        p.emit("search.round", round=3, score=0.123456)
        p.emit("search.round", round=4)  # rate-limited: huge interval
        p.emit("milestone", force=True, done=1)
        lines = sink.getvalue().splitlines()
        assert len(lines) == 2
        assert p.emitted == 2
        assert lines[0].endswith("search.round round=3 score=0.1235")
        assert lines[0].startswith("[") and "s]" in lines[0]
        assert lines[1].endswith("milestone done=1")

    def test_zero_interval_never_limits(self):
        sink = io.StringIO()
        p = progress.Progress(sink, interval=0.0)
        for i in range(5):
            p.emit("tick", i=i)
        assert p.emitted == 5

    def test_forked_child_is_silent(self):
        sink = io.StringIO()
        p = progress.Progress(sink, interval=0.0)
        p._pid += 1  # simulate a forked worker
        p.emit("tick", force=True)
        assert sink.getvalue() == "" and p.emitted == 0

    def test_enable_disable_install_module_sink(self):
        sink = io.StringIO()
        installed = progress.enable(sink, interval=0.0)
        assert progress.ACTIVE is installed
        progress.emit("hello", n=2)
        progress.disable()
        assert progress.ACTIVE is None
        assert "hello n=2" in sink.getvalue()

    def test_search_emits_progress_lines(self, setting):
        circuit, input_stats = setting
        sink = io.StringIO()
        progress.enable(sink, interval=0.0)
        search_circuit(circuit, input_stats, strategy="greedy")
        progress.disable()
        lines = sink.getvalue().splitlines()
        assert any("search.round" in line for line in lines)
        assert all(line.startswith("[") for line in lines)

    def test_progress_does_not_perturb_artifacts(self, setting):
        circuit, input_stats = setting
        quiet = search_circuit(circuit, input_stats, strategy="anneal",
                               seed=7, anneal_trials=40)
        progress.enable(io.StringIO(), interval=0.0)
        noisy = search_circuit(circuit, input_stats, strategy="anneal",
                               seed=7, anneal_trials=40)
        progress.disable()
        assert dumps_artifact(strip_timing(noisy.to_artifact())) == \
            dumps_artifact(strip_timing(quiet.to_artifact()))
