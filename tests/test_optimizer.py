"""Tests for the Figure 3 circuit optimiser."""

import pytest

from repro.circuit.netlist import Circuit
from repro.core.optimizer import circuit_power, optimize_circuit
from repro.core.power_model import GatePowerModel
from repro.gates.library import default_library
from repro.sim.logicsim import check_equivalence
from repro.stochastic.signal import SignalStats
from repro.timing.sta import circuit_delay

LIB = default_library()
MODEL = GatePowerModel()


def sample_circuit():
    c = Circuit("sample", LIB)
    for net in ("a", "b", "c", "d"):
        c.add_input(net)
    c.add_output("y")
    c.add_gate("g0", "nand3", {"a": "a", "b": "b", "c": "c"}, "n0")
    c.add_gate("g1", "oai21", {"a": "n0", "b": "c", "c": "d"}, "n1")
    c.add_gate("g2", "nand2", {"a": "n1", "b": "a"}, "y")
    c.validate()
    return c


def skewed_stats():
    return {
        "a": SignalStats(0.3, 1.0e4),
        "b": SignalStats(0.7, 2.0e5),
        "c": SignalStats(0.5, 9.0e5),
        "d": SignalStats(0.4, 5.0e4),
    }


class TestOptimizeCircuit:
    def test_best_not_above_original_not_above_worst(self):
        c = sample_circuit()
        stats = skewed_stats()
        best = optimize_circuit(c, stats, MODEL, objective="best")
        worst = optimize_circuit(c, stats, MODEL, objective="worst")
        assert best.power_after <= best.power_before + 1e-20
        assert worst.power_after >= worst.power_before - 1e-20
        assert best.power_after <= worst.power_after

    def test_original_untouched(self):
        c = sample_circuit()
        result = optimize_circuit(c, skewed_stats(), MODEL)
        assert all(g.config is None for g in c.gates)
        assert result.circuit is not c

    def test_function_preserved(self):
        c = sample_circuit()
        best = optimize_circuit(c, skewed_stats(), MODEL)
        assert check_equivalence(c, best.circuit)

    def test_decisions_cover_all_gates(self):
        c = sample_circuit()
        result = optimize_circuit(c, skewed_stats(), MODEL)
        assert {d.gate_name for d in result.decisions} == {g.name for g in c.gates}
        for d in result.decisions:
            assert d.num_configurations >= 1
            assert d.chosen.power >= 0.0

    def test_reduction_property(self):
        c = sample_circuit()
        result = optimize_circuit(c, skewed_stats(), MODEL)
        assert result.reduction == pytest.approx(
            1.0 - result.power_after / result.power_before
        )

    def test_unknown_objective(self):
        with pytest.raises(ValueError):
            optimize_circuit(sample_circuit(), skewed_stats(), MODEL, objective="x")

    def test_missing_stats(self):
        with pytest.raises(KeyError):
            optimize_circuit(sample_circuit(), {"a": SignalStats(0.5, 1.0)}, MODEL)

    def test_idempotent_on_optimized_circuit(self):
        """Optimising twice changes nothing (single-pass optimality)."""
        c = sample_circuit()
        stats = skewed_stats()
        once = optimize_circuit(c, stats, MODEL)
        twice = optimize_circuit(once.circuit, stats, MODEL)
        assert twice.power_after == pytest.approx(once.power_after)
        assert twice.reduction == pytest.approx(0.0, abs=1e-12)

    def test_monotonic_greedy_equals_global_for_model(self):
        """Per-gate choice is globally optimal under the model: every gate's
        chosen config has minimum gate power among its configurations."""
        c = sample_circuit()
        stats = skewed_stats()
        result = optimize_circuit(c, stats, MODEL)
        report = circuit_power(result.circuit, stats, MODEL)
        for decision in result.decisions:
            gate = result.circuit.gate(decision.gate_name)
            current = report.by_gate[gate.name].total
            # Try every alternative configuration in place.
            for config in gate.template.configurations():
                saved = gate.config
                gate.config = config
                alt = circuit_power(result.circuit, stats, MODEL,
                                    net_stats=report.net_stats)
                gate.config = saved
                assert alt.by_gate[gate.name].total >= current - 1e-24


class TestDelayConstrained:
    def test_never_slower_than_mapped(self):
        c = sample_circuit()
        stats = skewed_stats()
        constrained = optimize_circuit(
            c, stats, MODEL, objective="delay-constrained"
        )
        assert circuit_delay(constrained.circuit) <= circuit_delay(c) * (1 + 1e-9)

    def test_saves_no_more_than_free(self):
        c = sample_circuit()
        stats = skewed_stats()
        free = optimize_circuit(c, stats, MODEL, objective="best")
        constrained = optimize_circuit(
            c, stats, MODEL, objective="delay-constrained"
        )
        assert constrained.power_after >= free.power_after - 1e-24


class TestFastestObjective:
    def test_function_preserved_and_valid(self):
        c = sample_circuit()
        result = optimize_circuit(c, skewed_stats(), MODEL, objective="fastest")
        assert check_equivalence(c, result.circuit)

    def test_power_blind_baseline_not_below_best(self):
        c = sample_circuit()
        stats = skewed_stats()
        best = optimize_circuit(c, stats, MODEL, objective="best")
        fastest = optimize_circuit(c, stats, MODEL, objective="fastest")
        assert fastest.power_after >= best.power_after - 1e-24


class TestCircuitPower:
    def test_total_is_sum_of_gates(self):
        c = sample_circuit()
        report = circuit_power(c, skewed_stats(), MODEL)
        assert report.total == pytest.approx(
            sum(r.total for r in report.by_gate.values())
        )
        assert report.total == pytest.approx(
            report.internal_total + report.output_total
        )

    def test_matches_optimizer_bookkeeping(self):
        c = sample_circuit()
        stats = skewed_stats()
        result = optimize_circuit(c, stats, MODEL)
        report = circuit_power(result.circuit, stats, MODEL)
        assert report.total == pytest.approx(result.power_after)

    def test_area_unchanged_by_optimization(self):
        """The paper: all instances have the same area."""
        c = sample_circuit()
        result = optimize_circuit(c, skewed_stats(), MODEL)
        assert result.circuit.area() == c.area()
        assert result.circuit.transistor_count() == c.transistor_count()
