"""Batch move pricing: one kernel pass per candidate batch, same answer.

The contract under test: with ``compiled=True`` and a pure-power
objective, the greedy search prices every same-gate candidate batch in
one vectorised kernel invocation instead of per-move ``WhatIf``
trials, and the outcome — move trace, accept decisions, trial counts,
final power, the whole artifact — is **byte-identical** to the
object-graph per-trial path.  Only ``gates_repropagated`` (the work
the batch path exists to avoid) may differ, and it must *shrink*.
"""

import pytest

from repro.bench.generators import random_logic
from repro.bench.runner import dumps_artifact, strip_timing
from repro.incremental import StatsCache, search_circuit
from repro.incremental.timing import TimingCache
from repro.sim.stimulus import ScenarioA
from repro.synth.mapper import map_circuit

#: Artifact fields the batch path is allowed to change: the cone work.
CONE_FIELDS = ("gates_repropagated",)


@pytest.fixture(scope="module")
def wide():
    circuit = map_circuit(random_logic(12, 60, seed=9))
    stats = ScenarioA(seed=2).input_stats(circuit.inputs)
    return circuit, stats


def strip_cone(value):
    if isinstance(value, dict):
        return {k: strip_cone(v) for k, v in value.items()
                if k not in CONE_FIELDS}
    if isinstance(value, list):
        return [strip_cone(v) for v in value]
    return value


def canonical(result, *, keep_cone):
    artifact = strip_timing(result.to_artifact())
    if not keep_cone:
        artifact = strip_cone(artifact)
    return dumps_artifact(artifact)


def run_pair(wide, **kwargs):
    circuit, stats = wide
    plain = search_circuit(circuit, stats, compiled=False, **kwargs)
    flat = search_circuit(circuit, stats, compiled=True, **kwargs)
    return plain, flat


# ----------------------------------------------------------------------
# Greedy pure-power searches: batched pricing engages
# ----------------------------------------------------------------------
class TestBatchedGreedy:
    def test_reorder_search_identical_with_less_work(self, wide):
        plain, flat = run_pair(wide, objective="power", seed=3)
        assert canonical(plain, keep_cone=False) \
            == canonical(flat, keep_cone=False)
        assert flat.gates_repropagated < plain.gates_repropagated
        assert flat.trials == plain.trials
        assert len(flat.accepted) == len(plain.accepted)

    def test_retemplate_search_identical_with_less_work(self, wide):
        plain, flat = run_pair(wide, objective="power", seed=3,
                               retemplate=True)
        assert canonical(plain, keep_cone=False) \
            == canonical(flat, keep_cone=False)
        assert flat.gates_repropagated < plain.gates_repropagated

    def test_sampled_backend_prices_reorder_batches(self, wide):
        plain, flat = run_pair(wide, objective="power", seed=5,
                               backend="sampled", lanes=64, steps=8)
        assert canonical(plain, keep_cone=False) \
            == canonical(flat, keep_cone=False)
        assert flat.gates_repropagated < plain.gates_repropagated

    def test_sampled_retemplate_falls_back_per_move(self, wide):
        # retemplate candidates on the sampled backend fall back to
        # WhatIf trials (streams are not class-batchable); reorder
        # batches still price vectorised, and the artifact holds.
        plain, flat = run_pair(wide, objective="power", seed=5,
                               backend="sampled", lanes=64, steps=8,
                               retemplate=True)
        assert canonical(plain, keep_cone=False) \
            == canonical(flat, keep_cone=False)
        assert flat.gates_repropagated < plain.gates_repropagated

    def test_anneal_polish_reuses_batches_after_trials(self, wide):
        # annealing samples single moves (never batched); the polish
        # descent afterwards re-engages batch pricing, including the
        # rollback-cone flush the per-trial path does in WhatIf.
        plain, flat = run_pair(wide, strategy="anneal", objective="power",
                               seed=11, anneal_trials=40, polish=True)
        assert canonical(plain, keep_cone=False) \
            == canonical(flat, keep_cone=False)
        assert flat.gates_repropagated < plain.gates_repropagated


# ----------------------------------------------------------------------
# Delay-aware objectives: the pricer stays out entirely
# ----------------------------------------------------------------------
class TestDisabledPricer:
    def test_power_delay_artifacts_fully_identical(self, wide):
        plain, flat = run_pair(wide, objective="power-delay", seed=3)
        # needs_delay disables batching, so even the cone counter
        # matches: both engines do move-for-move identical work.
        assert canonical(plain, keep_cone=True) \
            == canonical(flat, keep_cone=True)


# ----------------------------------------------------------------------
# The TimingCache dirty-seed hook the pricer relies on
# ----------------------------------------------------------------------
class TestMarkDirty:
    def test_seeds_match_a_real_edit(self, wide):
        circuit, stats = wide
        work = circuit.copy()
        with StatsCache(work, stats) as cache:
            marked = TimingCache(work, index=cache.index)
            edited = TimingCache(work, index=cache.index)
            try:
                gate = max(work.gates,
                           key=lambda g: len(work.fanin_drivers(g.name)))
                assert work.fanin_drivers(gate.name)  # a non-trivial seed
                marked.refresh()
                edited.refresh()
                marked.mark_dirty(gate.name)
                edited._on_edit(gate.name, "edit")
                assert marked._dirty == edited._dirty
                assert gate.name in marked._dirty
                assert marked.refresh() == edited.refresh()
                assert marked.gates_retimed == edited.gates_retimed
            finally:
                edited.close()
                marked.close()

    def test_unknown_gate_raises(self, wide):
        circuit, stats = wide
        work = circuit.copy()
        with StatsCache(work, stats) as cache:
            with TimingCache(work, index=cache.index) as timing:
                with pytest.raises(KeyError, match="no-such-gate"):
                    timing.mark_dirty("no-such-gate")
