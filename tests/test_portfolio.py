"""Tests for the multi-process portfolio search (`repro.incremental.portfolio`)."""

import pytest

from repro.bench.runner import dumps_artifact, load_artifact, strip_timing
from repro.bench.suite import get_case
from repro.incremental import (
    DEFAULT_RESTARTS,
    StatsCache,
    restart_seed,
    search_circuit,
)
from repro.incremental.portfolio import circuit_from_spec, circuit_spec
from repro.sim.stimulus import ScenarioA
from repro.synth.mapper import map_circuit
from repro.timing.sta import analyze_timing


@pytest.fixture(scope="module")
def adder():
    circuit = map_circuit(get_case("rca4").network())
    stats = ScenarioA(seed=3).input_stats(circuit.inputs)
    return circuit, stats


def canonical(result):
    return dumps_artifact(strip_timing(result.to_artifact()))


class TestRestartSeeds:
    def test_stable_and_distinct(self):
        seeds = [restart_seed(7, index) for index in range(8)]
        assert seeds == [restart_seed(7, index) for index in range(8)]
        assert len(set(seeds)) == len(seeds)

    def test_independent_of_restart_count(self):
        # adding restarts never reseeds the existing ones
        assert restart_seed(0, 2) == restart_seed(0, 2)
        assert restart_seed(0, 0) != restart_seed(1, 0)


class TestCircuitSpec:
    def test_roundtrip_is_equivalent(self, adder):
        circuit, stats = adder
        work = circuit.copy()
        # a non-default configuration must survive the round trip
        gate = next(g for g in work.gates
                    if g.template.num_configurations() > 1)
        work.set_config(gate.name, gate.template.configurations()[-1])
        rebuilt = circuit_from_spec(circuit_spec(work))
        assert [g.name for g in rebuilt.gates] == [g.name for g in work.gates]
        assert rebuilt.inputs == work.inputs
        assert rebuilt.outputs == work.outputs
        for original in work.gates:
            copy = rebuilt.gate(original.name)
            assert copy.template.name == original.template.name
            assert copy.pin_nets == original.pin_nets
            assert copy.effective_config().key() \
                == original.effective_config().key()
        # the acid test: timing (configuration-sensitive) is bit-identical
        assert analyze_timing(rebuilt).arrivals \
            == analyze_timing(work).arrivals


class TestPortfolio:
    def test_jobs_do_not_change_the_artifact(self, adder):
        circuit, stats = adder
        serial = search_circuit(circuit, stats, strategy="anneal",
                                restarts=3, jobs=1, anneal_trials=25, seed=7)
        parallel = search_circuit(circuit, stats, strategy="anneal",
                                  restarts=3, jobs=3, anneal_trials=25,
                                  seed=7)
        assert canonical(serial) == canonical(parallel)

    def test_winner_is_best_score_with_stable_tie_break(self, adder):
        circuit, stats = adder
        result = search_circuit(circuit, stats, strategy="anneal",
                                restarts=3, jobs=1, anneal_trials=25, seed=7)
        scores = [entry["score"] for entry in result.restarts]
        best = min(scores)
        assert result.restart_index == scores.index(best)
        assert result.power_after \
            == result.restarts[result.restart_index]["power_after"]

    def test_merged_circuit_replays_the_winner_bit_for_bit(self, adder):
        circuit, stats = adder
        result = search_circuit(circuit, stats, strategy="anneal",
                                restarts=2, jobs=1, anneal_trials=25, seed=5)
        with StatsCache(result.circuit, stats) as cache:
            assert cache.total_power() == result.power_after

    def test_work_counters_aggregate_over_restarts(self, adder):
        circuit, stats = adder
        result = search_circuit(circuit, stats, strategy="anneal",
                                restarts=3, jobs=1, anneal_trials=10, seed=1)
        assert result.trials \
            == sum(entry["trials"] for entry in result.restarts)
        assert result.gates_repropagated \
            == sum(entry["gates_repropagated"] for entry in result.restarts)

    def test_jobs_without_restarts_uses_the_fixed_default(self, adder):
        circuit, stats = adder
        result = search_circuit(circuit, stats, strategy="anneal", jobs=2,
                                anneal_trials=10, seed=0)
        assert len(result.restarts) == DEFAULT_RESTARTS

    def test_portfolio_fields_absent_on_single_search(self, adder):
        circuit, stats = adder
        result = search_circuit(circuit, stats, strategy="anneal",
                                anneal_trials=10, seed=0)
        assert result.restarts is None
        assert "portfolio" not in result.to_artifact()

    def test_rejections(self, adder):
        circuit, stats = adder
        with pytest.raises(ValueError):
            search_circuit(circuit, stats, strategy="greedy", restarts=2)
        with pytest.raises(ValueError):
            search_circuit(circuit, stats, strategy="anneal", restarts=0)
        with pytest.raises(ValueError):
            search_circuit(circuit, stats, strategy="anneal", restarts=2,
                           jobs=0)
        with StatsCache(circuit.copy(), stats) as cache:
            with pytest.raises(TypeError):
                search_circuit(cache=cache, strategy="anneal", restarts=2)


class TestPortfolioCli:
    BLIF = """.model fa
.inputs a b cin
.outputs s cout
.names a b cin s
100 1
010 1
001 1
111 1
.names a b cin cout
11- 1
1-1 1
-11 1
.end
"""

    def run_cli(self, *argv):
        import io

        from repro.cli import main

        out = io.StringIO()
        code = main(list(argv), out=out)
        return code, out.getvalue()

    def test_jobs_flag_emits_byte_identical_artifacts(self, tmp_path):
        blif = tmp_path / "fa.blif"
        blif.write_text(self.BLIF)
        serial = tmp_path / "serial.json"
        parallel = tmp_path / "parallel.json"
        code, text = self.run_cli(
            "search", str(blif), "--strategy", "anneal", "--restarts", "2",
            "--anneal-trials", "30", "--jobs", "1", "--out", str(serial))
        assert code == 0 and "portfolio: best of 2 restart(s)" in text
        code, _ = self.run_cli(
            "search", str(blif), "--strategy", "anneal", "--restarts", "2",
            "--anneal-trials", "30", "--jobs", "2", "--out", str(parallel))
        assert code == 0
        assert dumps_artifact(strip_timing(load_artifact(str(serial)))) \
            == dumps_artifact(strip_timing(load_artifact(str(parallel))))

    def test_portfolio_flags_require_anneal(self, tmp_path):
        blif = tmp_path / "fa.blif"
        blif.write_text(self.BLIF)
        with pytest.raises(SystemExit):
            self.run_cli("search", str(blif), "--jobs", "2")
