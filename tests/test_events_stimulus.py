"""Tests for the event queue and the scenario stimulus generators."""

import numpy as np
import pytest

from repro.sim.events import EventQueue
from repro.sim.stimulus import ScenarioA, ScenarioB
from repro.stochastic.signal import measure_waveform


class TestEventQueue:
    def test_time_ordering(self):
        q = EventQueue()
        q.schedule(3.0, "a", 1)
        q.schedule(1.0, "b", 0)
        q.schedule(2.0, "c", 1)
        assert [q.pop().net for _ in range(3)] == ["b", "c", "a"]
        assert q.pop() is None

    def test_stable_tie_break(self):
        q = EventQueue()
        q.schedule(1.0, "first", 1)
        q.schedule(1.0, "second", 1)
        assert q.pop().net == "first"
        assert q.pop().net == "second"

    def test_cancellation(self):
        q = EventQueue()
        keep = q.schedule(1.0, "keep", 1)
        drop = q.schedule(0.5, "drop", 1)
        q.cancel(drop)
        event = q.pop()
        assert event.net == "keep"
        assert q.pop() is None

    def test_peek_skips_cancelled(self):
        q = EventQueue()
        drop = q.schedule(0.5, "drop", 1)
        q.schedule(2.0, "keep", 1)
        q.cancel(drop)
        assert q.peek_time() == pytest.approx(2.0)

    def test_negative_time_rejected(self):
        q = EventQueue()
        with pytest.raises(ValueError):
            q.schedule(-1.0, "a", 1)

    def test_len_and_bool(self):
        q = EventQueue()
        assert not q and len(q) == 0
        q.schedule(1.0, "a", 1)
        assert q and len(q) == 1


class TestScenarioA:
    def test_stats_ranges(self):
        scenario = ScenarioA(density_max=1e6, seed=1)
        stats = scenario.input_stats([f"i{k}" for k in range(50)])
        for s in stats.values():
            assert 0.0 < s.probability < 1.0
            assert 0.0 < s.density <= 1e6

    def test_deterministic_per_seed(self):
        names = ["a", "b"]
        s1 = ScenarioA(seed=5).input_stats(names)
        s2 = ScenarioA(seed=5).input_stats(names)
        s3 = ScenarioA(seed=6).input_stats(names)
        assert s1 == s2
        assert s1 != s3

    def test_generated_waveforms_cover_duration(self):
        scenario = ScenarioA(seed=2)
        stimulus = scenario.generate(["a", "b"], duration=1e-3)
        assert stimulus.duration == 1e-3
        for initial, times in stimulus.waveforms.values():
            assert initial in (0, 1)
            assert all(0 < t < 1e-3 for t in times)

    def test_event_count(self):
        scenario = ScenarioA(seed=2)
        stimulus = scenario.generate(["a"], duration=1e-3)
        assert stimulus.event_count() == len(stimulus.waveforms["a"][1])


class TestScenarioB:
    def test_spec_stats(self):
        scenario = ScenarioB(clock_period=1e-8)
        stats = scenario.input_stats(["a"])
        assert stats["a"].probability == 0.5
        assert stats["a"].density == pytest.approx(0.5e8)

    def test_edges_aligned_to_clock(self):
        scenario = ScenarioB(clock_period=1e-8, seed=4)
        stimulus = scenario.generate(["a", "b"], cycles=100)
        for _, times in stimulus.waveforms.values():
            for t in times:
                cycles = t / 1e-8
                assert abs(cycles - round(cycles)) < 1e-9

    def test_measured_density_half_per_cycle(self):
        scenario = ScenarioB(clock_period=1e-8, seed=8)
        stimulus = scenario.generate(["a"], cycles=4000)
        measured = measure_waveform(stimulus.waveforms["a"], stimulus.duration)
        assert measured.density * 1e-8 == pytest.approx(0.5, abs=0.05)
        assert measured.probability == pytest.approx(0.5, abs=0.05)

    def test_bad_cycles(self):
        with pytest.raises(ValueError):
            ScenarioB().generate(["a"], cycles=0)
