"""Tests for the Boolean expression AST and parser."""

import itertools

import pytest

from repro.boolean.expr import And, Const, Not, Or, Var, Xor, parse_expr
from repro.boolean.truthtable import TruthTable


class TestEvaluation:
    def test_var_lookup(self):
        assert Var("a").evaluate({"a": True}) is True

    def test_const(self):
        assert Const(True).evaluate({}) is True
        assert Const(False).evaluate({}) is False

    def test_not_on_bool(self):
        assert Not(Var("a")).evaluate({"a": True}) is False

    def test_nary_and_or_xor(self):
        env = {"a": True, "b": False, "c": True}
        assert And((Var("a"), Var("c"))).evaluate(env) is True
        assert And((Var("a"), Var("b"))).evaluate(env) is False
        assert Or((Var("b"), Var("c"))).evaluate(env) is True
        assert Xor((Var("a"), Var("c"))).evaluate(env) is False

    def test_evaluate_over_truthtables(self):
        variables = ("a", "b")
        env = {v: TruthTable.variable(variables, v) for v in variables}
        tt = And((Var("a"), Not(Var("b")))).evaluate(env)
        assert tt == TruthTable.from_function(variables, lambda e: e["a"] and not e["b"])

    def test_operator_overloads(self):
        e = (Var("a") & Var("b")) | ~Var("c")
        assert e.evaluate({"a": True, "b": True, "c": True}) is True
        assert e.evaluate({"a": False, "b": True, "c": True}) is False


class TestVariables:
    def test_first_appearance_order(self):
        e = parse_expr("(b & a) | c | a")
        assert e.variables() == ("b", "a", "c")

    def test_to_truthtable_default_vars(self):
        tt = parse_expr("a & b").to_truthtable()
        assert tt.vars == ("a", "b")
        assert tt.count_minterms() == 1

    def test_to_truthtable_explicit_vars(self):
        tt = parse_expr("a").to_truthtable(("a", "b"))
        assert tt == TruthTable.variable(("a", "b"), "a")

    def test_constant_to_truthtable(self):
        tt = parse_expr("1").to_truthtable(("a",))
        assert tt.is_constant() and tt.constant_value() is True


class TestParser:
    @pytest.mark.parametrize(
        "text,vector,expected",
        [
            ("a & b", {"a": 1, "b": 1}, True),
            ("a * b", {"a": 1, "b": 0}, False),
            ("a | b", {"a": 0, "b": 0}, False),
            ("a + b", {"a": 0, "b": 1}, True),
            ("a ^ b", {"a": 1, "b": 1}, False),
            ("!a", {"a": 0}, True),
            ("~a", {"a": 1}, False),
            ("a'", {"a": 1}, False),
            ("(a | b) & c", {"a": 1, "b": 0, "c": 1}, True),
            ("a & b | c", {"a": 0, "b": 0, "c": 1}, True),  # & binds tighter
            ("!(a & b)", {"a": 1, "b": 1}, False),
            ("a''", {"a": 1}, True),
        ],
    )
    def test_parse_and_eval(self, text, vector, expected):
        env = {k: bool(v) for k, v in vector.items()}
        assert parse_expr(text).evaluate(env) is expected

    def test_precedence_matches_convention(self):
        # OR < AND < XOR < NOT
        e1 = parse_expr("a | b & c")
        e2 = parse_expr("a | (b & c)")
        for env in itertools.product([False, True], repeat=3):
            assignment = dict(zip("abc", env))
            assert e1.evaluate(assignment) == e2.evaluate(assignment)

    def test_identifier_characters(self):
        e = parse_expr("x[3] & y_2.z")
        assert e.variables() == ("x[3]", "y_2.z")

    def test_errors(self):
        with pytest.raises(ValueError):
            parse_expr("a &")
        with pytest.raises(ValueError):
            parse_expr("(a | b")
        with pytest.raises(ValueError):
            parse_expr("a b")
        with pytest.raises(ValueError):
            parse_expr("a @ b")
        with pytest.raises(ValueError):
            parse_expr("")

    def test_roundtrip_via_str(self):
        for text in ["a & (b | c)", "!a | b ^ c", "(a | b) & (c | d)"]:
            e = parse_expr(text)
            e2 = parse_expr(str(e))
            for env in itertools.product([False, True], repeat=4):
                assignment = dict(zip("abcd", env))
                assert e.evaluate(assignment) == e2.evaluate(assignment)

    def test_nary_requires_operand(self):
        with pytest.raises(ValueError):
            And(())
