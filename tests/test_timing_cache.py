"""Unit tests for the incremental timing subsystem.

Covers the :class:`repro.incremental.timing.TimingCache` contract
(bit-identity with batch STA, the widened dirty set, early cut-off,
input arrivals, lazy required times/slacks), the shared
:func:`repro.timing.sta.gate_arrival`/:func:`~repro.timing.sta.timing_context`
helpers, the `WhatIf` timing integration, the delay-aware
`optimize_circuit` timing worklist and the ``run_eco`` incremental
timing mode.  The randomized bit-identity sweeps live in
``test_timing_equivalence.py``.
"""

import pytest

from repro.analysis.experiments import run_eco
from repro.bench.suite import get_case
from repro.circuit.netlist import SetConfig
from repro.core.optimizer import optimize_circuit
from repro.gates.capacitance import TechParams
from repro.incremental import StatsCache, TimingCache, WhatIf
from repro.incremental.eco import InputArrivalEdit
from repro.sim.stimulus import ScenarioA
from repro.synth.mapper import map_circuit
from repro.timing.sta import (
    DEFAULT_PO_LOAD,
    analyze_timing,
    circuit_delay,
    timing_context,
)


@pytest.fixture(scope="module")
def rca4():
    circuit = map_circuit(get_case("rca4").network())
    stats = ScenarioA(seed=5).input_stats(circuit.inputs)
    return circuit, stats


def reorderable(circuit):
    return [g for g in circuit.gates if g.template.num_configurations() > 1]


class TestTimingContext:
    def test_defaults(self):
        tech, po_load = timing_context()
        assert tech == TechParams()
        assert po_load == DEFAULT_PO_LOAD

    def test_passthrough(self):
        custom = TechParams(vdd=2.5)
        tech, po_load = timing_context(custom, 5.0e-15)
        assert tech is custom
        assert po_load == 5.0e-15


class TestTimingCacheBasics:
    def test_initial_state_matches_batch_sta(self, rca4):
        circuit, _ = rca4
        with TimingCache(circuit) as tcache:
            report = analyze_timing(circuit)
            assert tcache.arrivals() == report.arrivals
            assert tcache.delay() == report.delay
            assert tcache.critical_path() == report.critical_path
            assert tcache.report() == report
            assert tcache.gates_retimed == 0  # initial sweep not counted

    def test_arrival_accessors(self, rca4):
        circuit, _ = rca4
        with TimingCache(circuit) as tcache:
            net = circuit.gates[0].output
            assert tcache.arrival(net) == tcache[net]
            assert tcache.input_arrival(circuit.inputs[0]) == 0.0

    def test_edit_dirties_fanin_drivers_too(self, rca4):
        circuit, _ = rca4
        work = circuit.copy()
        with TimingCache(work) as tcache:
            gate = next(
                g for g in reorderable(work) if work.fanin_drivers(g.name)
            )
            work.set_config(gate.name, gate.template.configurations()[1])
            dirty = tcache.dirty_gates
            assert gate.name in dirty
            for pred in work.fanin_drivers(gate.name):
                assert pred.name in dirty

    def test_refresh_is_bit_identical_after_edit(self, rca4):
        circuit, _ = rca4
        work = circuit.copy()
        with TimingCache(work) as tcache:
            for gate in reorderable(work)[:4]:
                for config in gate.template.configurations():
                    work.set_config(gate.name, config)
                    report = analyze_timing(work)
                    assert tcache.arrivals() == report.arrivals
                    assert tcache.delay() == report.delay
                    assert tcache.critical_path() == report.critical_path

    def test_early_cutoff_keeps_the_recompute_small(self, rca4):
        # Re-applying a gate's *current* configuration dirties its cone
        # but changes no arrival: the refresh must stop at the seeds
        # instead of walking the whole fanout cone.
        circuit, _ = rca4
        work = circuit.copy()
        with TimingCache(work) as tcache:
            gate = max(
                reorderable(work),
                key=lambda g: len(tcache.index.cone_from_gates([g.name])),
            )
            work.set_config(gate.name, gate.effective_config())
            cone = tcache.dirty_gates
            seeds = 1 + len(work.fanin_drivers(gate.name))
            before = tcache.gates_retimed
            assert tcache.refresh() == ()  # nothing actually moved
            assert tcache.gates_retimed - before == seeds < len(cone)

    def test_set_input_arrival_roundtrip(self, rca4):
        circuit, _ = rca4
        work = circuit.copy()
        with TimingCache(work) as tcache:
            net = work.inputs[0]
            old = tcache.set_input_arrival(net, 3.0e-10)
            assert old == 0.0
            report = analyze_timing(work, input_arrivals=tcache.input_arrivals)
            assert tcache.delay() == report.delay
            assert tcache.arrivals() == report.arrivals
            assert tcache.set_input_arrival(net, 0.0) == 3.0e-10
            assert tcache.delay() == analyze_timing(work).delay
            with pytest.raises(KeyError):
                tcache.set_input_arrival("definitely-not-a-net", 1.0)

    def test_constructor_input_arrivals(self, rca4):
        circuit, _ = rca4
        arrivals = {net: 1.0e-10 * i for i, net in enumerate(circuit.inputs)}
        with TimingCache(circuit, input_arrivals=arrivals) as tcache:
            report = analyze_timing(circuit, input_arrivals=arrivals)
            assert tcache.arrivals() == report.arrivals
            assert tcache.delay() == report.delay

    def test_close_detaches_the_listener(self, rca4):
        circuit, _ = rca4
        work = circuit.copy()
        tcache = TimingCache(work)
        tcache.close()
        gate = reorderable(work)[0]
        work.set_config(gate.name, gate.template.configurations()[1])
        assert not tcache.dirty_gates
        tcache.close()  # idempotent


class TestRequiredTimesAndSlacks:
    def test_critical_path_has_zero_slack(self, rca4):
        circuit, _ = rca4
        with TimingCache(circuit) as tcache:
            slacks = tcache.slacks()
            for net in tcache.critical_path():
                assert slacks[net] == pytest.approx(0.0, abs=1e-24)
            # no net can beat its deadline under the default clock
            assert min(slacks.values()) >= -1e-24

    def test_required_times_follow_the_clock(self, rca4):
        circuit, _ = rca4
        with TimingCache(circuit) as tcache:
            tight = tcache.required_times(clock=0.0)
            loose = tcache.required_times(clock=1.0e-9)
            for net in circuit.outputs:
                assert loose[net] - tight[net] == pytest.approx(1.0e-9)

    def test_slack_invalidates_on_edit(self, rca4):
        circuit, _ = rca4
        work = circuit.copy()
        with TimingCache(work) as tcache:
            before = dict(tcache.slacks())
            gate = reorderable(work)[0]
            for config in gate.template.configurations():
                work.set_config(gate.name, config)
                tcache.refresh()
            # after returning towards a consistent state the map is
            # recomputed, not served stale
            after = tcache.slacks()
            assert set(after) == set(before)


class TestWhatIfTiming:
    def test_delta_delay_matches_batch_sta(self, rca4):
        circuit, stats = rca4
        work = circuit.copy()
        with StatsCache(work, stats) as cache, \
                TimingCache(work, index=cache.index) as tcache:
            baseline = tcache.delay()
            gate = reorderable(work)[0]
            config = gate.template.configurations()[1]
            with WhatIf(cache, timing=tcache) as trial:
                trial.apply(SetConfig(gate.name, config))
                batch = analyze_timing(work).delay
                assert trial.delay() == batch
                assert trial.delta_delay() == batch - baseline
            assert tcache.delay() == baseline  # rolled back

    def test_input_arrival_edit_rolls_back(self, rca4):
        circuit, stats = rca4
        work = circuit.copy()
        with StatsCache(work, stats) as cache, \
                TimingCache(work, index=cache.index) as tcache:
            baseline = tcache.report()
            with WhatIf(cache, timing=tcache) as trial:
                trial.apply(InputArrivalEdit(work.inputs[0], 7.0e-10))
                assert tcache.input_arrival(work.inputs[0]) == 7.0e-10
            assert tcache.input_arrival(work.inputs[0]) == 0.0
            assert tcache.report() == baseline

    def test_commit_keeps_the_timing_edit(self, rca4):
        circuit, stats = rca4
        work = circuit.copy()
        with StatsCache(work, stats) as cache, \
                TimingCache(work, index=cache.index) as tcache:
            with WhatIf(cache, timing=tcache) as trial:
                trial.apply(InputArrivalEdit(work.inputs[1], 2.0e-10))
                trial.commit()
            assert tcache.input_arrival(work.inputs[1]) == 2.0e-10
            report = analyze_timing(
                work, input_arrivals=tcache.input_arrivals
            )
            assert tcache.delay() == report.delay

    def test_arrival_edit_requires_timing(self, rca4):
        circuit, stats = rca4
        work = circuit.copy()
        with StatsCache(work, stats) as cache:
            with pytest.raises(TypeError):
                with WhatIf(cache) as trial:
                    trial.apply(InputArrivalEdit(work.inputs[0], 1.0e-10))
            with pytest.raises(TypeError):
                WhatIf(cache).delay()

    def test_nested_trials_must_share_the_timing_cache(self, rca4):
        # A promoted InputArrivalEdit can only roll back through the
        # cache that applied it, so mismatched nesting refuses upfront.
        circuit, stats = rca4
        work = circuit.copy()
        with StatsCache(work, stats) as cache, \
                TimingCache(work, index=cache.index) as tcache, \
                TimingCache(work, index=cache.index) as other:
            with WhatIf(cache):
                with pytest.raises(RuntimeError):
                    with WhatIf(cache, timing=tcache):
                        pass  # pragma: no cover - never entered
            with WhatIf(cache, timing=tcache):
                with pytest.raises(RuntimeError):
                    with WhatIf(cache, timing=other):
                        pass  # pragma: no cover - never entered
                with WhatIf(cache, timing=tcache):
                    pass  # same cache: fine
                with WhatIf(cache):
                    pass  # timing-less inner: fine

    def test_timing_must_watch_the_same_circuit(self, rca4):
        circuit, stats = rca4
        work = circuit.copy()
        other = circuit.copy()
        with StatsCache(work, stats) as cache, \
                TimingCache(other) as tcache:
            with pytest.raises(ValueError):
                WhatIf(cache, timing=tcache)


class TestOptimizerTimingWorklist:
    def test_delay_aware_multipass_attaches_timing(self, rca4):
        circuit, stats = rca4
        result = optimize_circuit(circuit, stats,
                                  objective="delay-constrained", passes=4)
        assert result.gates_retimed > 0
        # the settled circuit still honours the per-gate delay bound
        assert circuit_delay(result.circuit) <= \
            circuit_delay(circuit) * (1.0 + 1e-9)

    def test_timing_worklist_preserves_the_fixed_point(self, rca4):
        circuit, stats = rca4
        multi = optimize_circuit(circuit, stats,
                                 objective="delay-constrained", passes=4)
        single = optimize_circuit(circuit, stats,
                                  objective="delay-constrained")
        # the timing-dirty re-decides are idempotent: the chosen
        # configurations come out identical to convergence without them
        follow = optimize_circuit(multi.circuit, stats,
                                  objective="delay-constrained")
        assert [g.effective_config().key() for g in follow.circuit.gates] == \
            [g.effective_config().key() for g in multi.circuit.gates]
        assert single.gates_retimed == 0  # single pass never retimes

    def test_power_objective_skips_the_timing_cache(self, rca4):
        circuit, stats = rca4
        result = optimize_circuit(circuit, stats, passes=4)
        assert result.gates_retimed == 0


class TestRunEcoIncrementalTiming:
    SCRIPT = [
        {"op": "reorder", "gate": "g1", "config": 1},
        {"op": "input-stats", "net": "a0", "probability": 0.25,
         "density": 3.0e5},
        {"op": "reorder", "gate": "g1", "config": -1},
    ]

    def test_incremental_matches_full(self, rca4):
        circuit, stats = rca4
        full = run_eco(circuit.copy(), dict(stats), self.SCRIPT)
        incr = run_eco(circuit.copy(), dict(stats), self.SCRIPT,
                       timing="incremental")
        assert [r.delay_after for r in incr] == [r.delay_after for r in full]
        assert [r.power_after for r in incr] == [r.power_after for r in full]
        assert all(r.retimed == -1 for r in full)
        assert all(r.retimed >= 0 for r in incr)
        # the input-stats edit never timing-dirties anything
        assert incr[1].retimed == 0

    def test_unknown_timing_mode_raises(self, rca4):
        circuit, stats = rca4
        with pytest.raises(ValueError):
            run_eco(circuit.copy(), dict(stats), [], timing="nope")

    ARRIVAL_SCRIPT = [
        {"op": "reorder", "gate": "g1", "config": 1},
        {"op": "input-arrival", "net": "a0", "arrival": 2.0e-10},
    ]

    def test_input_arrival_script_op(self, rca4):
        circuit, stats = rca4
        work = circuit.copy()
        rows = run_eco(work, dict(stats), self.ARRIVAL_SCRIPT,
                       timing="incremental")
        assert rows[1].label == "input-arrival a0 -> 2e-10"
        assert rows[1].delta_power == 0.0  # statistics never see arrivals
        assert rows[1].cone == 0
        arrivals = {net: 0.0 for net in work.inputs}
        arrivals["a0"] = 2.0e-10
        assert rows[1].delay_after == analyze_timing(
            work, input_arrivals=arrivals
        ).delay

    def test_input_arrival_op_needs_incremental_timing(self, rca4):
        circuit, stats = rca4
        with pytest.raises(ValueError, match="--timing"):
            run_eco(circuit.copy(), dict(stats), self.ARRIVAL_SCRIPT)
