"""Tests for the networkx graph exporters."""

import networkx as nx
import pytest

from repro.circuit.graphs import circuit_graph, logic_depth_histogram, transistor_graph
from repro.circuit.netlist import Circuit
from repro.gates.library import default_library
from repro.gates.network import TransistorNetwork
from repro.gates.sptree import Leaf, Parallel, Series

LIB = default_library()


def small_circuit():
    c = Circuit("g", LIB)
    for n in ("a", "b"):
        c.add_input(n)
    c.add_output("y")
    c.add_gate("g0", "nand2", {"a": "a", "b": "b"}, "n0")
    c.add_gate("g1", "inv", {"a": "n0"}, "y")
    return c


class TestCircuitGraph:
    def test_structure(self):
        graph = circuit_graph(small_circuit())
        assert graph.nodes["a"]["kind"] == "input"
        assert graph.nodes["g0"]["template"] == "nand2"
        assert graph.has_edge("a", "g0")
        assert graph.has_edge("g0", "g1")
        assert graph.edges["g0", "g1"]["net"] == "n0"

    def test_acyclic(self):
        graph = circuit_graph(small_circuit())
        assert nx.is_directed_acyclic_graph(graph)

    def test_depth_histogram(self):
        hist = logic_depth_histogram(small_circuit())
        # g0 at level 1 (after inputs), g1 at level 2.
        assert hist == {1: 1, 2: 1}


class TestTransistorGraph:
    def test_oai21_topology(self):
        network = TransistorNetwork(
            Series((Parallel((Leaf("a"), Leaf("b"))), Leaf("c")))
        )
        graph = transistor_graph(network)
        # 6 transistors, 5 electrical nodes (vdd, vss, y, 2 internal).
        assert graph.number_of_edges() == 6
        assert graph.number_of_nodes() == 5
        # There is a conducting route vdd -> y and y -> vss structurally.
        assert nx.has_path(graph, "vdd", "y")
        assert nx.has_path(graph, "y", "vss")

    def test_edge_attributes(self):
        network = TransistorNetwork(Leaf("a"))
        graph = transistor_graph(network)
        types = {d["ttype"] for _, _, d in graph.edges(data=True)}
        assert types == {"n", "p"}
