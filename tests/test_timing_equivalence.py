"""Property test: timing edit-sequence equivalence (incremental vs batch).

The timing twin of ``test_edit_equivalence.py``: drives random
sequences of gate reorderings, same-arity template swaps and
input-arrival changes through a
:class:`repro.incremental.timing.TimingCache` and asserts after
**every** edit that the incrementally maintained arrival times, the
circuit delay and the critical path are bit-identical (exact float
equality) to a from-scratch :func:`repro.timing.sta.analyze_timing` of
the edited circuit.  A second property locks the nested-``WhatIf``
rollback contract: unwinding trials in LIFO order restores the timing
state exactly.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.suite import get_case
from repro.gates.library import default_library
from repro.incremental import StatsCache, TimingCache, WhatIf
from repro.incremental.eco import InputArrivalEdit
from repro.sim.stimulus import ScenarioA
from repro.synth.mapper import map_circuit
from repro.timing.sta import analyze_timing

_SWAP_GROUPS = {}
for _template in default_library():
    _SWAP_GROUPS.setdefault(_template.pins, []).append(_template.name)
_SWAP_GROUPS = {
    pins: names for pins, names in _SWAP_GROUPS.items() if len(names) > 1
}


@pytest.fixture(scope="module")
def master():
    circuit = map_circuit(get_case("rca4").network())
    stats = ScenarioA(seed=5).input_stats(circuit.inputs)
    return circuit, stats


def edit_specs():
    """One abstract edit: (kind, selector, value) integer triples."""
    return st.tuples(
        st.sampled_from(["reorder", "retemplate", "input-arrival"]),
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=0, max_value=10_000),
    )


def apply_spec(circuit, tcache, spec):
    """Resolve and apply one abstract edit against the live circuit."""
    kind, selector, value = spec
    if kind == "reorder":
        gates = [g for g in circuit.gates if g.template.num_configurations() > 1]
        gate = gates[selector % len(gates)]
        configurations = gate.template.configurations()
        circuit.set_config(gate.name, configurations[value % len(configurations)])
    elif kind == "retemplate":
        gates = [g for g in circuit.gates if g.template.pins in _SWAP_GROUPS]
        gate = gates[selector % len(gates)]
        group = _SWAP_GROUPS[gate.template.pins]
        others = [name for name in group if name != gate.template.name]
        circuit.set_template(gate.name, others[value % len(others)])
    else:
        net = circuit.inputs[selector % len(circuit.inputs)]
        tcache.set_input_arrival(net, (value % 37) * 5.0e-11)


def assert_bit_identical(tcache, circuit):
    reference = analyze_timing(
        circuit, tcache.tech, tcache.po_load,
        input_arrivals=tcache.input_arrivals,
    )
    assert tcache.arrivals() == reference.arrivals
    assert tcache.delay() == reference.delay
    assert tcache.critical_path() == reference.critical_path


class TestTimingEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(edit_specs(), min_size=1, max_size=8))
    def test_incremental_matches_scratch_after_every_edit(self, master, specs):
        circuit_master, _ = master
        circuit = circuit_master.copy()
        with TimingCache(circuit) as tcache:
            for spec in specs:
                apply_spec(circuit, tcache, spec)
                assert_bit_identical(tcache, circuit)

    @settings(max_examples=10, deadline=None)
    @given(st.lists(edit_specs(), min_size=1, max_size=6))
    def test_early_cutoff_never_exceeds_the_dirty_cone(self, master, specs):
        # The refresh may prune with early cut-off but must never retime
        # a gate outside the advertised dirty cone.
        circuit_master, _ = master
        circuit = circuit_master.copy()
        with TimingCache(circuit) as tcache:
            for spec in specs:
                apply_spec(circuit, tcache, spec)
                cone = tcache.dirty_gates
                before = tcache.gates_retimed
                changed = tcache.refresh()
                recomputed = tcache.gates_retimed - before
                assert len(changed) <= recomputed <= len(cone)
                drivers = {circuit.driver(net).name for net in changed}
                assert drivers <= set(cone)


class TestWhatIfTimingRollback:
    @settings(max_examples=15, deadline=None)
    @given(st.lists(edit_specs(), min_size=1, max_size=4),
           st.lists(edit_specs(), min_size=1, max_size=4))
    def test_nested_rollback_restores_timing_exactly(self, master,
                                                     outer_specs, inner_specs):
        circuit_master, stats = master
        circuit = circuit_master.copy()
        with StatsCache(circuit, stats) as cache, \
                TimingCache(circuit, index=cache.index) as tcache:
            baseline = tcache.report()
            with WhatIf(cache, timing=tcache) as outer:
                for spec in outer_specs:
                    self.apply_through(outer, circuit, spec)
                # Inner trial commits: its edits promote to the outer
                # undo log, so the outer rollback still undoes them.
                with WhatIf(cache, timing=tcache) as inner:
                    for spec in inner_specs:
                        self.apply_through(inner, circuit, spec)
                    inner.commit()
                assert outer.delta_delay() == tcache.delay() - baseline.delay
            # outer never committed -> everything rolled back
            restored = tcache.report()
            assert restored.arrivals == baseline.arrivals
            assert restored.delay == baseline.delay
            assert restored.critical_path == baseline.critical_path
            assert_bit_identical(tcache, circuit)

    @staticmethod
    def apply_through(trial, circuit, spec):
        """Resolve one abstract edit and route it through the WhatIf."""
        from repro.circuit.netlist import SetConfig, SetTemplate

        kind, selector, value = spec
        if kind == "reorder":
            gates = [g for g in circuit.gates
                     if g.template.num_configurations() > 1]
            gate = gates[selector % len(gates)]
            configurations = gate.template.configurations()
            trial.apply(SetConfig(
                gate.name, configurations[value % len(configurations)]
            ))
        elif kind == "retemplate":
            gates = [g for g in circuit.gates
                     if g.template.pins in _SWAP_GROUPS]
            gate = gates[selector % len(gates)]
            group = _SWAP_GROUPS[gate.template.pins]
            others = [n for n in group if n != gate.template.name]
            trial.apply(SetTemplate(gate.name, others[value % len(others)]))
        else:
            net = circuit.inputs[selector % len(circuit.inputs)]
            trial.apply(InputArrivalEdit(net, (value % 37) * 5.0e-11))
